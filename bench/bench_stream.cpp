// dnsctx — streaming ingestion bench: online study vs batch pipeline.
//
// Simulates the neighborhood straight into a binary spool (no in-memory
// dataset), then runs the bounded-memory OnlineStudy and the batch
// run_study over the same spool — each in a RE-EXECUTED child process,
// so every phase gets its own ru_maxrss high-water mark instead of
// inheriting the simulation's. The parent compares throughput, peak RSS,
// and the N/LC/P/SC/R counts (which must MATCH — the determinism
// contract). Streaming RSS tracks the active window, so it stays flat as
// the trace lengthens while the batch path grows with the record count:
//
//   bench_stream --houses 10 --hours 12 ...   vs   --hours 48
//
//   bench_stream [--houses N] [--hours H] [--seed S] [--shards N]
//                [--spool DIR] [--json PATH]
#include <chrono>
#include <cstring>
#include <filesystem>

#include "bench_common.hpp"
#include "stream/feed.hpp"
#include "stream/online_study.hpp"
#include "stream/spool.hpp"

namespace {

using namespace dnsctx;
using Clock = std::chrono::steady_clock;

struct StreamScale {
  std::size_t houses = 40;
  int hours = 6;
  std::uint64_t seed = 42;
  std::size_t shards = 1;
  std::string spool_dir = "bench_stream.spool";
  std::string json_path;
  std::string phase;  ///< internal: "stream" / "batch" child mode
};

StreamScale parse_args(int argc, char** argv) {
  StreamScale s;
  if (const char* env = std::getenv("DNSCTX_BENCH_JSON"); env && *env) s.json_path = env;
  auto value = [&](int& i) -> const char* { return i + 1 < argc ? argv[++i] : ""; };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--houses") == 0) {
      s.houses = static_cast<std::size_t>(std::atoi(value(i)));
    } else if (std::strcmp(argv[i], "--hours") == 0) {
      s.hours = std::atoi(value(i));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      s.seed = static_cast<std::uint64_t>(std::atoll(value(i)));
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      s.shards = static_cast<std::size_t>(std::atoi(value(i)));
    } else if (std::strcmp(argv[i], "--spool") == 0) {
      s.spool_dir = value(i);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      s.json_path = value(i);
    } else if (std::strcmp(argv[i], "--phase") == 0) {
      s.phase = value(i);
    } else {
      std::fprintf(stderr, "bench_stream: unknown argument %s\n", argv[i]);
      std::exit(2);
    }
  }
  return s;
}

/// Collects replayed records back into a Dataset for the batch phase.
struct DatasetCollector final : capture::RecordSink {
  capture::Dataset ds;
  void on_conn(const capture::ConnRecord& rec) override { ds.conns.push_back(rec); }
  void on_dns(const capture::DnsRecord& rec) override { ds.dns.push_back(rec); }
};

/// One study phase's numbers, as passed parent ← child over stdout.
struct PhaseResult {
  double sec = 0.0;
  std::uint64_t rss = 0;
  std::uint64_t n = 0, lc = 0, p = 0, sc = 0, r = 0;
  std::uint64_t conns = 0, dns = 0;
  std::uint64_t active_candidates = 0, active_records = 0;
};

constexpr const char* kResultFmt =
    "RESULT sec=%lf rss=%llu n=%llu lc=%llu p=%llu sc=%llu r=%llu conns=%llu dns=%llu "
    "cand=%llu recs=%llu\n";

void print_result(const PhaseResult& r) {
  std::printf(kResultFmt, r.sec, static_cast<unsigned long long>(r.rss),
              static_cast<unsigned long long>(r.n), static_cast<unsigned long long>(r.lc),
              static_cast<unsigned long long>(r.p), static_cast<unsigned long long>(r.sc),
              static_cast<unsigned long long>(r.r),
              static_cast<unsigned long long>(r.conns),
              static_cast<unsigned long long>(r.dns),
              static_cast<unsigned long long>(r.active_candidates),
              static_cast<unsigned long long>(r.active_records));
}

int run_phase(const StreamScale& scale) {
  const auto t0 = Clock::now();
  PhaseResult out;
  if (scale.phase == "stream") {
    stream::OnlineStudy engine;
    const auto counts = stream::replay_spool(scale.spool_dir, engine);
    const auto result = engine.finalize();
    out.n = result.classes.n;
    out.lc = result.classes.lc;
    out.p = result.classes.p;
    out.sc = result.classes.sc;
    out.r = result.classes.r;
    out.conns = counts.conns;
    out.dns = counts.dns;
    out.active_candidates = engine.active_candidates();
    out.active_records = engine.active_records();
  } else if (scale.phase == "batch") {
    DatasetCollector collector;
    const auto counts = stream::replay_spool(scale.spool_dir, collector);
    const auto study = analysis::run_study(collector.ds);
    out.n = study.classified.counts.n;
    out.lc = study.classified.counts.lc;
    out.p = study.classified.counts.p;
    out.sc = study.classified.counts.sc;
    out.r = study.classified.counts.r;
    out.conns = counts.conns;
    out.dns = counts.dns;
  } else {
    std::fprintf(stderr, "bench_stream: unknown --phase %s\n", scale.phase.c_str());
    return 2;
  }
  out.sec = std::chrono::duration<double>(Clock::now() - t0).count();
  out.rss = bench::peak_rss_bytes();
  print_result(out);
  return 0;
}

/// Re-run this binary as `--phase <name>` and parse its RESULT line.
[[nodiscard]] bool run_child(const char* phase, const std::string& spool_dir,
                             PhaseResult& out) {
  std::string exe = "/proc/self/exe";
  std::error_code ec;
  if (const auto resolved = std::filesystem::read_symlink(exe, ec); !ec) {
    exe = resolved.string();
  }
  const std::string cmd = exe + " --phase " + phase + " --spool '" + spool_dir + "'";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    std::fprintf(stderr, "bench_stream: cannot spawn %s\n", cmd.c_str());
    return false;
  }
  bool parsed = false;
  char line[512];
  while (std::fgets(line, sizeof line, pipe) != nullptr) {
    unsigned long long v[10];
    if (std::sscanf(line, kResultFmt, &out.sec, &v[0], &v[1], &v[2], &v[3], &v[4], &v[5],
                    &v[6], &v[7], &v[8], &v[9]) == 11) {
      out.rss = v[0];
      out.n = v[1];
      out.lc = v[2];
      out.p = v[3];
      out.sc = v[4];
      out.r = v[5];
      out.conns = v[6];
      out.dns = v[7];
      out.active_candidates = v[8];
      out.active_records = v[9];
      parsed = true;
    } else {
      std::fputs(line, stderr);  // forward child diagnostics
    }
  }
  return pclose(pipe) == 0 && parsed;
}

}  // namespace

int main(int argc, char** argv) {
  const StreamScale scale = parse_args(argc, argv);
  if (!scale.phase.empty()) return run_phase(scale);

  std::printf("== bench_stream — streaming ingestion vs batch pipeline ==\n");
  std::printf("scenario: %zu houses, %d h of traffic, seed %llu, %zu shard(s)\n",
              scale.houses, scale.hours, static_cast<unsigned long long>(scale.seed),
              scale.shards);

  scenario::ScenarioConfig cfg;
  cfg.houses = scale.houses;
  cfg.duration = SimDuration::hours(scale.hours);
  cfg.seed = scale.seed;
  cfg.shards = scale.shards;

  // Phase 1: simulate straight into the spool — no dataset materialized.
  std::filesystem::remove_all(scale.spool_dir);
  std::filesystem::create_directories(scale.spool_dir);
  const auto t0 = Clock::now();
  std::uint64_t conns = 0, dns = 0;
  std::size_t peak_reorder = 0;
  {
    scenario::Town town{cfg};
    stream::SpoolWriter writer{scale.spool_dir};
    stream::LiveFeed feed{writer};
    town.attach_record_sink(&feed);
    const SimDuration chunk = SimDuration::min(5);
    for (SimDuration done; done < cfg.duration; done += chunk) {
      town.run_for(std::min(chunk, cfg.duration - done));
      feed.drain(town.record_watermark());
    }
    (void)town.harvest();
    feed.close();
    writer.flush();
    conns = writer.conns_written();
    dns = writer.dns_written();
    peak_reorder = feed.peak_buffered();
  }
  const double gen_sec = std::chrono::duration<double>(Clock::now() - t0).count();
  const std::uint64_t total = conns + dns;
  std::printf("captured: %llu conns + %llu DNS transactions into spool in %.2f s "
              "(peak reorder buffer %zu records)\n",
              static_cast<unsigned long long>(conns), static_cast<unsigned long long>(dns),
              gen_sec, peak_reorder);

  // Spool footprint: v2 + lz on disk vs the same records re-encoded as
  // v1 (interleaved, uncompressed) — the compression headline.
  const std::uint64_t spool_sz = stream::spool_bytes(scale.spool_dir);
  const std::string v1_dir = scale.spool_dir + ".v1";
  std::filesystem::remove_all(v1_dir);
  stream::SpoolConfig v1_cfg;
  v1_cfg.format = stream::kSegmentVersion;
  v1_cfg.codec = stream::SegmentCodec::kNone;
  (void)stream::convert_spool(scale.spool_dir, v1_dir, v1_cfg);
  const std::uint64_t v1_sz = stream::spool_bytes(v1_dir);
  std::filesystem::remove_all(v1_dir);
  const double ratio =
      spool_sz > 0 ? static_cast<double>(v1_sz) / static_cast<double>(spool_sz) : 0.0;
  std::printf("spool: %.2f MiB on disk (v1 equivalent %.2f MiB — %.2fx smaller)\n",
              static_cast<double>(spool_sz) / (1024.0 * 1024.0),
              static_cast<double>(v1_sz) / (1024.0 * 1024.0), ratio);

  // Import: the spool round-tripped through the text logs, timing the
  // text → spool direction (what `dnsctx stream --import` runs).
  const std::string text_dir = scale.spool_dir + ".text";
  const std::string import_dir = scale.spool_dir + ".import";
  std::filesystem::remove_all(text_dir);
  std::filesystem::remove_all(import_dir);
  (void)stream::spool_to_text(scale.spool_dir, text_dir);
  const auto ti0 = Clock::now();
  const auto imported = stream::text_to_spool(text_dir, import_dir);
  const double import_sec = std::chrono::duration<double>(Clock::now() - ti0).count();
  const std::uint64_t import_total = imported.conns + imported.dns;
  std::filesystem::remove_all(text_dir);
  std::filesystem::remove_all(import_dir);
  const double import_rps =
      import_sec > 0.0 ? static_cast<double>(import_total) / import_sec : 0.0;
  std::printf("import: %llu records text -> spool in %.2f s — %.0f records/s\n",
              static_cast<unsigned long long>(import_total), import_sec, import_rps);

  // Phases 2 + 3: each study in its own process, own RSS high-water.
  PhaseResult stream_r, batch_r;
  if (!run_child("stream", scale.spool_dir, stream_r) ||
      !run_child("batch", scale.spool_dir, batch_r)) {
    std::fprintf(stderr, "bench_stream: child phase failed\n");
    return 1;
  }
  std::printf("streaming study: %.2f s — %.0f records/s, peak RSS %.1f MiB, "
              "active window %llu candidates / %llu records\n",
              stream_r.sec,
              stream_r.sec > 0.0 ? static_cast<double>(total) / stream_r.sec : 0.0,
              static_cast<double>(stream_r.rss) / (1024.0 * 1024.0),
              static_cast<unsigned long long>(stream_r.active_candidates),
              static_cast<unsigned long long>(stream_r.active_records));
  std::printf("batch study:     %.2f s — %.0f records/s (load + run_study), "
              "peak RSS %.1f MiB\n",
              batch_r.sec, batch_r.sec > 0.0 ? static_cast<double>(total) / batch_r.sec : 0.0,
              static_cast<double>(batch_r.rss) / (1024.0 * 1024.0));

  const bool match = stream_r.n == batch_r.n && stream_r.lc == batch_r.lc &&
                     stream_r.p == batch_r.p && stream_r.sc == batch_r.sc &&
                     stream_r.r == batch_r.r && stream_r.conns == conns &&
                     batch_r.conns == conns;
  std::printf("equivalence: N/LC/P/SC/R %s (stream %llu/%llu/%llu/%llu/%llu)\n",
              match ? "MATCH" : "MISMATCH", static_cast<unsigned long long>(stream_r.n),
              static_cast<unsigned long long>(stream_r.lc),
              static_cast<unsigned long long>(stream_r.p),
              static_cast<unsigned long long>(stream_r.sc),
              static_cast<unsigned long long>(stream_r.r));

  if (!scale.json_path.empty()) {
    std::ofstream os{scale.json_path, std::ios::app};
    if (os) {
      char buf[896];
      std::snprintf(
          buf, sizeof buf,
          "{\"bench\":\"bench_stream\",\"houses\":%zu,\"hours\":%d,\"seed\":%llu,"
          "\"shards\":%zu,\"gen_sec\":%.3f,\"stream_sec\":%.3f,\"batch_sec\":%.3f,"
          "\"conns\":%llu,\"dns\":%llu,\"stream_records_per_sec\":%.0f,"
          "\"batch_records_per_sec\":%.0f,\"peak_rss_bytes\":%llu,"
          "\"stream_peak_rss_bytes\":%llu,\"batch_peak_rss_bytes\":%llu,"
          "\"peak_reorder_records\":%zu,\"active_candidates\":%llu,"
          "\"active_records\":%llu,\"spool_bytes\":%llu,\"spool_v1_bytes\":%llu,"
          "\"compression_ratio\":%.3f,\"import_sec\":%.3f,"
          "\"import_records_per_sec\":%.0f,\"match\":%s}",
          scale.houses, scale.hours, static_cast<unsigned long long>(scale.seed),
          scale.shards, gen_sec, stream_r.sec, batch_r.sec,
          static_cast<unsigned long long>(conns), static_cast<unsigned long long>(dns),
          stream_r.sec > 0.0 ? static_cast<double>(total) / stream_r.sec : 0.0,
          batch_r.sec > 0.0 ? static_cast<double>(total) / batch_r.sec : 0.0,
          static_cast<unsigned long long>(std::max(stream_r.rss, batch_r.rss)),
          static_cast<unsigned long long>(stream_r.rss),
          static_cast<unsigned long long>(batch_r.rss), peak_reorder,
          static_cast<unsigned long long>(stream_r.active_candidates),
          static_cast<unsigned long long>(stream_r.active_records),
          static_cast<unsigned long long>(spool_sz),
          static_cast<unsigned long long>(v1_sz), ratio, import_sec, import_rps,
          match ? "true" : "false");
      os << buf << '\n';
    } else {
      std::fprintf(stderr, "warning: cannot open bench JSON file %s\n",
                   scale.json_path.c_str());
    }
  }

  std::filesystem::remove_all(scale.spool_dir);
  return match ? 0 : 1;
}
