// Microbenchmarks (google-benchmark) for the performance-critical
// building blocks: DNS wire codec, cache operations, event dispatch,
// monitor packet handling and DN-Hunter pairing throughput.
#include <benchmark/benchmark.h>

#include "analysis/classify.hpp"
#include "analysis/pairing.hpp"
#include "resolver/zonedb.hpp"
#include "capture/monitor.hpp"
#include "dns/cache.hpp"
#include "dns/codec.hpp"
#include "netsim/arena.hpp"
#include "netsim/event_queue.hpp"
#include "netsim/sim.hpp"
#include "util/rng.hpp"

namespace {

using namespace dnsctx;

dns::DnsMessage sample_response() {
  auto q = dns::DnsMessage::query(0x1234, dns::DomainName::must("www.example.com"));
  return dns::DnsMessage::response(
      q, {dns::ResourceRecord::a(dns::DomainName::must("www.example.com"),
                                 Ipv4Addr{93, 184, 216, 34}, 300),
          dns::ResourceRecord::a(dns::DomainName::must("www.example.com"),
                                 Ipv4Addr{93, 184, 216, 35}, 300)});
}

void BM_DnsEncode(benchmark::State& state) {
  const auto msg = sample_response();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::encode(msg));
  }
}
BENCHMARK(BM_DnsEncode);

void BM_DnsDecode(benchmark::State& state) {
  const auto wire = dns::encode(sample_response());
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::decode(wire));
  }
}
BENCHMARK(BM_DnsDecode);

void BM_CacheInsertLookup(benchmark::State& state) {
  dns::DnsCache cache{dns::CacheConfig{.capacity = 10'000}};
  const auto answers = sample_response().answers;
  std::vector<dns::DomainName> names;
  for (int i = 0; i < 1'000; ++i) {
    names.push_back(dns::DomainName::must("host" + std::to_string(i) + ".example.com"));
  }
  SimTime now = SimTime::origin();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& name = names[i % names.size()];
    cache.insert(name, dns::RrType::kA, answers, dns::Rcode::kNoError, now);
    benchmark::DoNotOptimize(cache.lookup(name, dns::RrType::kA, now));
    now += SimDuration::us(10);
    ++i;
  }
}
BENCHMARK(BM_CacheInsertLookup);

void BM_SimulatorDispatch(benchmark::State& state) {
  for (auto _ : state) {
    netsim::Simulator sim;
    for (int i = 0; i < 1'000; ++i) {
      sim.at(SimTime::from_us(i), [] {});
    }
    sim.run_to_completion();
    benchmark::DoNotOptimize(sim.dispatched());
  }
}
BENCHMARK(BM_SimulatorDispatch)->Unit(benchmark::kMicrosecond);

void BM_EventQueuePushPop(benchmark::State& state) {
  // Pure queue cost: the BM_SimulatorDispatch pattern (batch insert,
  // then drain in order) without Simulator bookkeeping.
  for (auto _ : state) {
    netsim::EventQueue q;
    for (int i = 0; i < 1'000; ++i) {
      q.push(SimTime::from_us(i), static_cast<std::uint64_t>(i), netsim::InlineAction{[] {}});
    }
    SimTime when;
    netsim::InlineAction action;
    while (q.pop_min(&when, &action)) benchmark::DoNotOptimize(when);
  }
}
BENCHMARK(BM_EventQueuePushPop)->Unit(benchmark::kMicrosecond);

void BM_EventQueueSteadyState(benchmark::State& state) {
  // Hold-and-churn at `range(0)` pending events: every pop schedules a
  // successor a pseudo-random delay ahead, the classic timer-wheel
  // workload (DNS timeouts, app think times). Spans wheel0, wheel1 and
  // occasional overflow insertions.
  const auto pending = static_cast<std::size_t>(state.range(0));
  netsim::EventQueue q;
  Rng rng{17};
  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < pending; ++i) {
    q.push(SimTime::from_us(static_cast<std::int64_t>(rng.bounded(2'000'000))), seq++,
           netsim::InlineAction{[] {}});
  }
  SimTime when;
  netsim::InlineAction action;
  for (auto _ : state) {
    q.pop_min(&when, &action);
    const auto delay = 1 + static_cast<std::int64_t>(rng.bounded(2'000'000));
    q.push(when + SimDuration::us(delay), seq++, netsim::InlineAction{[] {}});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueSteadyState)->Arg(1'000)->Arg(100'000);

void BM_PacketArena(benchmark::State& state) {
  // Adopt/duplicate/release churn as the network fabric performs it:
  // one handle for the tap closure, one for the delivery closure.
  netsim::PacketArena arena;
  netsim::Packet proto;
  proto.src_ip = Ipv4Addr{100, 66, 1, 1};
  proto.dst_ip = Ipv4Addr{8, 8, 8, 8};
  proto.src_port = 40'000;
  proto.dst_port = 53;
  proto.proto = Proto::kUdp;
  for (auto _ : state) {
    netsim::PacketHandle h = arena.adopt(netsim::Packet{proto});
    netsim::PacketHandle tap = h;
    benchmark::DoNotOptimize(&*tap);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacketArena);

void BM_MonitorTcpConn(benchmark::State& state) {
  capture::Monitor monitor;
  const Ipv4Addr house{100, 66, 1, 1};
  const Ipv4Addr server{34, 1, 1, 1};
  std::int64_t t = 0;
  std::uint16_t port = 10'000;
  for (auto _ : state) {
    netsim::Packet syn;
    syn.src_ip = house;
    syn.dst_ip = server;
    syn.src_port = port;
    syn.dst_port = 443;
    syn.proto = Proto::kTcp;
    syn.tcp = netsim::TcpFlags{.syn = true};
    monitor.observe(SimTime::from_us(t), syn);
    netsim::Packet fin = syn;
    fin.tcp = netsim::TcpFlags{.ack = true, .fin = true};
    std::swap(fin.src_ip, fin.dst_ip);
    std::swap(fin.src_port, fin.dst_port);
    monitor.observe(SimTime::from_us(t + 10), fin);
    netsim::Packet fin2 = syn;
    fin2.tcp = netsim::TcpFlags{.ack = true, .fin = true};
    monitor.observe(SimTime::from_us(t + 20), fin2);
    t += 100;
    port = port == 60'000 ? std::uint16_t{10'000} : static_cast<std::uint16_t>(port + 1);
  }
  benchmark::DoNotOptimize(monitor.packets_seen());
}
BENCHMARK(BM_MonitorTcpConn);

void BM_PairingThroughput(benchmark::State& state) {
  // Build a dataset of `n` lookups + conns once; measure full pairing.
  const auto n = static_cast<std::size_t>(state.range(0));
  capture::Dataset ds;
  Rng rng{7};
  const Ipv4Addr house{100, 66, 1, 1};
  for (std::size_t i = 0; i < n; ++i) {
    const Ipv4Addr server{34, 1, static_cast<std::uint8_t>((i / 200) % 200),
                          static_cast<std::uint8_t>(1 + i % 200)};
    capture::DnsRecord d;
    d.ts = SimTime::from_us(static_cast<std::int64_t>(i) * 50'000);
    d.duration = SimDuration::ms(2);
    d.client_ip = house;
    d.resolver_ip = Ipv4Addr{100, 66, 250, 1};
    d.query = "h" + std::to_string(i % 500) + ".com";
    d.answered = true;
    d.answers = {{server, 300}};
    ds.dns.push_back(d);
    capture::ConnRecord c;
    c.start = d.response_time() + SimDuration::ms(static_cast<std::int64_t>(rng.bounded(200)));
    c.duration = SimDuration::sec(1);
    c.orig_ip = house;
    c.resp_ip = server;
    c.orig_port = 10'000;
    c.resp_port = 443;
    ds.conns.push_back(c);
  }
  std::sort(ds.conns.begin(), ds.conns.end(),
            [](const auto& a, const auto& b) { return a.start < b.start; });
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::pair_connections(ds));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_PairingThroughput)->Arg(1'000)->Arg(10'000)->Unit(benchmark::kMillisecond);

void BM_ZoneDbBuild(benchmark::State& state) {
  resolver::ZoneDbConfig cfg;
  cfg.seed = 3;
  for (auto _ : state) {
    resolver::ZoneDb db{cfg};
    benchmark::DoNotOptimize(db.size());
  }
}
BENCHMARK(BM_ZoneDbBuild)->Unit(benchmark::kMillisecond);

void BM_ClassifyThroughput(benchmark::State& state) {
  // Reuse the pairing-bench dataset shape.
  const std::size_t n = 10'000;
  capture::Dataset ds;
  Rng rng{13};
  const Ipv4Addr house{100, 66, 1, 1};
  for (std::size_t i = 0; i < n; ++i) {
    const Ipv4Addr server{34, 1, static_cast<std::uint8_t>((i / 200) % 200),
                          static_cast<std::uint8_t>(1 + i % 200)};
    capture::DnsRecord d;
    d.ts = SimTime::from_us(static_cast<std::int64_t>(i) * 50'000);
    d.duration = SimDuration::from_ms(rng.uniform(1.0, 60.0));
    d.client_ip = house;
    d.resolver_ip = Ipv4Addr{100, 66, 250, 1};
    d.query = "h" + std::to_string(i % 500) + ".com";
    d.answered = true;
    d.answers = {{server, 300}};
    ds.dns.push_back(d);
    capture::ConnRecord c;
    c.start = d.response_time() + SimDuration::ms(static_cast<std::int64_t>(rng.bounded(200)));
    c.duration = SimDuration::sec(1);
    c.orig_ip = house;
    c.resp_ip = server;
    c.orig_port = 10'000;
    c.resp_port = 443;
    ds.conns.push_back(c);
  }
  std::sort(ds.conns.begin(), ds.conns.end(),
            [](const auto& a, const auto& b) { return a.start < b.start; });
  const auto pairing = analysis::pair_connections(ds);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::classify_connections(ds, pairing));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ClassifyThroughput)->Unit(benchmark::kMillisecond);

void BM_ZipfSample(benchmark::State& state) {
  const ZipfSampler zipf{10'000, 0.95};
  Rng rng{3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

}  // namespace

BENCHMARK_MAIN();
