// Reproduces §8's whole-house cache what-if: which blocked connections
// (SC/R) would a per-house caching forwarder turn into local (LC) hits.
#include "bench_common.hpp"
#include "cachesim/whole_house.hpp"

int main(int argc, char** argv) {
  using namespace dnsctx;
  const auto run = bench::run_default("§8 whole-house cache", argc, argv);
  const auto result = cachesim::simulate_whole_house(run.town().dataset(), run.study.pairing,
                                                     run.study.classified);
  std::printf("whole-house cache what-if:\n");
  std::printf("  conns moving SC/R → LC: %s\n",
              analysis::vs_paper(100.0 * result.moved_frac_of_all(), 9.8).c_str());
  std::printf("  SC conns that benefit:  %s\n",
              analysis::vs_paper(100.0 * result.sc_moved_frac(), 22.0).c_str());
  std::printf("  R conns that benefit:   %s\n",
              analysis::vs_paper(100.0 * result.r_moved_frac(), 25.0).c_str());
  std::printf("  raw: %llu of %llu SC, %llu of %llu R (of %llu total conns)\n",
              static_cast<unsigned long long>(result.sc_moved),
              static_cast<unsigned long long>(result.sc_total),
              static_cast<unsigned long long>(result.r_moved),
              static_cast<unsigned long long>(result.r_total),
              static_cast<unsigned long long>(result.total_conns));
  return 0;
}
