// Reproduces Table 1: use of resolver platforms in the dataset.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dnsctx;
  const auto run = bench::run_default("Table 1", argc, argv);
  std::printf("%s\n", analysis::format_table1(run.study).c_str());

  std::printf("raw lookup counts:\n");
  for (const auto& row : run.study.table1) {
    std::printf("  %-11s %9llu lookups\n", row.platform.c_str(),
                static_cast<unsigned long long>(row.lookups));
  }
  return 0;
}
