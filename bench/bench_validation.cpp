// Beyond the paper: validate the passive-inference heuristics against
// simulation ground truth — the experiment the original vantage point
// could never run. For each §4/§5 inference, print the monitor-side
// estimate next to the simulator's internal truth.
#include "analysis/perhouse.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dnsctx;
  const auto run = bench::run_default("Heuristic validation vs ground truth", argc, argv);
  const auto& truth = run.town().ground_truth();
  const auto& study = run.study;
  const auto& c = study.classified.counts;

  auto row = [](const char* what, double inferred, double actual) {
    const double err = actual > 0.0 ? 100.0 * (inferred - actual) / actual : 0.0;
    std::printf("  %-44s %12.0f %12.0f %+7.1f%%\n", what, inferred, actual, err);
  };

  std::printf("%-46s %12s %12s %8s\n", "inference (counts)", "inferred", "truth", "error");
  row("blocked connections (SC+R vs blocked fetches)",
      static_cast<double>(c.blocked()), static_cast<double>(truth.fetch_blocked));
  row("locally-served connections (LC+P vs cache hits)",
      static_cast<double>(c.lc + c.p), static_cast<double>(truth.fetch_cache_hits));
  row("expired-record use (LC+P expired vs stale hits)",
      static_cast<double>(study.classified.lc_expired + study.classified.p_expired),
      static_cast<double>(truth.fetch_cache_expired));
  row("DNS-less flows (N vs no-DNS opens)", static_cast<double>(c.n),
      static_cast<double>(truth.no_dns_conns));

  std::printf("\nshared-cache hit rate:\n");
  double hits = 0, queries = 0;
  for (const auto& p : run.town().platforms()) {
    const auto& s = p->stats();
    std::printf("  %-11s inferred n/a per-platform | truth %5.1f%% (%llu queries)\n",
                p->config().name.c_str(), 100.0 * s.cache_hit_rate(),
                static_cast<unsigned long long>(s.queries));
    hits += static_cast<double>(s.shard_hits + s.ambient_hits);
    queries += static_cast<double>(s.queries);
  }
  std::printf("  %-11s inferred %5.1f%% | truth %5.1f%%\n", "aggregate",
              100.0 * c.shared_cache_hit_rate(), queries > 0 ? 100.0 * hits / queries : 0.0);

  std::printf("\nnote: the truth column counts EVERY query a platform served —\n"
              "including AAAA races and speculative prefetches that the SC/R\n"
              "inference never sees, which is why the aggregate truth sits below\n"
              "the blocked-lookup-only estimate.\n");
  std::printf("\ninterpretation: the paper's §4 blocking heuristic and §5.3 SC/R\n"
              "threshold are approximations; the error columns quantify how far the\n"
              "passive vantage point can drift from reality on this workload.\n");

  const auto per_house =
      analysis::analyze_per_house(run.town().dataset(), run.study.classified);
  std::printf("\nper-household variation (one sample per house):\n");
  if (!per_house.blocked_share.empty()) {
    std::printf("  blocked share:    p10 %5.1f%%  p50 %5.1f%%  p90 %5.1f%%\n",
                100.0 * per_house.blocked_share.quantile(0.1),
                100.0 * per_house.blocked_share.median(),
                100.0 * per_house.blocked_share.quantile(0.9));
    std::printf("  lookups/conn:     p10 %5.2f   p50 %5.2f   p90 %5.2f\n",
                per_house.lookups_per_conn.quantile(0.1),
                per_house.lookups_per_conn.median(),
                per_house.lookups_per_conn.quantile(0.9));
    std::printf("  busiest 10%% of houses carry %.0f%% of connections\n",
                100.0 * per_house.top_decile_conn_share());
  }
  return 0;
}
