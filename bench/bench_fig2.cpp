// Reproduces Figure 2 (DNS lookup delays and DNS' contribution to the
// transaction time for SC ∪ R) and the §6 significance quadrants.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dnsctx;
  const auto run = bench::run_default("Figure 2 + §6", argc, argv);
  std::printf("%s\n", analysis::format_fig2(run.study).c_str());

  const auto& p = run.study.performance;
  if (!p.lookup_ms_sc.empty() && !p.lookup_ms_r.empty()) {
    std::printf("per-class lookup delay series:\n");
    std::printf("%s", render_ascii_cdf(p.lookup_ms_sc, "SC lookups", "ms").c_str());
    std::printf("%s", render_ascii_cdf(p.lookup_ms_r, "R lookups", "ms").c_str());
  }
  if (!p.contrib_all.empty()) {
    std::printf("DNS %%-contribution series (SC ∪ R):\n");
    std::printf("%s", render_ascii_cdf(p.contrib_all, "100*D/T", "%").c_str());
  }
  return 0;
}
