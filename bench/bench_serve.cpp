// dnsctx — online telemetry server bench: sustained ingest throughput
// and ingest-to-visible latency over loopback.
//
// The bench simulates a neighborhood once, chops the dataset into wire
// segments, and pushes them through a real in-process Server (epoll
// loop on its own thread, TCP over 127.0.0.1) three ways:
//
//   throughput  one producer, acks read only at the end — measures
//               sustained records/sec from first byte to the final
//               flush ack (i.e. everything visible to /results)
//   latency     one producer, one ack read per frame — each round trip
//               is the ingest-to-visible latency for that segment;
//               reported as p50/p99
//   impaired    the same push over a dataset simulated under a fault
//               plan (packet loss + a resolver outage): the server must
//               ingest it at full rate without dropping the connection
//
// The run also asserts the headline correctness contract end to end:
// GET /results/<tenant> must be byte-identical to the offline
// OnlineStudy over the same records. `match` and `survived_faults`
// land in the JSON record and the process exits nonzero when either
// fails, so a perf-smoke CI leg gates on more than speed.
//
//   bench_serve [--houses N] [--hours H] [--seed S] [--faults SPEC]
//               [--segment-records N] [--json PATH]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <unistd.h>

#include "bench_common.hpp"
#include "serve/push.hpp"
#include "serve/server.hpp"
#include "serve/sockets.hpp"
#include "stream/online_study.hpp"
#include "stream/segment_v2.hpp"
#include "stream/spool.hpp"

namespace {

using namespace dnsctx;
using Clock = std::chrono::steady_clock;

struct ServeScale {
  std::size_t houses = 40;
  int hours = 4;
  std::uint64_t seed = 42;
  std::string faults = "loss=0.01,outage=upstream1:600-1200";
  std::size_t segment_records = 512;
  std::string json_path;
};

ServeScale parse_args(int argc, char** argv) {
  ServeScale s;
  if (const char* env = std::getenv("DNSCTX_BENCH_JSON"); env && *env) s.json_path = env;
  auto value = [&](int& i) -> const char* { return i + 1 < argc ? argv[++i] : ""; };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--houses") == 0) {
      s.houses = static_cast<std::size_t>(std::atoi(value(i)));
    } else if (std::strcmp(argv[i], "--hours") == 0) {
      s.hours = std::atoi(value(i));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      s.seed = static_cast<std::uint64_t>(std::atoll(value(i)));
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      s.faults = value(i);
    } else if (std::strcmp(argv[i], "--segment-records") == 0) {
      s.segment_records = static_cast<std::size_t>(std::atoi(value(i)));
    } else if (std::strcmp(argv[i], "--json") == 0) {
      s.json_path = value(i);
    } else {
      std::fprintf(stderr, "bench_serve: unknown argument %s\n", argv[i]);
      std::exit(2);
    }
  }
  return s;
}

capture::Dataset simulate(const ServeScale& s, const std::string& faults) {
  scenario::ScenarioConfig cfg;
  cfg.houses = s.houses;
  cfg.duration = SimDuration::hours(s.hours);
  cfg.seed = s.seed;
  if (!faults.empty()) cfg.faults = faults::FaultPlan::parse(faults);
  scenario::Town town{cfg};
  town.run();
  return town.dataset();
}

[[nodiscard]] SimTime key_time(const capture::ConnRecord& r) { return r.start; }
[[nodiscard]] SimTime key_time(const capture::DnsRecord& r) { return r.ts; }

/// Bytes each framing would put on the wire for the same records —
/// v2 + lz is what a current tap sends; v1 is the reference the
/// compression ratio is quoted against.
struct WireStats {
  std::uint64_t v2_bytes = 0;
  std::uint64_t v1_bytes = 0;
};

template <typename Rec>
void chunk_into(std::vector<std::string>& out, const std::vector<Rec>& recs,
                stream::RecordKind kind, std::size_t per, WireStats& stats) {
  for (std::size_t i = 0; i < recs.size(); i += per) {
    const std::size_t end = std::min(i + per, recs.size());
    const std::vector<Rec> slice{recs.begin() + static_cast<std::ptrdiff_t>(i),
                                 recs.begin() + static_cast<std::ptrdiff_t>(end)};
    std::string payload;
    for (const auto& rec : slice) stream::append_record(payload, rec);
    stats.v1_bytes += stream::build_segment(kind, static_cast<std::uint32_t>(end - i),
                                            key_time(recs[i]), key_time(recs[end - 1]),
                                            payload)
                          .size();
    out.push_back(stream::build_segment_v2(slice, stream::SegmentCodec::kLz));
    stats.v2_bytes += out.back().size();
  }
}

/// Conn and dns segments interleaved roughly by time, as a live tap
/// would deliver them. Frames are v2 columnar (lz), matching what the
/// current SpoolWriter and push tooling emit by default.
std::vector<std::string> wire_segments(const capture::Dataset& ds, std::size_t per,
                                       WireStats& stats) {
  std::vector<std::string> conns, dns, out;
  chunk_into(conns, ds.conns, stream::RecordKind::kConn, per, stats);
  chunk_into(dns, ds.dns, stream::RecordKind::kDns, per, stats);
  for (std::size_t i = 0; i < std::max(conns.size(), dns.size()); ++i) {
    if (i < dns.size()) out.push_back(std::move(dns[i]));
    if (i < conns.size()) out.push_back(std::move(conns[i]));
  }
  return out;
}

struct PushResult {
  double sec = 0.0;
  std::uint64_t released = 0;
  bool survived = true;
};

/// Push every segment then FLUSH; read all acks at the end. The elapsed
/// time covers first byte to final flush ack — every record visible.
PushResult timed_push(std::uint16_t port, const std::string& tenant,
                      const std::vector<std::string>& segments) {
  PushResult res;
  try {
    serve::PushClient client{"127.0.0.1", port, serve::Handshake{tenant, true}};
    const auto t0 = Clock::now();
    for (const auto& seg : segments) client.send_segment(seg);
    client.flush();
    for (std::size_t i = 0; i + 1 < segments.size() + 1; ++i) (void)client.read_ack();
    res.released = client.read_ack();
    res.sec = std::chrono::duration<double>(Clock::now() - t0).count();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_serve: push '%s' failed: %s\n", tenant.c_str(), e.what());
    res.survived = false;
  }
  return res;
}

/// One synchronous round trip per frame; each is an ingest-to-visible
/// latency sample in microseconds.
std::vector<double> ack_latencies(std::uint16_t port, const std::string& tenant,
                                  const std::vector<std::string>& segments) {
  std::vector<double> us;
  us.reserve(segments.size());
  serve::PushClient client{"127.0.0.1", port, serve::Handshake{tenant, true}};
  for (const auto& seg : segments) {
    const auto t0 = Clock::now();
    client.send_segment(seg);
    (void)client.read_ack();
    us.push_back(std::chrono::duration<double, std::micro>(Clock::now() - t0).count());
  }
  client.flush();
  (void)client.read_ack();
  return us;
}

[[nodiscard]] double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

/// Minimal blocking GET over the nonblocking client socket.
std::string http_get_body(std::uint16_t port, const std::string& target) {
  const int fd = serve::connect_tcp("127.0.0.1", port);
  const std::string req = "GET " + target + " HTTP/1.1\r\nHost: bench\r\n\r\n";
  std::size_t off = 0;
  while (off < req.size()) {
    const auto n = ::write(fd, req.data() + off, req.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
    } else if (errno != EAGAIN && errno != EINTR) {
      break;
    }
  }
  std::string resp;
  char buf[65536];
  for (;;) {
    const auto n = ::read(fd, buf, sizeof buf);
    if (n > 0) {
      resp.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) break;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      pollfd pfd{fd, POLLIN, 0};
      if (::poll(&pfd, 1, 10'000) <= 0) break;
      continue;
    }
    if (errno != EINTR) break;
  }
  ::close(fd);
  const auto split = resp.find("\r\n\r\n");
  return split == std::string::npos ? std::string{} : resp.substr(split + 4);
}

}  // namespace

int main(int argc, char** argv) {
  const ServeScale scale = parse_args(argc, argv);

  std::printf("Simulating %zu houses x %dh (seed %llu)...\n", scale.houses, scale.hours,
              static_cast<unsigned long long>(scale.seed));
  const auto ds = simulate(scale, "");
  const auto ds_faulty = simulate(scale, scale.faults);
  const std::uint64_t records = ds.conns.size() + ds.dns.size();
  const std::uint64_t faulty_records = ds_faulty.conns.size() + ds_faulty.dns.size();

  stream::OnlineStudy offline;
  stream::replay_dataset(ds, offline);
  const std::string expected = serve::result_json(offline.finalize());

  WireStats wire, scratch;
  const auto segments = wire_segments(ds, scale.segment_records, wire);
  const auto lat_segments = wire_segments(ds, scale.segment_records / 4, scratch);
  const auto faulty_segments = wire_segments(ds_faulty, scale.segment_records, scratch);
  const double wire_ratio = wire.v2_bytes > 0 ? static_cast<double>(wire.v1_bytes) /
                                                    static_cast<double>(wire.v2_bytes)
                                              : 0.0;

  serve::EventLoop loop;
  serve::Server server{loop, serve::ServeConfig{}};
  server.start();
  std::thread loop_thread{[&loop] { loop.run(); }};

  const auto throughput = timed_push(server.ingest_port(), "clean", segments);
  const auto latencies = ack_latencies(server.ingest_port(), "latency", lat_segments);
  const auto impaired = timed_push(server.ingest_port(), "impaired", faulty_segments);

  const std::string served = http_get_body(server.http_port(), "/results/clean");
  const bool match = served == expected + "\n";
  const bool survived = impaired.survived && impaired.released == faulty_records &&
                        throughput.released == records;

  loop.stop();
  loop_thread.join();

  const double rps =
      throughput.sec > 0.0 ? static_cast<double>(records) / throughput.sec : 0.0;
  const double imp_rps =
      impaired.sec > 0.0 ? static_cast<double>(impaired.released) / impaired.sec : 0.0;
  const double p50 = percentile(latencies, 0.50);
  const double p99 = percentile(latencies, 0.99);

  std::printf("\nbench_serve: %llu records over loopback\n",
              static_cast<unsigned long long>(records));
  std::printf("  throughput   %10.0f records/sec  (%.3fs)\n", rps, throughput.sec);
  std::printf("  ack latency  p50 %.0fus  p99 %.0fus  (%zu segments of %zu records)\n",
              p50, p99, lat_segments.size(), scale.segment_records / 4);
  std::printf("  impaired     %10.0f records/sec  (faults \"%s\", %llu records)\n",
              imp_rps, scale.faults.c_str(),
              static_cast<unsigned long long>(faulty_records));
  std::printf("  wire         %.2f MiB in v2+lz frames (v1 equivalent %.2f MiB — "
              "%.2fx smaller)\n",
              static_cast<double>(wire.v2_bytes) / (1024.0 * 1024.0),
              static_cast<double>(wire.v1_bytes) / (1024.0 * 1024.0), wire_ratio);
  std::printf("  results match offline study: %s\n", match ? "yes" : "NO");
  std::printf("  fault plan survived:         %s\n", survived ? "yes" : "NO");

  if (!scale.json_path.empty()) {
    if (std::FILE* f = std::fopen(scale.json_path.c_str(), "a")) {
      std::fprintf(
          f,
          "{\"bench\":\"bench_serve\",\"houses\":%zu,\"hours\":%d,\"seed\":%llu,"
          "\"records\":%llu,\"push_sec\":%.3f,\"records_per_sec\":%.0f,"
          "\"ack_p50_us\":%.1f,\"ack_p99_us\":%.1f,"
          "\"impaired_records\":%llu,\"impaired_records_per_sec\":%.0f,"
          "\"wire_bytes\":%llu,\"wire_v1_bytes\":%llu,\"compression_ratio\":%.3f,"
          "\"match\":%s,\"survived_faults\":%s,\"peak_rss_bytes\":%llu}\n",
          scale.houses, scale.hours, static_cast<unsigned long long>(scale.seed),
          static_cast<unsigned long long>(records), throughput.sec, rps, p50, p99,
          static_cast<unsigned long long>(faulty_records), imp_rps,
          static_cast<unsigned long long>(wire.v2_bytes),
          static_cast<unsigned long long>(wire.v1_bytes), wire_ratio,
          match ? "true" : "false", survived ? "true" : "false",
          static_cast<unsigned long long>(bench::peak_rss_bytes()));
      std::fclose(f);
    }
  }
  return match && survived ? 0 : 1;
}
