// dnsctx — city-scale simulation bench: many houses, bounded memory.
//
// The paper's corpus is a ~100-house neighborhood; this bench pushes the
// engine to city scale (default 10,000 houses) to exercise the calendar
// event queue, the per-shard packet arenas, and lazy DNS encoding under
// load. Records stream into a counting sink as the monitors finalize
// them — no dataset is ever materialized — so resident memory is bounded
// by the simulation's working set (pending events, open flows, resolver
// caches), not by the record count.
//
//   bench_city [--houses N] [--hours H] [--seed S] [--shards N]
//              [--pack FILE] [--max-rss-mib M] [--json PATH]
//
// `--pack FILE` loads a scenario pack (examples/packs/) so the city runs
// heterogeneous, non-web-centric load — the record key in the JSON line
// carries the pack name, keeping default baselines distinct.
//
// `--max-rss-mib M` turns the bench into a pass/fail memory check: the
// process exits nonzero if peak RSS exceeds M MiB (the CI perf-smoke job
// runs 500 houses under such a bound). `--json PATH` appends a one-line
// timing record compatible with tools/bench_compare.py.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "bench_common.hpp"
#include "capture/records.hpp"

namespace {

using namespace dnsctx;
using Clock = std::chrono::steady_clock;

struct CityScale {
  std::size_t houses = 10'000;
  int hours = 1;
  std::uint64_t seed = 42;
  std::size_t shards = 1;
  std::uint64_t max_rss_mib = 0;  ///< 0 = report only, no bound asserted
  std::string json_path;
  std::string pack_file;          ///< scenario pack ("" = default composition)
  std::string pack = "default";   ///< pack name for the JSON record key
};

CityScale parse_args(int argc, char** argv) {
  CityScale s;
  if (const char* env = std::getenv("DNSCTX_BENCH_JSON"); env && *env) s.json_path = env;
  auto value = [&](int& i) -> const char* { return i + 1 < argc ? argv[++i] : ""; };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--houses") == 0) {
      s.houses = static_cast<std::size_t>(std::atoi(value(i)));
    } else if (std::strcmp(argv[i], "--hours") == 0) {
      s.hours = std::atoi(value(i));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      s.seed = static_cast<std::uint64_t>(std::atoll(value(i)));
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      s.shards = static_cast<std::size_t>(std::atoi(value(i)));
    } else if (std::strcmp(argv[i], "--max-rss-mib") == 0) {
      s.max_rss_mib = static_cast<std::uint64_t>(std::atoll(value(i)));
    } else if (std::strcmp(argv[i], "--json") == 0) {
      s.json_path = value(i);
    } else if (std::strcmp(argv[i], "--pack") == 0) {
      s.pack_file = value(i);
    } else {
      std::fprintf(stderr, "bench_city: unknown argument %s\n", argv[i]);
      std::exit(2);
    }
  }
  return s;
}

/// Tallies finalized records without holding them: city-scale runs must
/// not accumulate per-record memory.
struct CountingSink final : capture::RecordSink {
  std::uint64_t conns = 0;
  std::uint64_t dns = 0;
  void on_conn(const capture::ConnRecord&) override { ++conns; }
  void on_dns(const capture::DnsRecord&) override { ++dns; }
};

}  // namespace

int main(int argc, char** argv) {
  CityScale scale = parse_args(argc, argv);

  scenario::ScenarioConfig cfg;
  if (!scale.pack_file.empty()) {
    try {
      scale.pack = scenario::apply_pack_file(scale.pack_file, &cfg).name;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }
  std::printf("== bench_city — city-scale simulation, streaming capture ==\n");
  std::printf("scenario: %zu houses, %d h of traffic, seed %llu, %zu shard(s), pack %s\n",
              scale.houses, scale.hours, static_cast<unsigned long long>(scale.seed),
              scale.shards, scale.pack.c_str());

  cfg.houses = scale.houses;
  cfg.duration = SimDuration::hours(scale.hours);
  cfg.seed = scale.seed;
  cfg.shards = scale.shards;

  CountingSink sink;
  const auto t0 = Clock::now();
  double build_sec = 0.0;
  {
    scenario::Town town{cfg};
    build_sec = std::chrono::duration<double>(Clock::now() - t0).count();
    town.attach_record_sink(&sink);
    // Chunked run: a progress line per simulated hour keeps long runs
    // observable without touching the event path.
    const SimDuration chunk = SimDuration::min(60);
    for (SimDuration done; done < cfg.duration; done += chunk) {
      town.run_for(std::min(chunk, cfg.duration - done));
      std::printf("  t=%5.1f h  %llu conns + %llu dns streamed, peak RSS %.0f MiB\n",
                  (done + chunk).to_sec() / 3600.0,
                  static_cast<unsigned long long>(sink.conns),
                  static_cast<unsigned long long>(sink.dns),
                  static_cast<double>(bench::peak_rss_bytes()) / (1024.0 * 1024.0));
    }
    (void)town.harvest();  // flush still-open flows/transactions to the sink
  }
  const double gen_sec = std::chrono::duration<double>(Clock::now() - t0).count();
  const std::uint64_t records = sink.conns + sink.dns;
  const std::uint64_t rss = bench::peak_rss_bytes();
  const double rss_mib = static_cast<double>(rss) / (1024.0 * 1024.0);
  std::printf("captured: %llu conns + %llu DNS transactions in %.2f s "
              "(%.1f s building the town) — %.0f records/s\n",
              static_cast<unsigned long long>(sink.conns),
              static_cast<unsigned long long>(sink.dns), gen_sec, build_sec,
              gen_sec > 0.0 ? static_cast<double>(records) / gen_sec : 0.0);
  std::printf("peak RSS: %.1f MiB (%.1f KiB per house)\n", rss_mib,
              scale.houses > 0
                  ? static_cast<double>(rss) / 1024.0 / static_cast<double>(scale.houses)
                  : 0.0);

  const bool within_bound = scale.max_rss_mib == 0 || rss_mib <= static_cast<double>(scale.max_rss_mib);
  if (scale.max_rss_mib != 0) {
    std::printf("rss bound: %.1f MiB %s limit of %llu MiB\n", rss_mib,
                within_bound ? "within" : "EXCEEDS",
                static_cast<unsigned long long>(scale.max_rss_mib));
  }

  if (!scale.json_path.empty()) {
    std::ofstream os{scale.json_path, std::ios::app};
    if (os) {
      char buf[640];
      std::snprintf(buf, sizeof buf,
                    "{\"bench\":\"bench_city\",\"houses\":%zu,\"hours\":%d,\"seed\":%llu,"
                    "\"shards\":%zu,\"pack\":\"%s\",\"gen_sec\":%.3f,\"build_sec\":%.3f,"
                    "\"conns\":%llu,\"dns\":%llu,\"records_per_sec\":%.0f,"
                    "\"peak_rss_bytes\":%llu,\"rss_limit_mib\":%llu,"
                    "\"within_rss_bound\":%s}",
                    scale.houses, scale.hours,
                    static_cast<unsigned long long>(scale.seed), scale.shards,
                    scale.pack.c_str(), gen_sec,
                    build_sec, static_cast<unsigned long long>(sink.conns),
                    static_cast<unsigned long long>(sink.dns),
                    gen_sec > 0.0 ? static_cast<double>(records) / gen_sec : 0.0,
                    static_cast<unsigned long long>(rss),
                    static_cast<unsigned long long>(scale.max_rss_mib),
                    within_bound ? "true" : "false");
      os << buf << '\n';
    } else {
      std::fprintf(stderr, "warning: cannot open bench JSON file %s\n",
                   scale.json_path.c_str());
    }
  }
  return within_bound ? 0 : 1;
}
