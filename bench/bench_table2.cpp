// Reproduces Table 2 (DNS information origin per connection) together
// with the §5 companion statistics and the §5.1 breakdown of the N set.
#include "analysis/nclass.hpp"
#include "analysis/perhouse.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dnsctx;
  const auto run = bench::run_default("Table 2 + §5", argc, argv);
  const auto& ds = run.town().dataset();

  std::printf("%s\n", analysis::format_table2(run.study, ds).c_str());

  const auto nclass = analysis::analyze_n_class(ds, run.study.classified);
  std::printf("§5.1 breakdown of the N (no DNS) connections:\n");
  std::printf("  both high ports (P2P-like): %s\n",
              analysis::vs_paper(100.0 * nclass.high_port_frac(), 81.6).c_str());
  std::printf("  reserved-port N conns: 443=%llu  123=%llu  80=%llu  853(DoT)=%llu\n",
              static_cast<unsigned long long>(nclass.port_443),
              static_cast<unsigned long long>(nclass.port_123),
              static_cast<unsigned long long>(nclass.port_80),
              static_cast<unsigned long long>(nclass.port_853));
  std::printf("  failed NTP attempts (dead hard-coded server): %llu (paper: >23K/week)\n",
              static_cast<unsigned long long>(nclass.failed_ntp));
  std::printf("  unexplained non-P2P unpaired share of ALL conns: %s\n",
              analysis::vs_paper(100.0 * nclass.unexplained_share_of_all, 1.3).c_str());
  std::printf("  top hard-coded destinations:\n");
  for (const auto& [addr, count] : nclass.top_reserved_destinations) {
    std::printf("    %-16s %8llu conns\n", addr.to_string().c_str(),
                static_cast<unsigned long long>(count));
  }

  // House-level bootstrap: how tight are the class shares given the
  // between-household variation?
  const auto per_house = analysis::analyze_per_house(ds, run.study.classified);
  const auto ci = analysis::bootstrap_table2_ci(per_house);
  std::printf("\n95%% cluster-bootstrap CIs (houses resampled, %zu reps):\n", ci.replicates);
  auto row = [](const char* cls, const analysis::ShareCi& c, double paper) {
    std::printf("  %-3s [%5.1f%%, %5.1f%%]  (paper %4.1f%%)\n", cls, 100.0 * c.lo,
                100.0 * c.hi, paper);
  };
  row("N", ci.n, 7.2);
  row("LC", ci.lc, 42.9);
  row("P", ci.p, 7.8);
  row("SC", ci.sc, 26.3);
  row("R", ci.r, 15.7);
  return 0;
}
