// dnsctx — segment codec tests: CRC, record round-trips, blob assembly.
#include <gtest/gtest.h>

#include "stream/segment.hpp"

namespace dnsctx::stream {
namespace {

capture::ConnRecord sample_conn() {
  capture::ConnRecord c;
  c.start = SimTime::from_us(1'234'567);
  c.duration = SimDuration::ms(250);
  c.orig_ip = Ipv4Addr{10, 0, 0, 7};
  c.resp_ip = Ipv4Addr{93, 184, 216, 34};
  c.orig_port = 49152;
  c.resp_port = 443;
  c.proto = Proto::kTcp;
  c.orig_bytes = 1'024;
  c.resp_bytes = 1'048'576;
  c.state = capture::ConnState::kSf;
  return c;
}

capture::DnsRecord sample_dns() {
  capture::DnsRecord d;
  d.ts = SimTime::from_us(1'200'000);
  d.duration = SimDuration::ms(12);
  d.client_ip = Ipv4Addr{10, 0, 0, 7};
  d.client_port = 53123;
  d.resolver_ip = Ipv4Addr{8, 8, 8, 8};
  d.query = "cdn.example.com";
  d.qtype = dns::RrType::kA;
  d.rcode = dns::Rcode::kNoError;
  d.answered = true;
  d.answers = {{Ipv4Addr{93, 184, 216, 34}, 300}, {Ipv4Addr{93, 184, 216, 35}, 60}};
  return d;
}

TEST(Crc32, KnownVectorAndChaining) {
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
  const std::string whole = "hello, segment world";
  EXPECT_EQ(crc32(whole.substr(5), crc32(whole.substr(0, 5))), crc32(whole));
}

TEST(Segment, ConnRoundTrip) {
  const auto orig = sample_conn();
  std::string payload;
  append_record(payload, orig);
  const auto blob = build_segment(RecordKind::kConn, 1, orig.start, orig.start, payload);
  const auto data = parse_segment(blob, "test");
  ASSERT_EQ(data.conns.size(), 1u);
  EXPECT_TRUE(data.dns.empty());
  const auto& c = data.conns[0];
  EXPECT_EQ(c.start, orig.start);
  EXPECT_EQ(c.duration, orig.duration);
  EXPECT_EQ(c.orig_ip, orig.orig_ip);
  EXPECT_EQ(c.resp_ip, orig.resp_ip);
  EXPECT_EQ(c.orig_port, orig.orig_port);
  EXPECT_EQ(c.resp_port, orig.resp_port);
  EXPECT_EQ(c.proto, orig.proto);
  EXPECT_EQ(c.orig_bytes, orig.orig_bytes);
  EXPECT_EQ(c.resp_bytes, orig.resp_bytes);
  EXPECT_EQ(c.state, orig.state);
}

TEST(Segment, DnsRoundTrip) {
  const auto orig = sample_dns();
  std::string payload;
  append_record(payload, orig);
  const auto blob = build_segment(RecordKind::kDns, 1, orig.ts, orig.ts, payload);
  const auto data = parse_segment(blob, "test");
  ASSERT_EQ(data.dns.size(), 1u);
  const auto& d = data.dns[0];
  EXPECT_EQ(d.ts, orig.ts);
  EXPECT_EQ(d.duration, orig.duration);
  EXPECT_EQ(d.client_ip, orig.client_ip);
  EXPECT_EQ(d.client_port, orig.client_port);
  EXPECT_EQ(d.resolver_ip, orig.resolver_ip);
  EXPECT_EQ(d.query, orig.query);
  EXPECT_EQ(d.qtype, orig.qtype);
  EXPECT_EQ(d.rcode, orig.rcode);
  EXPECT_EQ(d.answered, orig.answered);
  EXPECT_EQ(d.answers, orig.answers);
}

TEST(Segment, UnansweredDnsRoundTrip) {
  auto orig = sample_dns();
  orig.answered = false;
  orig.answers.clear();
  orig.duration = SimDuration::zero();
  orig.rcode = dns::Rcode::kServFail;
  std::string payload;
  append_record(payload, orig);
  const auto blob = build_segment(RecordKind::kDns, 1, orig.ts, orig.ts, payload);
  const auto data = parse_segment(blob, "test");
  ASSERT_EQ(data.dns.size(), 1u);
  EXPECT_FALSE(data.dns[0].answered);
  EXPECT_TRUE(data.dns[0].answers.empty());
  EXPECT_EQ(data.dns[0].rcode, dns::Rcode::kServFail);
}

TEST(Segment, HeaderFieldsSurvive) {
  const auto a = sample_conn();
  auto b = sample_conn();
  b.start = a.start + SimDuration::sec(3);
  std::string payload;
  append_record(payload, a);
  append_record(payload, b);
  const auto blob = build_segment(RecordKind::kConn, 2, a.start, b.start, payload);
  const auto header = parse_segment_header(blob, "test");
  EXPECT_EQ(header.kind, RecordKind::kConn);
  EXPECT_EQ(header.version, kSegmentVersion);
  EXPECT_EQ(header.record_count, 2u);
  EXPECT_EQ(header.first_ts, a.start);
  EXPECT_EQ(header.last_ts, b.start);
  EXPECT_EQ(header.payload_bytes, payload.size());
  EXPECT_EQ(header.payload_crc32, crc32(payload));
}

TEST(Segment, EmptySegmentRoundTrip) {
  const auto blob = build_segment(RecordKind::kDns, 0, SimTime::origin(), SimTime::origin(), "");
  EXPECT_EQ(blob.size(), kSegmentHeaderBytes);
  const auto data = parse_segment(blob, "test");
  EXPECT_EQ(data.header.record_count, 0u);
  EXPECT_TRUE(data.conns.empty());
  EXPECT_TRUE(data.dns.empty());
}

}  // namespace
}  // namespace dnsctx::stream
