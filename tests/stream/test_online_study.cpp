// dnsctx — online study engine equivalence tests.
//
// The determinism contract (online_study.hpp) promises bit-identical
// results to the batch pipeline for streams in canonical order. These
// tests enforce it with EXPECT_EQ on doubles — not near-equality — over
// full simulated neighborhoods across seeds, shard counts, aggressive
// eviction sweeps, live (Monitor → LiveFeed) delivery, and absorb()
// merges of house-disjoint partitions.
#include <gtest/gtest.h>

#include "analysis/study.hpp"
#include "scenario/scenario.hpp"
#include "stream/feed.hpp"
#include "stream/online_study.hpp"
#include "stream/spool.hpp"

namespace dnsctx::stream {
namespace {

capture::Dataset simulate(std::size_t houses, int hours, std::uint64_t seed,
                          std::size_t shards = 1) {
  scenario::ScenarioConfig cfg;
  cfg.houses = houses;
  cfg.duration = SimDuration::hours(hours);
  cfg.seed = seed;
  cfg.shards = shards;
  scenario::Town town{cfg};
  town.run();
  return town.dataset();
}

void expect_equivalent(const OnlineStudyResult& s, const analysis::Study& b,
                       const capture::Dataset& ds) {
  EXPECT_EQ(s.conns, ds.conns.size());
  EXPECT_EQ(s.dns, ds.dns.size());

  EXPECT_EQ(s.pairing.paired, b.pairing.paired);
  EXPECT_EQ(s.pairing.unpaired, b.pairing.unpaired);
  EXPECT_EQ(s.pairing.paired_expired, b.pairing.paired_expired);
  EXPECT_EQ(s.pairing.unique_candidate, b.pairing.unique_candidate);
  EXPECT_EQ(s.pairing.multiple_candidates, b.pairing.multiple_candidates);
  EXPECT_EQ(s.unused_lookup_frac, b.pairing.unused_lookup_frac(ds));

  EXPECT_EQ(s.classes.n, b.classified.counts.n);
  EXPECT_EQ(s.classes.lc, b.classified.counts.lc);
  EXPECT_EQ(s.classes.p, b.classified.counts.p);
  EXPECT_EQ(s.classes.sc, b.classified.counts.sc);
  EXPECT_EQ(s.classes.r, b.classified.counts.r);
  EXPECT_EQ(s.lc_expired, b.classified.lc_expired);
  EXPECT_EQ(s.p_expired, b.classified.p_expired);

  ASSERT_EQ(s.resolver_threshold_ms.size(), b.classified.resolver_threshold_ms.size());
  for (const auto& [ip, threshold] : b.classified.resolver_threshold_ms) {
    const auto it = s.resolver_threshold_ms.find(ip);
    ASSERT_NE(it, s.resolver_threshold_ms.end()) << ip.to_string();
    EXPECT_EQ(it->second, threshold) << ip.to_string();
  }

  ASSERT_EQ(s.table1.size(), b.table1.size());
  for (std::size_t i = 0; i < b.table1.size(); ++i) {
    EXPECT_EQ(s.table1[i].platform, b.table1[i].platform);
    EXPECT_EQ(s.table1[i].pct_houses, b.table1[i].pct_houses);
    EXPECT_EQ(s.table1[i].pct_lookups, b.table1[i].pct_lookups);
    EXPECT_EQ(s.table1[i].pct_conns, b.table1[i].pct_conns);
    EXPECT_EQ(s.table1[i].pct_bytes, b.table1[i].pct_bytes);
    EXPECT_EQ(s.table1[i].lookups, b.table1[i].lookups);
  }
  EXPECT_EQ(s.isp_only_houses, b.isp_only_houses);

  EXPECT_EQ(s.quadrants.insignificant_both, b.performance.insignificant_both);
  EXPECT_EQ(s.quadrants.relative_only, b.performance.relative_only);
  EXPECT_EQ(s.quadrants.absolute_only, b.performance.absolute_only);
  EXPECT_EQ(s.quadrants.significant_both, b.performance.significant_both);
  EXPECT_EQ(s.quadrants.significant_overall, b.performance.significant_overall);

  ASSERT_EQ(s.platforms.size(), b.platforms.size());
  for (std::size_t i = 0; i < b.platforms.size(); ++i) {
    EXPECT_EQ(s.platforms[i].platform, b.platforms[i].platform);
    EXPECT_EQ(s.platforms[i].sc, b.platforms[i].sc);
    EXPECT_EQ(s.platforms[i].r, b.platforms[i].r);
    EXPECT_EQ(s.platforms[i].conncheck_conns, b.platforms[i].conncheck_conns);
    EXPECT_EQ(s.platforms[i].total_conns, b.platforms[i].total_conns);
  }
}

TEST(OnlineStudy, MatchesBatchAcrossSeedsAndShards) {
  for (const std::uint64_t seed : {1ull, 7ull}) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
      SCOPED_TRACE(testing::Message() << "seed " << seed << ", shards " << shards);
      const auto ds = simulate(10, 2, seed, shards);
      const auto batch = analysis::run_study(ds);
      OnlineStudy engine;
      replay_dataset(ds, engine);
      expect_equivalent(engine.finalize(), batch, ds);
    }
  }
}

TEST(OnlineStudy, MatchesBatchWithDerivedResolverThresholds) {
  // Low per_resolver_min_lookups forces §5.3 threshold DERIVATION (mode
  // of the 40 ms low window) instead of the 5 ms default, exercising the
  // deferred SC/R split against derive_resolver_thresholds proper.
  const auto ds = simulate(10, 2, 1);
  analysis::StudyConfig batch_cfg;
  batch_cfg.classify.per_resolver_min_lookups = 50;
  const auto batch = analysis::run_study(ds, batch_cfg);

  OnlineStudyConfig cfg;
  cfg.classify.per_resolver_min_lookups = 50;
  OnlineStudy engine{cfg};
  replay_dataset(ds, engine);
  expect_equivalent(engine.finalize(), batch, ds);
}

TEST(OnlineStudy, MatchesBatchUnderAggressiveEviction) {
  // Sweeping after every ingest maximizes shadow-eviction opportunities;
  // results must not move, and the active window must shrink below the
  // stream totals (the bounded-memory claim, observable).
  const auto ds = simulate(10, 2, 7);
  const auto batch = analysis::run_study(ds);
  OnlineStudyConfig cfg;
  cfg.sweep_interval = 1;
  OnlineStudy engine{cfg};
  replay_dataset(ds, engine);
  expect_equivalent(engine.finalize(), batch, ds);
  EXPECT_LT(engine.active_records(), ds.dns.size());
}

TEST(OnlineStudy, LiveMonitorFeedMatchesBatch) {
  scenario::ScenarioConfig cfg;
  cfg.houses = 8;
  cfg.duration = SimDuration::hours(2);
  cfg.seed = 3;
  cfg.shards = 2;

  scenario::Town batch_town{cfg};
  batch_town.run();
  const auto& ds = batch_town.dataset();
  const auto batch = analysis::run_study(ds);

  OnlineStudy engine;
  LiveFeed feed{engine};
  scenario::Town live_town{cfg};
  live_town.attach_record_sink(&feed);
  const SimDuration chunk = SimDuration::min(7);
  for (SimDuration done; done < cfg.duration; done += chunk) {
    live_town.run_for(std::min(chunk, cfg.duration - done));
    feed.drain(live_town.record_watermark());
  }
  const auto leftover = live_town.harvest();
  EXPECT_TRUE(leftover.conns.empty());
  EXPECT_TRUE(leftover.dns.empty());
  feed.close();
  expect_equivalent(engine.finalize(), batch, ds);
  // The reorder buffer held the open window, not the whole run.
  EXPECT_LT(feed.peak_buffered(), ds.conns.size() + ds.dns.size());
}

TEST(OnlineStudy, AbsorbMergesHouseDisjointPartitions) {
  const auto ds = simulate(10, 2, 7);
  const auto batch = analysis::run_study(ds);

  // Partition records by house (the NAT'd external address) parity.
  auto pick = [](Ipv4Addr house) { return house.to_u32() % 2 == 0; };
  capture::Dataset even, odd;
  for (const auto& c : ds.conns) {
    (pick(c.orig_ip) ? even : odd).conns.push_back(c);
  }
  for (const auto& d : ds.dns) {
    (pick(d.client_ip) ? even : odd).dns.push_back(d);
  }
  ASSERT_FALSE(even.conns.empty());
  ASSERT_FALSE(odd.conns.empty());

  OnlineStudy a, b;
  replay_dataset(even, a);
  replay_dataset(odd, b);
  a.absorb(std::move(b));
  expect_equivalent(a.finalize(), batch, ds);
}

TEST(OnlineStudy, AbsorbRejectsOverlappingHouses) {
  capture::Dataset ds;
  capture::DnsRecord d;
  d.ts = SimTime::from_us(1000);
  d.client_ip = Ipv4Addr{100, 64, 0, 1};
  d.resolver_ip = Ipv4Addr{8, 8, 8, 8};
  d.query = "example.com";
  d.answered = true;
  d.answers = {{Ipv4Addr{1, 2, 3, 4}, 60}};
  ds.dns.push_back(d);

  OnlineStudy a, b;
  replay_dataset(ds, a);
  replay_dataset(ds, b);
  EXPECT_THROW(a.absorb(std::move(b)), std::logic_error);
}

TEST(OnlineStudy, RejectsTimestampRegressions) {
  OnlineStudy engine;
  capture::ConnRecord c;
  c.start = SimTime::from_us(5000);
  c.orig_ip = Ipv4Addr{100, 64, 0, 1};
  c.resp_ip = Ipv4Addr{1, 2, 3, 4};
  engine.on_conn(c);
  c.start = SimTime::from_us(4000);
  EXPECT_THROW(engine.on_conn(c), std::runtime_error);
}

TEST(OnlineStudy, EvictionHorizonTrimsHarder) {
  const auto ds = simulate(8, 2, 1);
  OnlineStudy exact;
  replay_dataset(ds, exact);

  OnlineStudyConfig cfg;
  cfg.eviction_horizon = SimDuration::min(5);
  cfg.sweep_interval = 64;
  OnlineStudy trimmed{cfg};
  replay_dataset(ds, trimmed);
  EXPECT_LE(trimmed.active_candidates(), exact.active_candidates());
  // Approximate mode still finalizes into a coherent result.
  const auto result = trimmed.finalize();
  EXPECT_EQ(result.conns, ds.conns.size());
  EXPECT_EQ(result.classes.total(), ds.conns.size());
}

}  // namespace
}  // namespace dnsctx::stream
