// dnsctx — spool writer/reader tests: rotation, merged replay order,
// writer invariants, and byte-identical text↔binary conversion.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "capture/logio.hpp"
#include "stream/spool.hpp"

namespace dnsctx::stream {
namespace {

std::string temp_dir(const char* name) {
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

capture::ConnRecord conn_at(std::int64_t us) {
  capture::ConnRecord c;
  c.start = SimTime::from_us(us);
  c.duration = SimDuration::ms(10);
  c.orig_ip = Ipv4Addr{10, 0, 0, 1};
  c.resp_ip = Ipv4Addr{1, 2, 3, 4};
  c.orig_port = 40000;
  c.resp_port = 443;
  return c;
}

capture::DnsRecord dns_at(std::int64_t us) {
  capture::DnsRecord d;
  d.ts = SimTime::from_us(us);
  d.duration = SimDuration::ms(5);
  d.client_ip = Ipv4Addr{10, 0, 0, 1};
  d.client_port = 50000;
  d.resolver_ip = Ipv4Addr{8, 8, 8, 8};
  d.query = "example.com";
  d.answered = true;
  d.answers = {{Ipv4Addr{1, 2, 3, 4}, 60}};
  return d;
}

/// Records delivery order as (kind, key-µs) pairs.
struct OrderSink final : capture::RecordSink {
  std::vector<std::pair<char, std::int64_t>> order;
  void on_conn(const capture::ConnRecord& rec) override {
    order.emplace_back('c', rec.start.count_us());
  }
  void on_dns(const capture::DnsRecord& rec) override {
    order.emplace_back('d', rec.ts.count_us());
  }
};

TEST(SpoolWriter, RotatesByRecordCount) {
  const auto dir = temp_dir("dnsctx_spool_rot");
  SpoolConfig cfg;
  cfg.max_records_per_segment = 2;
  SpoolWriter writer{dir, cfg};
  for (int i = 0; i < 5; ++i) {
    writer.on_conn(conn_at(1000 * (i + 1)));
  }
  writer.flush();
  const auto listing = list_spool(dir);
  EXPECT_EQ(listing.conn_segments.size(), 3u);  // 2 + 2 + 1
  EXPECT_TRUE(listing.dns_segments.empty());
  EXPECT_EQ(writer.conns_written(), 5u);
}

TEST(SpoolWriter, RotatesBySimTimeSpan) {
  const auto dir = temp_dir("dnsctx_spool_span");
  SpoolConfig cfg;
  cfg.max_segment_span = SimDuration::sec(10);
  SpoolWriter writer{dir, cfg};
  writer.on_dns(dns_at(0));
  writer.on_dns(dns_at(5'000'000));
  writer.on_dns(dns_at(11'000'000));  // > 10 s after segment start → new segment
  writer.on_dns(dns_at(12'000'000));
  writer.flush();
  EXPECT_EQ(list_spool(dir).dns_segments.size(), 2u);
}

TEST(SpoolWriter, RejectsTimestampRegression) {
  const auto dir = temp_dir("dnsctx_spool_regress");
  SpoolWriter writer{dir};
  writer.on_conn(conn_at(5000));
  EXPECT_THROW(writer.on_conn(conn_at(4000)), std::runtime_error);
  // The other kind has its own clock: an earlier DNS record is fine.
  EXPECT_NO_THROW(writer.on_dns(dns_at(1000)));
}

TEST(SpoolReplay, MergesKindsInTimeOrderDnsFirstOnTies) {
  const auto dir = temp_dir("dnsctx_spool_merge");
  SpoolConfig cfg;
  cfg.max_records_per_segment = 2;  // force several segments per kind
  SpoolWriter writer{dir, cfg};
  for (const auto us : {1000, 3000, 5000, 5000, 9000}) {
    writer.on_conn(conn_at(us));
  }
  for (const auto us : {2000, 5000, 8000}) {
    writer.on_dns(dns_at(us));
  }
  writer.flush();

  OrderSink sink;
  const auto counts = replay_spool(dir, sink);
  EXPECT_EQ(counts.conns, 5u);
  EXPECT_EQ(counts.dns, 3u);
  const std::vector<std::pair<char, std::int64_t>> expected = {
      {'c', 1000}, {'d', 2000}, {'c', 3000}, {'d', 5000},
      {'c', 5000}, {'c', 5000}, {'d', 8000}, {'c', 9000}};
  EXPECT_EQ(sink.order, expected);
}

TEST(SpoolReplay, DatasetReplayMatchesSpoolReplay) {
  capture::Dataset ds;
  ds.conns = {conn_at(1000), conn_at(4000)};
  ds.dns = {dns_at(1000), dns_at(2000)};
  OrderSink sink;
  const auto counts = replay_dataset(ds, sink);
  EXPECT_EQ(counts.conns, 2u);
  EXPECT_EQ(counts.dns, 2u);
  const std::vector<std::pair<char, std::int64_t>> expected = {
      {'d', 1000}, {'c', 1000}, {'d', 2000}, {'c', 4000}};
  EXPECT_EQ(sink.order, expected);
}

TEST(SpoolConvert, TextRoundTripIsByteIdentical) {
  const auto text_dir = temp_dir("dnsctx_spool_text");
  const auto spool_dir = temp_dir("dnsctx_spool_bin");
  const auto back_dir = temp_dir("dnsctx_spool_back");
  capture::Dataset ds;
  ds.conns = {conn_at(1000), conn_at(2500), conn_at(2500)};
  ds.dns = {dns_at(500), dns_at(2000)};
  ds.dns[1].answered = false;
  ds.dns[1].answers.clear();
  ds.dns[1].duration = SimDuration::zero();
  capture::save_dataset(ds, text_dir + "/conn.log", text_dir + "/dns.log");

  SpoolConfig cfg;
  cfg.max_records_per_segment = 2;
  const auto in_counts = text_to_spool(text_dir, spool_dir, cfg);
  EXPECT_EQ(in_counts.conns, 3u);
  EXPECT_EQ(in_counts.dns, 2u);
  const auto out_counts = spool_to_text(spool_dir, back_dir);
  EXPECT_EQ(out_counts.conns, 3u);
  EXPECT_EQ(out_counts.dns, 2u);

  auto slurp = [](const std::string& path) {
    std::ifstream is{path, std::ios::binary};
    std::stringstream ss;
    ss << is.rdbuf();
    return ss.str();
  };
  EXPECT_EQ(slurp(text_dir + "/conn.log"), slurp(back_dir + "/conn.log"));
  EXPECT_EQ(slurp(text_dir + "/dns.log"), slurp(back_dir + "/dns.log"));
}

TEST(SpoolWriter, DefaultsToV2Compressed) {
  const auto dir = temp_dir("dnsctx_spool_v2def");
  SpoolWriter writer{dir};
  for (int i = 0; i < 100; ++i) {
    writer.on_conn(conn_at(1000 + i));
    writer.on_dns(dns_at(1000 + i));
  }
  writer.flush();
  const auto listing = list_spool(dir);
  ASSERT_EQ(listing.total(), 2u);
  for (const auto* paths : {&listing.conn_segments, &listing.dns_segments}) {
    std::ifstream is{paths->front(), std::ios::binary};
    std::stringstream ss;
    ss << is.rdbuf();
    const auto header = parse_segment_header(ss.str(), paths->front());
    EXPECT_EQ(header.version, kSegmentVersionV2);
  }
}

TEST(SpoolWriter, RejectsUnknownFormat) {
  SpoolConfig cfg;
  cfg.format = 3;
  EXPECT_THROW((SpoolWriter{temp_dir("dnsctx_spool_badfmt"), cfg}),
               std::invalid_argument);
}

TEST(SpoolConvert, V1ToV2RoundTripPreservesEveryRecord) {
  const auto v1_dir = temp_dir("dnsctx_conv_v1");
  const auto v2_dir = temp_dir("dnsctx_conv_v2");
  const auto back_dir = temp_dir("dnsctx_conv_back");

  SpoolConfig v1_cfg;
  v1_cfg.format = kSegmentVersion;
  v1_cfg.codec = SegmentCodec::kNone;
  v1_cfg.max_records_per_segment = 16;
  {
    SpoolWriter writer{v1_dir, v1_cfg};
    for (int i = 0; i < 40; ++i) {
      writer.on_conn(conn_at(1000 + 13 * i));
      if (i % 3 != 0) writer.on_dns(dns_at(1100 + 13 * i));
    }
    writer.flush();
  }

  SpoolConfig v2_cfg;  // defaults: v2 + lz
  const auto up = convert_spool(v1_dir, v2_dir, v2_cfg);
  EXPECT_EQ(up.conns, 40u);
  EXPECT_EQ(up.dns, 26u);
  const auto down = convert_spool(v2_dir, back_dir, v1_cfg);
  EXPECT_EQ(down.conns, 40u);
  EXPECT_EQ(down.dns, 26u);

  // Replay order and content are invariant across both conversions —
  // the property that makes study results byte-identical per format.
  OrderSink a, b, c;
  (void)replay_spool(v1_dir, a);
  (void)replay_spool(v2_dir, b);
  (void)replay_spool(back_dir, c);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.order, c.order);

  // The v2 spool is the small one.
  EXPECT_LT(spool_bytes(v2_dir), spool_bytes(v1_dir));
  EXPECT_EQ(spool_bytes(back_dir), spool_bytes(v1_dir));
}

TEST(SpoolConvert, V2SpoolExportsByteIdenticalText) {
  const auto text_dir = temp_dir("dnsctx_conv_text");
  const auto v1_dir = temp_dir("dnsctx_conv_t_v1");
  const auto v2_dir = temp_dir("dnsctx_conv_t_v2");
  const auto out1 = temp_dir("dnsctx_conv_t_out1");
  const auto out2 = temp_dir("dnsctx_conv_t_out2");
  capture::Dataset ds;
  ds.conns = {conn_at(1000), conn_at(2500), conn_at(2500)};
  ds.dns = {dns_at(500), dns_at(2000)};
  capture::save_dataset(ds, text_dir + "/conn.log", text_dir + "/dns.log");

  SpoolConfig v1_cfg;
  v1_cfg.format = kSegmentVersion;
  v1_cfg.codec = SegmentCodec::kNone;
  (void)text_to_spool(text_dir, v1_dir, v1_cfg);
  (void)convert_spool(v1_dir, v2_dir);
  (void)spool_to_text(v1_dir, out1);
  (void)spool_to_text(v2_dir, out2);

  auto slurp = [](const std::string& path) {
    std::ifstream is{path, std::ios::binary};
    std::stringstream ss;
    ss << is.rdbuf();
    return ss.str();
  };
  EXPECT_EQ(slurp(out1 + "/conn.log"), slurp(out2 + "/conn.log"));
  EXPECT_EQ(slurp(out1 + "/dns.log"), slurp(out2 + "/dns.log"));
  EXPECT_EQ(slurp(text_dir + "/conn.log"), slurp(out2 + "/conn.log"));
}

TEST(SpoolListing, SortedAndFiltered) {
  const auto dir = temp_dir("dnsctx_spool_list");
  SpoolConfig cfg;
  cfg.max_records_per_segment = 1;
  SpoolWriter writer{dir, cfg};
  for (int i = 0; i < 3; ++i) {
    writer.on_conn(conn_at(1000 * (i + 1)));
  }
  writer.flush();
  std::ofstream{dir + "/notes.txt"} << "not a segment\n";
  const auto listing = list_spool(dir);
  ASSERT_EQ(listing.conn_segments.size(), 3u);
  EXPECT_TRUE(std::is_sorted(listing.conn_segments.begin(), listing.conn_segments.end()));
  EXPECT_EQ(listing.total(), 3u);
}

}  // namespace
}  // namespace dnsctx::stream
