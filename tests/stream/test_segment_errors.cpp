// dnsctx — segment/spool failure-path tests: every structural defect
// must throw an error that names the offending source so operators can
// find the bad file in a large spool. Also covers the text-log loaders'
// path-bearing diagnostics.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "capture/logio.hpp"
#include "stream/segment.hpp"
#include "stream/spool.hpp"

namespace dnsctx::stream {
namespace {

std::string temp_dir(const char* name) {
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// EXPECT that `fn` throws a std::runtime_error whose message contains
/// every needle.
template <typename Fn>
void expect_throw_containing(Fn&& fn, std::initializer_list<std::string> needles) {
  try {
    fn();
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    for (const auto& needle : needles) {
      EXPECT_NE(msg.find(needle), std::string::npos)
          << "message \"" << msg << "\" lacks \"" << needle << "\"";
    }
  }
}

std::string one_conn_blob(SimTime ts = SimTime::from_us(1000)) {
  capture::ConnRecord c;
  c.start = ts;
  c.orig_ip = Ipv4Addr{10, 0, 0, 1};
  c.resp_ip = Ipv4Addr{1, 2, 3, 4};
  std::string payload;
  append_record(payload, c);
  return build_segment(RecordKind::kConn, 1, ts, ts, payload);
}

TEST(SegmentErrors, TruncatedHeader) {
  expect_throw_containing([] { (void)parse_segment("DCSG", "short.seg"); },
                          {"short.seg", "truncated"});
}

TEST(SegmentErrors, BadMagic) {
  auto blob = one_conn_blob();
  blob[0] = 'X';
  expect_throw_containing([&] { (void)parse_segment(blob, "bad.seg"); },
                          {"bad.seg", "magic"});
}

TEST(SegmentErrors, UnsupportedVersion) {
  auto blob = one_conn_blob();
  blob[4] = 99;  // version lives right after the u32 magic
  expect_throw_containing([&] { (void)parse_segment(blob, "vers.seg"); },
                          {"vers.seg", "version"});
}

TEST(SegmentErrors, TruncatedPayload) {
  const auto blob = one_conn_blob();
  expect_throw_containing(
      [&] { (void)parse_segment(std::string_view{blob}.substr(0, blob.size() - 3), "cut.seg"); },
      {"cut.seg", "truncated"});
}

TEST(SegmentErrors, CrcCorruptionNamesTheFile) {
  auto blob = one_conn_blob();
  blob[blob.size() - 1] ^= 0x01;  // flip one payload bit
  expect_throw_containing([&] { (void)parse_segment(blob, "spool/conn-00000003.seg"); },
                          {"spool/conn-00000003.seg", "CRC"});
}

TEST(SegmentErrors, OutOfOrderTimestampsRejected) {
  capture::ConnRecord late, early;
  late.start = SimTime::from_us(5000);
  early.start = SimTime::from_us(2000);
  std::string payload;
  append_record(payload, late);
  append_record(payload, early);
  const auto blob = build_segment(RecordKind::kConn, 2, early.start, late.start, payload);
  expect_throw_containing([&] { (void)parse_segment(blob, "ooo.seg"); },
                          {"ooo.seg", "out of order"});
}

TEST(SegmentErrors, TruncatedRecordBodyReportsByteOffset) {
  // A v1 record whose length prefix admits only 3 body bytes: the
  // field decoder must say where inside the body it ran dry.
  std::string payload;
  payload += std::string("\x03\x00\x00\x00", 4);  // body_len = 3
  payload += "abc";
  const auto blob = build_segment(RecordKind::kConn, 1, SimTime::from_us(1000),
                                  SimTime::from_us(1000), payload);
  expect_throw_containing([&] { (void)parse_segment(blob, "tiny.seg"); },
                          {"tiny.seg", "truncated", "byte offset"});
}

TEST(SegmentErrors, TrailingBytesRejected) {
  auto blob = one_conn_blob();
  blob += "extra";
  expect_throw_containing([&] { (void)parse_segment(blob, "trail.seg"); }, {"trail.seg"});
}

TEST(SegmentErrors, MissingFileNamesPath) {
  expect_throw_containing([] { (void)read_segment_file("/nonexistent/zone/x.seg"); },
                          {"/nonexistent/zone/x.seg"});
}

TEST(SpoolErrors, CorruptSegmentFailsReplayNamingFile) {
  const auto dir = temp_dir("dnsctx_spool_corrupt");
  {
    SpoolConfig cfg;
    cfg.max_records_per_segment = 1;
    SpoolWriter writer{dir, cfg};
    capture::ConnRecord c;
    c.start = SimTime::from_us(1000);
    c.orig_ip = Ipv4Addr{10, 0, 0, 1};
    writer.on_conn(c);
    c.start = SimTime::from_us(2000);
    writer.on_conn(c);
    writer.flush();
  }
  const auto victim = dir + "/conn-00000001.seg";
  {
    std::fstream f{victim, std::ios::in | std::ios::out | std::ios::binary};
    ASSERT_TRUE(f);
    f.seekp(-1, std::ios::end);
    char last = 0;
    f.seekg(-1, std::ios::end);
    f.get(last);
    f.seekp(-1, std::ios::end);
    f.put(static_cast<char>(last ^ 0x40));
  }
  struct Null final : capture::RecordSink {
    void on_conn(const capture::ConnRecord&) override {}
    void on_dns(const capture::DnsRecord&) override {}
  } null;
  // Spool-level diagnostics carry the segment's index in the listing on
  // top of its path, so operators can locate it in a long run.
  expect_throw_containing([&] { (void)replay_spool(dir, null); },
                          {"conn-00000001.seg", "(segment 1)", "CRC"});
}

TEST(SpoolErrors, CrossSegmentOrderViolation) {
  const auto dir = temp_dir("dnsctx_spool_ooo");
  write_segment_file(dir + "/conn-00000000.seg", one_conn_blob(SimTime::from_us(9000)));
  write_segment_file(dir + "/conn-00000001.seg", one_conn_blob(SimTime::from_us(4000)));
  struct Null final : capture::RecordSink {
    void on_conn(const capture::ConnRecord&) override {}
    void on_dns(const capture::DnsRecord&) override {}
  } null;
  expect_throw_containing([&] { (void)replay_spool(dir, null); },
                          {"conn-00000001.seg", "(segment 1)", "before preceding segment"});
}

TEST(LogioErrors, ConnParseErrorNamesFile) {
  const auto dir = temp_dir("dnsctx_logio_err");
  const auto conn_path = dir + "/conn.log";
  const auto dns_path = dir + "/dns.log";
  std::ofstream{conn_path} << "0.1\tnot-an-ip\t1.2.3.4\t80\t80\ttcp\t0\t0\tSF\t0.0\n";
  std::ofstream{dns_path} << "";
  expect_throw_containing([&] { (void)capture::load_dataset(conn_path, dns_path); },
                          {conn_path});
}

TEST(LogioErrors, DnsMissingFieldsNamesFile) {
  const auto dir = temp_dir("dnsctx_logio_err2");
  const auto conn_path = dir + "/conn.log";
  const auto dns_path = dir + "/dns.log";
  std::ofstream{conn_path} << "";
  std::ofstream{dns_path} << "0.5\t10.0.0.1\n";  // far too few columns
  expect_throw_containing([&] { (void)capture::load_dataset(conn_path, dns_path); },
                          {dns_path});
}

}  // namespace
}  // namespace dnsctx::stream
