// dnsctx — spool format v2 round-trip tests: varint/zigzag primitives,
// the LZ block codec, columnar encode→decode losslessness under both
// codecs, dictionary dedupe, the per-segment codec fallback, and the
// SegmentView cursor contract (rewind, deliver, kind checks,
// parse_segment materialization, mmap readers).
#include <gtest/gtest.h>

#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "stream/codec.hpp"
#include "stream/segment.hpp"
#include "stream/segment_v2.hpp"
#include "stream/segment_view.hpp"

namespace dnsctx::stream {
namespace {

std::string temp_dir(const char* name) {
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

capture::ConnRecord conn_at(std::int64_t us) {
  capture::ConnRecord c;
  c.start = SimTime::from_us(us);
  c.duration = SimDuration::ms(10);
  c.orig_ip = Ipv4Addr{10, 0, 0, 1};
  c.resp_ip = Ipv4Addr{93, 184, 216, 34};
  c.orig_port = 40000;
  c.resp_port = 443;
  c.proto = Proto::kTcp;
  c.state = capture::ConnState::kSf;
  c.orig_bytes = 1234;
  c.resp_bytes = 56789;
  return c;
}

capture::DnsRecord dns_at(std::int64_t us, std::string name = "example.com") {
  capture::DnsRecord d;
  d.ts = SimTime::from_us(us);
  d.duration = SimDuration::ms(5);
  d.client_ip = Ipv4Addr{10, 0, 0, 1};
  d.client_port = 50000;
  d.resolver_ip = Ipv4Addr{8, 8, 8, 8};
  d.query = util::InternedName{name};
  d.qtype = dns::RrType::kA;
  d.rcode = dns::Rcode::kNoError;
  d.answered = true;
  d.answers = {{Ipv4Addr{1, 2, 3, 4}, 60}, {Ipv4Addr{5, 6, 7, 8}, 300}};
  return d;
}

void expect_conn_eq(const capture::ConnRecord& a, const capture::ConnRecord& b) {
  EXPECT_EQ(a.start, b.start);
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.orig_ip, b.orig_ip);
  EXPECT_EQ(a.resp_ip, b.resp_ip);
  EXPECT_EQ(a.orig_port, b.orig_port);
  EXPECT_EQ(a.resp_port, b.resp_port);
  EXPECT_EQ(a.proto, b.proto);
  EXPECT_EQ(a.state, b.state);
  EXPECT_EQ(a.orig_bytes, b.orig_bytes);
  EXPECT_EQ(a.resp_bytes, b.resp_bytes);
}

void expect_dns_eq(const capture::DnsRecord& a, const capture::DnsRecord& b) {
  EXPECT_EQ(a.ts, b.ts);
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.client_ip, b.client_ip);
  EXPECT_EQ(a.client_port, b.client_port);
  EXPECT_EQ(a.resolver_ip, b.resolver_ip);
  EXPECT_EQ(a.query.view(), b.query.view());
  EXPECT_EQ(a.qtype, b.qtype);
  EXPECT_EQ(a.rcode, b.rcode);
  EXPECT_EQ(a.answered, b.answered);
  EXPECT_EQ(a.answers, b.answers);
}

TEST(Varint, RoundTripsEdgeValues) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  300,
                                  16'383,
                                  16'384,
                                  (1ull << 32) - 1,
                                  1ull << 32,
                                  std::uint64_t(-1)};
  for (const auto v : values) {
    std::string buf;
    put_varint(buf, v);
    ASSERT_LE(buf.size(), 10u);
    const char* p = buf.data();
    const auto back = get_varint(&p, buf.data() + buf.size());
    ASSERT_TRUE(back.has_value()) << v;
    EXPECT_EQ(*back, v);
    EXPECT_EQ(p, buf.data() + buf.size()) << "decoder must consume exactly the encoding";
  }
}

TEST(Varint, RejectsTruncatedAndOverlong) {
  std::string buf;
  put_varint(buf, std::uint64_t(-1));
  const char* p = buf.data();
  EXPECT_FALSE(get_varint(&p, buf.data() + buf.size() - 1).has_value());  // truncated

  // Ten continuation bytes whose final byte carries more than the one
  // bit a 64-bit value has left: not a canonical encoding of anything.
  const std::string overlong = std::string(9, '\x80') + '\x02';
  p = overlong.data();
  EXPECT_FALSE(get_varint(&p, overlong.data() + overlong.size()).has_value());

  const char* empty = buf.data();
  EXPECT_FALSE(get_varint(&empty, empty).has_value());
}

TEST(Varint, ZigzagRoundTrips) {
  const std::int64_t values[] = {0, -1, 1, -123'456, 123'456,
                                 std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max()};
  for (const auto v : values) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
  // Small magnitudes map to small codes (the point of zigzag).
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
}

TEST(LzCodec, RoundTripsRepetitiveAndShortInputs) {
  const BlockCodec& lz = codec(SegmentCodec::kLz);
  std::string repetitive;
  for (int i = 0; i < 1000; ++i) repetitive += "abcdefgh";
  std::string comp, back;
  lz.compress(repetitive, comp);
  EXPECT_LT(comp.size(), repetitive.size() / 4);
  ASSERT_TRUE(lz.decompress(comp, repetitive.size(), back));
  EXPECT_EQ(back, repetitive);

  // Every length through the "inputs shorter than 13 bytes are a single
  // literal run" boundary, plus empty.
  for (std::size_t n = 0; n <= 20; ++n) {
    const std::string raw(n, static_cast<char>('a' + n));
    lz.compress(raw, comp);
    ASSERT_TRUE(lz.decompress(comp, raw.size(), back)) << "length " << n;
    EXPECT_EQ(back, raw);
  }
}

TEST(LzCodec, RoundTripsIncompressibleInput) {
  // Deterministic LCG byte soup: no 4-byte window repeats within the
  // 64 KiB offset reach, so the compressor finds nothing.
  std::string raw(4096, '\0');
  std::uint32_t x = 0x12345678u;
  for (auto& ch : raw) {
    x = x * 1664525u + 1013904223u;
    ch = static_cast<char>(x >> 24);
  }
  const BlockCodec& lz = codec(SegmentCodec::kLz);
  std::string comp, back;
  lz.compress(raw, comp);
  EXPECT_GE(comp.size(), raw.size());  // pure literals cost a little extra
  ASSERT_TRUE(lz.decompress(comp, raw.size(), back));
  EXPECT_EQ(back, raw);
}

TEST(LzCodec, DecompressRejectsMalformedInput) {
  const BlockCodec& lz = codec(SegmentCodec::kLz);
  std::string out;
  // Literal run overruns the input.
  EXPECT_FALSE(lz.decompress(std::string{"\xf0"}, 100, out));
  // Match offset reaches before the start of the output (embedded NULs
  // force explicit-length construction).
  EXPECT_FALSE(lz.decompress(std::string("\x10" "a\x05\x00", 4), 10, out));
  // Offset zero is never valid.
  EXPECT_FALSE(lz.decompress(std::string("\x10" "a\x00\x00", 4), 10, out));
  // Decoded size disagrees with the framed raw length.
  std::string comp;
  lz.compress("hello world", comp);
  EXPECT_FALSE(lz.decompress(comp, 5, out));
  EXPECT_FALSE(lz.decompress(comp, 50, out));
}

TEST(SegmentV2, ConnRoundTripsLosslesslyUnderBothCodecs) {
  std::vector<capture::ConnRecord> recs;
  for (int i = 0; i < 50; ++i) {
    auto c = conn_at(1000 + 37 * i);
    c.orig_port = static_cast<std::uint16_t>(40000 + i);
    c.resp_port = i % 2 ? 443 : 80;
    c.proto = i % 3 ? Proto::kTcp : Proto::kUdp;
    c.state = static_cast<capture::ConnState>(i % 5);
    c.orig_bytes = static_cast<std::uint64_t>(i) << (i % 40);  // multi-byte varints
    const auto big = static_cast<std::uint64_t>(i) * std::uint64_t{0xdeadbeef};
    c.resp_bytes = i % 7 == 0 ? std::uint64_t{0} : big;
    c.duration = i % 4 == 0 ? SimDuration::zero() : SimDuration::us(i * 999);
    recs.push_back(c);
  }
  recs.push_back(conn_at(recs.back().start.count_us()));  // tied timestamps survive

  for (const auto requested : {SegmentCodec::kNone, SegmentCodec::kLz}) {
    const std::string blob = build_segment_v2(recs, requested);
    SegmentView view = SegmentView::parse(blob, "v2-conn.seg");
    EXPECT_EQ(view.header().version, kSegmentVersionV2);
    EXPECT_EQ(view.kind(), RecordKind::kConn);
    ASSERT_EQ(view.size(), recs.size());
    EXPECT_EQ(view.header().first_ts, recs.front().start);
    EXPECT_EQ(view.header().last_ts, recs.back().start);
    capture::ConnRecord rec;
    for (const auto& expected : recs) {
      ASSERT_TRUE(view.next(rec));
      expect_conn_eq(rec, expected);
    }
    EXPECT_FALSE(view.next(rec));

    view.rewind();
    std::size_t again = 0;
    while (view.next(rec)) ++again;
    EXPECT_EQ(again, recs.size());
  }
}

TEST(SegmentV2, DnsRoundTripsWithDictionaryDedupe) {
  const char* names[] = {"netflix.com", "api.netflix.com", "example.org"};
  std::vector<capture::DnsRecord> recs;
  for (int i = 0; i < 30; ++i) {
    auto d = dns_at(2000 + 11 * i, names[i % 3]);
    d.qtype = i % 4 == 0 ? dns::RrType::kAaaa : dns::RrType::kA;
    d.rcode = i % 5 == 0 ? dns::Rcode::kNxDomain : dns::Rcode::kNoError;
    if (i % 6 == 0) {
      d.answered = false;
      d.answers.clear();
      d.duration = SimDuration::zero();
    } else {
      d.answers.resize(static_cast<std::size_t>(1 + i % 4),
                       {Ipv4Addr::from_u32(0x01020300u + static_cast<std::uint32_t>(i)),
                        60u * static_cast<std::uint32_t>(i)});
    }
    recs.push_back(d);
  }

  for (const auto requested : {SegmentCodec::kNone, SegmentCodec::kLz}) {
    const std::string blob = build_segment_v2(recs, requested);
    SegmentView view = SegmentView::parse(blob, "v2-dns.seg");
    ASSERT_EQ(view.size(), recs.size());
    capture::DnsRecord rec;
    for (const auto& expected : recs) {
      ASSERT_TRUE(view.next(rec));
      expect_dns_eq(rec, expected);
    }
    EXPECT_FALSE(view.next(rec));
  }

  // The dictionary stores each distinct qname once: in the uncompressed
  // blob, 10 occurrences of "netflix.com" appear as exactly one copy
  // (inside "api.netflix.com", which also appears once).
  const std::string blob = build_segment_v2(recs, SegmentCodec::kNone);
  std::size_t hits = 0;
  for (auto pos = blob.find("netflix.com"); pos != std::string::npos;
       pos = blob.find("netflix.com", pos + 1)) {
    ++hits;
  }
  EXPECT_EQ(hits, 2u);
}

TEST(SegmentV2, IncompressibleSegmentFallsBackToUncompressed) {
  // One record is a few dozen bytes of mostly-distinct values — the LZ
  // pass finds no 4-byte match, so the builder must store it raw (codec
  // id kNone) rather than pay the literal-run overhead.
  capture::ConnRecord c;
  c.start = SimTime::from_us(0x0102030405);
  c.duration = SimDuration::us(0x1122);
  c.orig_ip = Ipv4Addr::from_u32(0x21436587u);
  c.resp_ip = Ipv4Addr::from_u32(0xa9cbed0fu);
  c.orig_port = 0x3141;
  c.resp_port = 0x5926;
  c.orig_bytes = 0x0123456789abcdefull;
  c.resp_bytes = 0xfedcba9876543210ull;
  const std::string blob = build_segment_v2({c}, SegmentCodec::kLz);
  SegmentView view = SegmentView::parse(blob, "tiny.seg");
  EXPECT_EQ(view.stored_codec(), SegmentCodec::kNone);
  capture::ConnRecord back;
  ASSERT_TRUE(view.next(back));
  expect_conn_eq(back, c);
}

TEST(SegmentV2, CompressionBeatsV1OnRepetitiveRecords) {
  std::vector<capture::ConnRecord> recs;
  for (int i = 0; i < 500; ++i) recs.push_back(conn_at(1000 + i));
  std::string payload;
  for (const auto& r : recs) append_record(payload, r);
  const std::string v1 = build_segment(RecordKind::kConn, 500, recs.front().start,
                                       recs.back().start, payload);
  const std::string v2_none = build_segment_v2(recs, SegmentCodec::kNone);
  const std::string v2_lz = build_segment_v2(recs, SegmentCodec::kLz);
  EXPECT_LT(v2_none.size(), v1.size());  // columnar + varints alone shrink it
  EXPECT_LT(v2_lz.size() * 4, v1.size());  // the headline ≥4× claim
  SegmentView view = SegmentView::parse(v2_lz, "big.seg");
  EXPECT_EQ(view.stored_codec(), SegmentCodec::kLz);
  EXPECT_EQ(view.size(), 500u);
}

TEST(SegmentV2, EmptySegmentsRoundTrip) {
  for (const auto kind : {RecordKind::kConn, RecordKind::kDns}) {
    SegmentBuilderV2 b{kind};
    const std::string blob = b.build();
    SegmentView view = SegmentView::parse(blob, "empty.seg");
    EXPECT_EQ(view.size(), 0u);
    EXPECT_EQ(view.kind(), kind);
  }
}

TEST(SegmentV2, BuilderRejectsOutOfOrderAndWrongKind) {
  SegmentBuilderV2 b{RecordKind::kConn};
  b.add(conn_at(5000));
  EXPECT_THROW(b.add(conn_at(4000)), std::runtime_error);
  SegmentBuilderV2 d{RecordKind::kDns};
  EXPECT_THROW(d.add(conn_at(1000)), std::logic_error);
}

TEST(SegmentV2, ParseSegmentMaterializesV2) {
  const std::vector<capture::DnsRecord> recs = {dns_at(1000), dns_at(2000, "b.example"),
                                                dns_at(2000)};
  const SegmentData data = parse_segment(build_segment_v2(recs), "mat.seg");
  EXPECT_EQ(data.header.version, kSegmentVersionV2);
  ASSERT_EQ(data.dns.size(), 3u);
  for (std::size_t i = 0; i < recs.size(); ++i) expect_dns_eq(data.dns[i], recs[i]);
}

TEST(SegmentV2, MapFileAndAdoptRoundTrip) {
  const auto dir = temp_dir("dnsctx_v2_map");
  const std::vector<capture::ConnRecord> recs = {conn_at(1000), conn_at(2000)};
  const std::string blob = build_segment_v2(recs);
  write_segment_file(dir + "/conn-00000000.seg", blob);

  SegmentView mapped = SegmentView::map_file(dir + "/conn-00000000.seg");
  EXPECT_EQ(mapped.source(), dir + "/conn-00000000.seg");
  capture::ConnRecord rec;
  ASSERT_TRUE(mapped.next(rec));
  expect_conn_eq(rec, recs[0]);

  SegmentView adopted = SegmentView::adopt(std::string{blob}, "adopted");
  struct Counter final : capture::RecordSink {
    std::size_t conns = 0;
    void on_conn(const capture::ConnRecord&) override { ++conns; }
    void on_dns(const capture::DnsRecord&) override {}
  } sink;
  EXPECT_EQ(adopted.deliver(sink), 2u);
  EXPECT_EQ(sink.conns, 2u);
}

TEST(SegmentV2, CursorKindMismatchAndEmptyViewThrowLogicError) {
  SegmentView view = SegmentView::adopt(build_segment_v2({conn_at(1000)}), "kind.seg");
  capture::DnsRecord dns;
  EXPECT_THROW((void)view.next(dns), std::logic_error);

  SegmentView empty;
  EXPECT_THROW((void)empty.header(), std::logic_error);
  capture::ConnRecord rec;
  EXPECT_THROW((void)empty.next(rec), std::logic_error);
}

}  // namespace
}  // namespace dnsctx::stream
