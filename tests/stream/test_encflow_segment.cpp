// dnsctx — enc-segment tests: EncFlowRecord round-trips through the v1
// segment codec, the zero-copy view, spool rotation/replay with the
// three-way merge, the v2 rejection rule, and the text converters.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "capture/logio.hpp"
#include "stream/segment.hpp"
#include "stream/segment_view.hpp"
#include "stream/spool.hpp"

namespace dnsctx::stream {
namespace {

namespace fs = std::filesystem;

[[nodiscard]] capture::EncFlowRecord sample_enc(std::int64_t start_us = 1'500'000) {
  capture::EncFlowRecord e;
  e.start = SimTime::from_us(start_us);
  e.duration = SimDuration::ms(420);
  e.client_ip = Ipv4Addr{100, 66, 3, 7};
  e.server_ip = Ipv4Addr{100, 66, 250, 1};
  e.client_port = 30'123;
  e.server_port = 853;
  e.up_msgs = 4;
  e.down_msgs = 5;
  e.up_bytes = 925;
  e.down_bytes = 13'370;
  e.first_up_bytes = 289;
  e.first_down_bytes = 3'295;
  e.pad_aligned_up = 3;
  e.pad_aligned_down = 4;
  return e;
}

/// Collects everything delivered, tagging each record's kind so merge
/// order is checkable.
struct CollectSink : capture::RecordSink {
  std::vector<capture::ConnRecord> conns;
  std::vector<capture::DnsRecord> dns;
  std::vector<capture::EncFlowRecord> encflows;
  std::string order;  ///< 'c'/'d'/'e' per delivery

  void on_conn(const capture::ConnRecord& rec) override {
    conns.push_back(rec);
    order += 'c';
  }
  void on_dns(const capture::DnsRecord& rec) override {
    dns.push_back(rec);
    order += 'd';
  }
  void on_encflow(const capture::EncFlowRecord& rec) override {
    encflows.push_back(rec);
    order += 'e';
  }
};

class TempDir {
 public:
  explicit TempDir(const char* tag) : path_{fs::temp_directory_path() / tag} {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

TEST(EncSegment, RoundTrip) {
  const auto orig = sample_enc();
  std::string payload;
  append_record(payload, orig);
  const auto blob = build_segment(RecordKind::kEncFlow, 1, orig.start, orig.start, payload);
  const auto data = parse_segment(blob, "test");
  EXPECT_EQ(data.header.kind, RecordKind::kEncFlow);
  ASSERT_EQ(data.encflows.size(), 1u);
  const auto& e = data.encflows[0];
  EXPECT_EQ(e.start, orig.start);
  EXPECT_EQ(e.duration, orig.duration);
  EXPECT_EQ(e.client_ip, orig.client_ip);
  EXPECT_EQ(e.server_ip, orig.server_ip);
  EXPECT_EQ(e.client_port, orig.client_port);
  EXPECT_EQ(e.server_port, orig.server_port);
  EXPECT_EQ(e.up_msgs, orig.up_msgs);
  EXPECT_EQ(e.down_msgs, orig.down_msgs);
  EXPECT_EQ(e.up_bytes, orig.up_bytes);
  EXPECT_EQ(e.down_bytes, orig.down_bytes);
  EXPECT_EQ(e.first_up_bytes, orig.first_up_bytes);
  EXPECT_EQ(e.first_down_bytes, orig.first_down_bytes);
  EXPECT_EQ(e.pad_aligned_up, orig.pad_aligned_up);
  EXPECT_EQ(e.pad_aligned_down, orig.pad_aligned_down);
}

TEST(EncSegment, KindNameIsEnc) { EXPECT_EQ(to_string(RecordKind::kEncFlow), "enc"); }

TEST(EncSegment, ViewIteratesInOrder) {
  const auto a = sample_enc(1'000'000);
  const auto b = sample_enc(2'000'000);
  std::string payload;
  append_record(payload, a);
  append_record(payload, b);
  const auto blob = build_segment(RecordKind::kEncFlow, 2, a.start, b.start, payload);
  SegmentView view = SegmentView::parse(blob, "test");
  EXPECT_EQ(view.kind(), RecordKind::kEncFlow);
  EXPECT_EQ(view.size(), 2u);
  capture::EncFlowRecord out;
  ASSERT_TRUE(view.next(out));
  EXPECT_EQ(out.start, a.start);
  ASSERT_TRUE(view.next(out));
  EXPECT_EQ(out.start, b.start);
  EXPECT_FALSE(view.next(out));
  view.rewind();
  CollectSink sink;
  EXPECT_EQ(view.deliver(sink), 2u);
  EXPECT_EQ(sink.order, "ee");
}

TEST(EncSegment, WrongKindCursorThrows) {
  const auto orig = sample_enc();
  std::string payload;
  append_record(payload, orig);
  const auto blob = build_segment(RecordKind::kEncFlow, 1, orig.start, orig.start, payload);
  SegmentView view = SegmentView::parse(blob, "test");
  capture::ConnRecord conn;
  EXPECT_THROW((void)view.next(conn), std::logic_error);
}

TEST(EncSegment, TimestampDisorderRejected) {
  const auto a = sample_enc(2'000'000);
  const auto b = sample_enc(1'000'000);  // goes backwards
  std::string payload;
  append_record(payload, a);
  append_record(payload, b);
  const auto blob = build_segment(RecordKind::kEncFlow, 2, b.start, a.start, payload);
  EXPECT_THROW((void)SegmentView::parse(blob, "test"), std::runtime_error);
}

TEST(EncSegment, V2EncSegmentsAreRejected) {
  // The columnar v2 format has no enc column set; a header claiming
  // version 2 + kind enc must fail loudly at the single choke point.
  std::string blob;
  append_segment_header(blob, kSegmentVersionV2, RecordKind::kEncFlow, 0,
                        SimTime::from_us(0), SimTime::from_us(0), 0, crc32(""));
  try {
    (void)parse_segment_header(blob, "evil.seg");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("v1-only"), std::string::npos) << what;
  }
}

TEST(EncSpool, WriterRotatesAndListsEncSegments) {
  TempDir dir{"dnsctx_enc_spool"};
  SpoolConfig cfg;
  cfg.max_records_per_segment = 2;
  {
    SpoolWriter writer{dir.str(), cfg};
    for (int i = 0; i < 5; ++i) writer.on_encflow(sample_enc(1'000'000 + i * 1'000));
    writer.flush();
    EXPECT_EQ(writer.encflows_written(), 5u);
  }
  const auto listing = list_spool(dir.str());
  EXPECT_TRUE(listing.conn_segments.empty());
  EXPECT_TRUE(listing.dns_segments.empty());
  ASSERT_EQ(listing.enc_segments.size(), 3u);  // 2 + 2 + 1
  // Enc segments are v1 regardless of the configured (default v2) format.
  for (const auto& path : listing.enc_segments) {
    SegmentView view = SegmentView::map_file(path);
    EXPECT_EQ(view.header().version, kSegmentVersion);
    EXPECT_EQ(view.kind(), RecordKind::kEncFlow);
  }
}

TEST(EncSpool, ReplayMergesThreeKindsWithTieOrder) {
  TempDir dir{"dnsctx_enc_merge"};
  {
    SpoolWriter writer{dir.str(), SpoolConfig{}};
    // All three kinds at the same instant, written in "wrong" order: the
    // merged timeline must still deliver dns, conn, enc.
    capture::EncFlowRecord e = sample_enc(1'000'000);
    capture::ConnRecord c;
    c.start = SimTime::from_us(1'000'000);
    c.orig_ip = Ipv4Addr{100, 66, 3, 7};
    c.resp_ip = Ipv4Addr{1, 2, 3, 4};
    capture::DnsRecord d;
    d.ts = SimTime::from_us(1'000'000);
    d.client_ip = Ipv4Addr{100, 66, 3, 7};
    d.resolver_ip = Ipv4Addr{100, 66, 250, 1};
    d.query = "tie.example.com";
    writer.on_encflow(e);
    writer.on_conn(c);
    writer.on_dns(d);
    // A later enc record so the enc stream also interleaves after ties.
    writer.on_encflow(sample_enc(2'000'000));
    writer.flush();
  }
  CollectSink sink;
  const auto counts = replay_spool(dir.str(), sink);
  EXPECT_EQ(counts.conns, 1u);
  EXPECT_EQ(counts.dns, 1u);
  EXPECT_EQ(counts.encflows, 2u);
  EXPECT_EQ(sink.order, "dcee");
}

TEST(EncSpool, ReplayDatasetMatchesSpoolReplay) {
  capture::Dataset ds;
  ds.encflows = {sample_enc(1'000'000), sample_enc(3'000'000)};
  capture::ConnRecord c;
  c.start = SimTime::from_us(2'000'000);
  ds.conns = {c};
  CollectSink sink;
  const auto counts = replay_dataset(ds, sink);
  EXPECT_EQ(counts.conns, 1u);
  EXPECT_EQ(counts.encflows, 2u);
  EXPECT_EQ(sink.order, "ece");
}

TEST(EncSpool, TextConvertersRoundTripEncflowLog) {
  TempDir text{"dnsctx_enc_text"};
  TempDir spool{"dnsctx_enc_text_spool"};
  TempDir text2{"dnsctx_enc_text_back"};
  {
    capture::Dataset ds;
    ds.encflows = {sample_enc(1'000'000), sample_enc(2'000'000)};
    std::ofstream conn{text.str() + "/conn.log"};
    std::ofstream dns{text.str() + "/dns.log"};
    std::ofstream enc{text.str() + "/encflow.log"};
    capture::write_conn_log(conn, ds.conns);
    capture::write_dns_log(dns, ds.dns);
    capture::write_encflow_log(enc, ds.encflows);
  }
  const auto in_counts = text_to_spool(text.str(), spool.str());
  EXPECT_EQ(in_counts.encflows, 2u);
  const auto out_counts = spool_to_text(spool.str(), text2.str());
  EXPECT_EQ(out_counts.encflows, 2u);
  std::ifstream a{text.str() + "/encflow.log"};
  std::ifstream b{text2.str() + "/encflow.log"};
  const std::string sa{std::istreambuf_iterator<char>{a}, {}};
  const std::string sb{std::istreambuf_iterator<char>{b}, {}};
  EXPECT_EQ(sa, sb);
  EXPECT_FALSE(sa.empty());
}

TEST(EncSpool, SpoolToTextOmitsEncflowLogWhenEmpty) {
  TempDir text{"dnsctx_noenc_text"};
  TempDir spool{"dnsctx_noenc_spool"};
  TempDir text2{"dnsctx_noenc_back"};
  {
    capture::ConnRecord c;
    c.start = SimTime::from_us(1'000'000);
    std::ofstream conn{text.str() + "/conn.log"};
    std::ofstream dns{text.str() + "/dns.log"};
    capture::write_conn_log(conn, {c});
    capture::write_dns_log(dns, {});
  }
  (void)text_to_spool(text.str(), spool.str());
  const auto counts = spool_to_text(spool.str(), text2.str());
  EXPECT_EQ(counts.encflows, 0u);
  // Cleartext spools convert to exactly the classic two files.
  EXPECT_FALSE(fs::exists(text2.str() + "/encflow.log"));
  EXPECT_TRUE(fs::exists(text2.str() + "/conn.log"));
}

}  // namespace
}  // namespace dnsctx::stream
