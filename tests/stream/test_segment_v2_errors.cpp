// dnsctx — v2 segment failure-path tests: every structural defect a
// hostile or corrupted segment can carry must be rejected at
// SegmentView construction with an error naming the source, the
// offending column/record where applicable, and a byte offset — the
// contract that lets `serve` enqueue validated views unconditionally.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "stream/codec.hpp"
#include "stream/segment.hpp"
#include "stream/segment_v2.hpp"
#include "stream/segment_view.hpp"
#include "stream/wire.hpp"

namespace dnsctx::stream {
namespace {

/// EXPECT that constructing a view over `blob` throws a
/// std::runtime_error whose message contains every needle.
void expect_rejected(const std::string& blob, std::initializer_list<std::string> needles) {
  try {
    (void)SegmentView::parse(blob, "bad.seg");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    for (const auto& needle : needles) {
      EXPECT_NE(msg.find(needle), std::string::npos)
          << "message \"" << msg << "\" lacks \"" << needle << "\"";
    }
  }
}

/// Recompute the payload CRC after a surgical corruption, so the test
/// reaches the check under scrutiny instead of tripping the CRC gate.
void refresh_crc(std::string& blob) {
  const std::uint32_t crc = crc32(std::string_view{blob}.substr(kSegmentHeaderBytes));
  for (std::size_t i = 0; i < 4; ++i) {
    blob[36 + i] = static_cast<char>((crc >> (8 * i)) & 0xff);
  }
}

/// Assemble a v2 blob around a hand-crafted (uncompressed) body, with a
/// consistent CRC — the harness for every malformed-body case below.
std::string make_v2_blob(RecordKind kind, std::uint32_t count, std::int64_t first_us,
                         std::int64_t last_us, std::string_view body) {
  std::string payload;
  wire::put_u8(payload, 0);  // codec none
  wire::put_u64(payload, body.size());
  payload += body;
  std::string out;
  append_segment_header(out, kSegmentVersionV2, kind, count, SimTime::from_us(first_us),
                        SimTime::from_us(last_us), payload.size(), crc32(payload));
  out += payload;
  return out;
}

void put_col(std::string& body, std::string_view col) {
  put_varint(body, col.size());
  body += col;
}

capture::ConnRecord conn_at(std::int64_t us) {
  capture::ConnRecord c;
  c.start = SimTime::from_us(us);
  c.orig_ip = Ipv4Addr{10, 0, 0, 1};
  c.resp_ip = Ipv4Addr{1, 2, 3, 4};
  return c;
}

/// A valid single-record dns column set (no dictionary prefixes), so
/// dictionary-corruption tests can graft broken dictionaries in front.
/// client_ip / resolver_ip are indexes 0 / 1 into the address
/// dictionary (pair with `addrs_of({.., ..})`).
std::string one_dns_columns(std::uint64_t name_idx = 0, std::uint64_t qtype = 1) {
  std::string body;
  std::string col;
  auto flush = [&] {
    put_col(body, col);
    col.clear();
  };
  put_varint(col, 0), flush();                       // ts_delta
  put_varint(col, 0), flush();                       // duration
  put_varint(col, 0), flush();                       // client_ip (addr index)
  wire::put_u16(col, 50000), flush();                // client_port
  put_varint(col, 1), flush();                       // resolver_ip (addr index)
  put_varint(col, qtype), flush();                   // qtype
  wire::put_u8(col, 0), flush();                     // rcode
  wire::put_u8(col, 1), flush();                     // answered
  put_varint(col, name_idx), flush();                // name_idx
  put_varint(col, 0), flush();                       // answer_count
  flush();                                           // ans_addr (empty)
  flush();                                           // ans_ttl (empty)
  return body;
}

std::string dict_of(std::initializer_list<std::string_view> names) {
  std::string out;
  put_varint(out, names.size());
  for (const auto name : names) {
    put_varint(out, name.size());
    out += name;
  }
  return out;
}

std::string addrs_of(std::initializer_list<std::uint32_t> addrs) {
  std::string out;
  put_varint(out, addrs.size());
  for (const auto a : addrs) wire::put_u32(out, a);
  return out;
}

TEST(SegmentV2Errors, UnknownCodecIdRejected) {
  std::string blob = build_segment_v2({conn_at(1000)}, SegmentCodec::kNone);
  blob[kSegmentHeaderBytes] = 7;  // codec id is the first payload byte
  refresh_crc(blob);
  expect_rejected(blob, {"bad.seg", "unknown segment codec id 7"});
}

TEST(SegmentV2Errors, BodyLengthMismatchRejected) {
  std::string blob = build_segment_v2({conn_at(1000)}, SegmentCodec::kNone);
  blob[kSegmentHeaderBytes + 1] ^= 0x01;  // raw body length, low byte
  refresh_crc(blob);
  expect_rejected(blob, {"bad.seg", "segment body length mismatch"});
}

TEST(SegmentV2Errors, DecompressionBombCapped) {
  std::string blob = build_segment_v2({conn_at(1000)}, SegmentCodec::kNone);
  // Frame a raw length beyond the 256 MiB reader cap.
  const std::uint64_t huge = kMaxRawBodyBytes + 1;
  for (std::size_t i = 0; i < 8; ++i) {
    blob[kSegmentHeaderBytes + 1 + i] = static_cast<char>((huge >> (8 * i)) & 0xff);
  }
  refresh_crc(blob);
  expect_rejected(blob, {"bad.seg", "exceeds limit"});
}

TEST(SegmentV2Errors, TruncatedCompressedBodyRejected) {
  // Enough repetitive records that the LZ pass genuinely engages.
  std::vector<capture::ConnRecord> recs;
  for (int i = 0; i < 200; ++i) recs.push_back(conn_at(1000 + i));
  std::string blob = build_segment_v2(recs, SegmentCodec::kLz);
  ASSERT_EQ(static_cast<std::uint8_t>(blob[kSegmentHeaderBytes]),
            static_cast<std::uint8_t>(SegmentCodec::kLz));
  blob.resize(blob.size() - 3);
  // Keep header/payload accounting consistent so the failure is the
  // codec's, not the framing's.
  const std::uint64_t payload_bytes = blob.size() - kSegmentHeaderBytes;
  for (std::size_t i = 0; i < 8; ++i) {
    blob[28 + i] = static_cast<char>((payload_bytes >> (8 * i)) & 0xff);
  }
  refresh_crc(blob);
  expect_rejected(blob, {"bad.seg", "decompression failed", "codec lz"});
}

TEST(SegmentV2Errors, CrcStillGuardsV2Payloads) {
  std::string blob = build_segment_v2({conn_at(1000)});
  blob[blob.size() - 1] ^= 0x20;
  expect_rejected(blob, {"bad.seg", "CRC"});
}

TEST(SegmentV2Errors, DictionaryLargerThanRecordCountRejected) {
  const std::string body = dict_of({"a.example", "b.example"}) +
                           addrs_of({0x0a000001u, 0x08080808u}) + one_dns_columns();
  expect_rejected(make_v2_blob(RecordKind::kDns, 1, 1000, 1000, body),
                  {"bad.seg", "dictionary holds 2 names for 1 records"});
}

TEST(SegmentV2Errors, OversizedDictionaryEntryRejected) {
  std::string body;
  put_varint(body, 1);
  put_varint(body, 70'000);  // single entry claiming 70 kB
  expect_rejected(make_v2_blob(RecordKind::kDns, 1, 1000, 1000, body),
                  {"bad.seg", "dictionary entry 0 length 70000 exceeds 65535"});
}

TEST(SegmentV2Errors, TruncatedDictionaryRejected) {
  std::string body;
  put_varint(body, 1);
  put_varint(body, 5);
  body += "ab";  // entry claims 5 bytes, 2 present
  expect_rejected(make_v2_blob(RecordKind::kDns, 1, 1000, 1000, body),
                  {"bad.seg", "truncated name dictionary", "byte offset"});
}

TEST(SegmentV2Errors, NameIndexOutOfDictionaryRangeRejected) {
  const std::string body = dict_of({"only.example"}) +
                           addrs_of({0x0a000001u, 0x08080808u}) +
                           one_dns_columns(/*name_idx=*/3);
  expect_rejected(make_v2_blob(RecordKind::kDns, 1, 1000, 1000, body),
                  {"bad.seg", "record 0 name index 3 out of dictionary range (1 names)"});
}

TEST(SegmentV2Errors, TruncatedAddressDictionaryRejected) {
  std::string body;
  put_varint(body, 3);  // claims 3 addresses (12 bytes), 4 present
  body += std::string(4, '\x01');
  expect_rejected(make_v2_blob(RecordKind::kConn, 1, 1000, 1000, body),
                  {"bad.seg", "truncated address dictionary", "byte offset"});
}

TEST(SegmentV2Errors, AddressDictionaryDeltaOverflowRejected) {
  // Entries beyond the raw head are varint deltas; a running sum past
  // u32 range can't be an IPv4 address.
  std::string body;
  put_varint(body, kDictHead + 1);
  for (std::uint32_t i = 0; i < kDictHead; ++i) wire::put_u32(body, 0x0a000000u + i);
  put_varint(body, 0x1'0000'0000ull);  // first tail delta, sum > 0xffffffff
  expect_rejected(make_v2_blob(RecordKind::kConn, 1, 1000, 1000, body),
                  {"bad.seg", "address dictionary entry 128 delta overflows u32"});
}

TEST(SegmentV2Errors, AddressIndexOutOfDictionaryRangeRejected) {
  std::string body = addrs_of({0x0a000001u});
  std::string col;
  auto flush = [&] {
    put_col(body, col);
    col.clear();
  };
  put_varint(col, 0), flush();  // ts_delta
  put_varint(col, 0), flush();  // duration
  put_varint(col, 5), flush();  // orig_ip: index 5 of 1
  put_varint(col, 0), flush();  // resp_ip
  wire::put_u16(col, 0), flush();
  wire::put_u16(col, 0), flush();
  wire::put_u8(col, 0), flush();
  wire::put_u8(col, 0), flush();
  put_varint(col, 0), flush();  // orig_bytes
  put_varint(col, 0), flush();  // resp_bytes
  expect_rejected(
      make_v2_blob(RecordKind::kConn, 1, 1000, 1000, body),
      {"bad.seg", "record 0 address index 5 out of dictionary range (1 addresses)"});
}

TEST(SegmentV2Errors, ColumnOverrunningBodyRejected) {
  std::string body = addrs_of({});
  put_varint(body, 100);  // ts_delta column claims 100 bytes
  body += "xy";
  expect_rejected(make_v2_blob(RecordKind::kConn, 1, 1000, 1000, body),
                  {"bad.seg", "column 'ts_delta' overruns segment body", "byte offset"});
}

TEST(SegmentV2Errors, TruncatedColumnVarintNamesColumnRecordAndOffset) {
  std::string body = addrs_of({});
  put_col(body, "\x80");  // ts_delta: unterminated varint
  for (int i = 0; i < 9; ++i) put_col(body, "");
  expect_rejected(make_v2_blob(RecordKind::kConn, 1, 1000, 1000, body),
                  {"bad.seg", "column 'ts_delta'", "truncated varint", "record 0",
                   "byte offset 0"});
}

TEST(SegmentV2Errors, TrailingBytesAfterColumnsRejected) {
  std::string body = addrs_of({});
  for (int i = 0; i < 10; ++i) put_col(body, "");
  body += "junk";
  expect_rejected(make_v2_blob(RecordKind::kConn, 0, 0, 0, body),
                  {"bad.seg", "4 trailing bytes after 10 columns"});
}

TEST(SegmentV2Errors, TrailingColumnBytesAfterFinalRecordRejected) {
  // Well-formed column table, but the duration column holds two values
  // for a one-record segment.
  std::string blob_body = addrs_of({1, 2});
  std::string col;
  auto flush = [&] {
    put_col(blob_body, col);
    col.clear();
  };
  put_varint(col, 0), flush();                 // ts_delta
  put_varint(col, 0), put_varint(col, 0), flush();  // duration: one too many
  put_varint(col, 0), flush();                 // orig_ip (addr index)
  put_varint(col, 1), flush();                 // resp_ip (addr index)
  wire::put_u16(col, 3), flush();              // orig_port
  wire::put_u16(col, 4), flush();              // resp_port
  wire::put_u8(col, 0), flush();               // proto
  wire::put_u8(col, 0), flush();               // state
  put_varint(col, 0), flush();                 // orig_bytes
  put_varint(col, 0), flush();                 // resp_bytes
  expect_rejected(make_v2_blob(RecordKind::kConn, 1, 1000, 1000, blob_body),
                  {"bad.seg", "column 'duration'", "trailing bytes after final record"});
}

TEST(SegmentV2Errors, QtypeOutOfRangeRejected) {
  const std::string body = dict_of({"x.example"}) +
                           addrs_of({0x0a000001u, 0x08080808u}) +
                           one_dns_columns(0, /*qtype=*/0x10000);
  expect_rejected(make_v2_blob(RecordKind::kDns, 1, 1000, 1000, body),
                  {"bad.seg", "column 'qtype'", "value out of range"});
}

TEST(SegmentV2Errors, FirstTimestampMustMatchHeader) {
  // A nonzero first delta puts record 0 after header.first_ts.
  std::string body = addrs_of({0});
  std::string col;
  put_varint(col, 7);
  put_col(body, col);
  col.clear();
  put_varint(col, 0), put_col(body, col), col.clear();  // duration
  put_varint(col, 0), put_col(body, col), col.clear();  // orig_ip (addr index)
  put_varint(col, 0), put_col(body, col), col.clear();  // resp_ip (addr index)
  wire::put_u16(col, 0), put_col(body, col), col.clear();
  wire::put_u16(col, 0), put_col(body, col), col.clear();
  wire::put_u8(col, 0), put_col(body, col), col.clear();
  wire::put_u8(col, 0), put_col(body, col), col.clear();
  put_varint(col, 0), put_col(body, col), col.clear();
  put_varint(col, 0), put_col(body, col), col.clear();
  expect_rejected(make_v2_blob(RecordKind::kConn, 1, 1000, 1007, body),
                  {"bad.seg", "first record timestamp disagrees with header first_ts"});
}

TEST(SegmentV2Errors, LastTimestampMustMatchHeader) {
  std::string blob = build_segment_v2({conn_at(1000)}, SegmentCodec::kNone);
  // Claim a later last_ts than the records encode (bytes 20..27).
  const std::int64_t fake = 5000;
  for (std::size_t i = 0; i < 8; ++i) {
    blob[20 + i] = static_cast<char>((static_cast<std::uint64_t>(fake) >> (8 * i)) & 0xff);
  }
  expect_rejected(blob, {"bad.seg", "disagrees with header last_ts"});
}

TEST(SegmentV2Errors, TimestampDeltaOverflowRejected) {
  std::string body = addrs_of({0});
  std::string col;
  put_varint(col, 0);
  put_varint(col, std::uint64_t(-1));  // wraps past i64 max
  put_col(body, col);
  col.clear();
  auto two = [&](auto put) {
    put(), put();
    put_col(body, col);
    col.clear();
  };
  two([&] { put_varint(col, 0); });                 // duration
  two([&] { put_varint(col, 0); });                 // orig_ip (addr index)
  two([&] { put_varint(col, 0); });                 // resp_ip (addr index)
  two([&] { wire::put_u16(col, 0); });              // orig_port
  two([&] { wire::put_u16(col, 0); });              // resp_port
  two([&] { wire::put_u8(col, 0); });               // proto
  two([&] { wire::put_u8(col, 0); });               // state
  two([&] { put_varint(col, 0); });                 // orig_bytes
  two([&] { put_varint(col, 0); });                 // resp_bytes
  expect_rejected(make_v2_blob(RecordKind::kConn, 2, 1000, 1000, body),
                  {"bad.seg", "timestamp delta overflows"});
}

TEST(SegmentV2Errors, TruncatedPayloadStillNamesSource) {
  const std::string blob = build_segment_v2({conn_at(1000)});
  expect_rejected(blob.substr(0, blob.size() - 2),
                  {"bad.seg", "truncated segment payload"});
}

}  // namespace
}  // namespace dnsctx::stream
