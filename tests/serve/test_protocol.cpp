// dnsctx — ingest frame protocol tests: handshake validation, framing,
// CRC propagation, oversized/truncated/corrupt inputs, and the
// incremental (byte-at-a-time) feed path the nonblocking server relies
// on.
#include <gtest/gtest.h>

#include "capture/records.hpp"
#include "serve/http.hpp"
#include "serve/ingest.hpp"
#include "stream/segment.hpp"

namespace dnsctx::serve {
namespace {

[[nodiscard]] std::string tiny_conn_segment() {
  capture::ConnRecord rec;
  rec.start = SimTime::from_us(1'000'000);
  rec.duration = SimDuration::us(5000);
  rec.orig_ip = Ipv4Addr{10, 0, 0, 1};
  rec.resp_ip = Ipv4Addr{93, 184, 216, 34};
  rec.orig_port = 49152;
  rec.resp_port = 443;
  std::string payload;
  stream::append_record(payload, rec);
  return stream::build_segment(stream::RecordKind::kConn, 1, rec.start, rec.start, payload);
}

TEST(IngestProtocol, TenantNameValidation) {
  EXPECT_TRUE(valid_tenant_name("town-a"));
  EXPECT_TRUE(valid_tenant_name("A.b_c-9"));
  EXPECT_FALSE(valid_tenant_name(""));
  EXPECT_FALSE(valid_tenant_name("has space"));
  EXPECT_FALSE(valid_tenant_name("slash/y"));
  EXPECT_FALSE(valid_tenant_name(std::string(65, 'a')));
  EXPECT_TRUE(valid_tenant_name(std::string(64, 'a')));
}

TEST(IngestProtocol, HandshakeRoundTrip) {
  FrameDecoder dec{"test"};
  dec.feed(encode_handshake(Handshake{"town-a", true}));
  ASSERT_EQ(dec.next(), FrameDecoder::Event::kHandshake);
  EXPECT_EQ(dec.handshake().tenant, "town-a");
  EXPECT_TRUE(dec.handshake().want_acks);
  EXPECT_TRUE(dec.handshaken());
  EXPECT_EQ(dec.next(), FrameDecoder::Event::kNeedMore);
}

TEST(IngestProtocol, EncodeHandshakeRejectsInvalidTenant) {
  EXPECT_THROW((void)encode_handshake(Handshake{"bad name", false}), std::runtime_error);
}

TEST(IngestProtocol, SegmentAndFlushFrames) {
  const std::string blob = tiny_conn_segment();
  std::string wire = encode_handshake(Handshake{"t", false});
  append_data_frame(wire, blob);
  append_flush_frame(wire);

  FrameDecoder dec{"test"};
  dec.feed(wire);
  ASSERT_EQ(dec.next(), FrameDecoder::Event::kHandshake);
  ASSERT_EQ(dec.next(), FrameDecoder::Event::kSegment);
  EXPECT_EQ(dec.segment().header().record_count, 1u);
  EXPECT_EQ(dec.segment().size(), 1u);
  EXPECT_EQ(dec.segment().kind(), stream::RecordKind::kConn);
  ASSERT_EQ(dec.next(), FrameDecoder::Event::kFlush);
  EXPECT_EQ(dec.next(), FrameDecoder::Event::kNeedMore);
}

TEST(IngestProtocol, ByteAtATimeFeedStillParses) {
  const std::string blob = tiny_conn_segment();
  std::string wire = encode_handshake(Handshake{"drip", true});
  append_data_frame(wire, blob);
  append_flush_frame(wire);

  FrameDecoder dec{"test"};
  std::vector<FrameDecoder::Event> events;
  for (const char c : wire) {
    dec.feed({&c, 1});
    for (;;) {
      const auto ev = dec.next();
      if (ev == FrameDecoder::Event::kNeedMore) break;
      events.push_back(ev);
      ASSERT_NE(ev, FrameDecoder::Event::kError) << dec.error();
    }
  }
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], FrameDecoder::Event::kHandshake);
  EXPECT_EQ(events[1], FrameDecoder::Event::kSegment);
  EXPECT_EQ(events[2], FrameDecoder::Event::kFlush);
}

TEST(IngestProtocol, BadMagicNamesPeer) {
  FrameDecoder dec{"tcp 10.1.2.3:555"};
  dec.feed(std::string("XXXXxxxx", 8));
  ASSERT_EQ(dec.next(), FrameDecoder::Event::kError);
  EXPECT_NE(dec.error().find("tcp 10.1.2.3:555"), std::string::npos) << dec.error();
  EXPECT_NE(dec.error().find("magic"), std::string::npos) << dec.error();
  // Poisoned: stays kError even with fresh bytes.
  dec.feed(encode_handshake(Handshake{"t", false}));
  EXPECT_EQ(dec.next(), FrameDecoder::Event::kError);
}

TEST(IngestProtocol, UnsupportedVersionRejected) {
  std::string wire = encode_handshake(Handshake{"t", false});
  wire[4] = 0x7f;  // version low byte
  FrameDecoder dec{"test"};
  dec.feed(wire);
  ASSERT_EQ(dec.next(), FrameDecoder::Event::kError);
  EXPECT_NE(dec.error().find("version"), std::string::npos) << dec.error();
}

TEST(IngestProtocol, UnknownFlagsRejected) {
  std::string wire = encode_handshake(Handshake{"t", false});
  wire[6] = static_cast<char>(0x80);
  FrameDecoder dec{"test"};
  dec.feed(wire);
  EXPECT_EQ(dec.next(), FrameDecoder::Event::kError);
}

TEST(IngestProtocol, InvalidTenantCharsetRejected) {
  std::string wire = encode_handshake(Handshake{"ab", false});
  wire[8] = ' ';  // first tenant byte
  FrameDecoder dec{"test"};
  dec.feed(wire);
  EXPECT_EQ(dec.next(), FrameDecoder::Event::kError);
}

TEST(IngestProtocol, OversizedFrameRejected) {
  std::string wire = encode_handshake(Handshake{"t", false});
  const std::uint32_t huge = 1u << 30;
  for (int i = 0; i < 4; ++i) wire.push_back(static_cast<char>((huge >> (8 * i)) & 0xff));
  FrameDecoder dec{"test", FrameDecoder::Limits{16u << 20}};
  dec.feed(wire);
  ASSERT_EQ(dec.next(), FrameDecoder::Event::kHandshake);
  ASSERT_EQ(dec.next(), FrameDecoder::Event::kError);
  EXPECT_NE(dec.error().find("exceeds"), std::string::npos) << dec.error();
}

TEST(IngestProtocol, CorruptCrcRejected) {
  std::string blob = tiny_conn_segment();
  blob.back() = static_cast<char>(blob.back() ^ 0x01);  // flip a payload bit
  std::string wire = encode_handshake(Handshake{"t", false});
  append_data_frame(wire, blob);
  FrameDecoder dec{"tcp 127.0.0.1:9"};
  dec.feed(wire);
  ASSERT_EQ(dec.next(), FrameDecoder::Event::kHandshake);
  ASSERT_EQ(dec.next(), FrameDecoder::Event::kError);
  EXPECT_NE(dec.error().find("tcp 127.0.0.1:9"), std::string::npos) << dec.error();
}

TEST(IngestProtocol, TruncatedSegmentBlobRejected) {
  const std::string blob = tiny_conn_segment();
  // Frame claims the truncated length, so the decoder hands a short
  // blob to the segment parser, which must reject it.
  std::string wire = encode_handshake(Handshake{"t", false});
  append_data_frame(wire, std::string_view{blob}.substr(0, blob.size() - 3));
  FrameDecoder dec{"test"};
  dec.feed(wire);
  ASSERT_EQ(dec.next(), FrameDecoder::Event::kHandshake);
  EXPECT_EQ(dec.next(), FrameDecoder::Event::kError);
}

TEST(IngestProtocol, BufferCompactionKeepsParsing) {
  // Stream enough frames to trip the consumed-prefix compaction and
  // confirm nothing is lost across it.
  const std::string blob = tiny_conn_segment();
  FrameDecoder dec{"test"};
  dec.feed(encode_handshake(Handshake{"t", false}));
  ASSERT_EQ(dec.next(), FrameDecoder::Event::kHandshake);
  int segments = 0;
  for (int i = 0; i < 200; ++i) {
    std::string wire;
    append_data_frame(wire, blob);
    dec.feed(wire);
    while (dec.next() == FrameDecoder::Event::kSegment) ++segments;
  }
  EXPECT_EQ(segments, 200);
}

TEST(HttpRender, ResponseCarriesLengthAndClose) {
  const std::string wire =
      render_http_response(HttpResponse{200, "application/json", "{\"a\":1}"});
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 7\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 7), "{\"a\":1}");
}

TEST(HttpRender, StatusText) {
  EXPECT_STREQ(http_status_text(404), "Not Found");
  EXPECT_STREQ(http_status_text(405), "Method Not Allowed");
  EXPECT_STREQ(http_status_text(599), "Unknown");
}

}  // namespace
}  // namespace dnsctx::serve
