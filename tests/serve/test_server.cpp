// dnsctx — loopback integration tests for the telemetry server.
//
// The headline contract: /results/<tenant> is byte-identical to the
// offline engine over the same records, for multiple tenants on one
// server, for in-order and cross-kind-reordered delivery, and for
// partial streams flushed by a graceful shutdown. The robustness
// contract: a malformed or oversized frame closes only the offending
// connection, and a full tenant queue pushes back through TCP instead
// of dropping anything.
#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/metrics.hpp"
#include "scenario/scenario.hpp"
#include "serve/push.hpp"
#include "serve/server.hpp"
#include "serve/sockets.hpp"
#include "stream/spool.hpp"

namespace dnsctx::serve {
namespace {

capture::Dataset simulate(std::size_t houses, int hours, std::uint64_t seed) {
  scenario::ScenarioConfig cfg;
  cfg.houses = houses;
  cfg.duration = SimDuration::hours(hours);
  cfg.seed = seed;
  scenario::Town town{cfg};
  town.run();
  return town.dataset();
}

/// What the server must serve for `ds`: the offline engine's JSON.
std::string expected_json(const capture::Dataset& ds) {
  stream::OnlineStudy engine;
  stream::replay_dataset(ds, engine);
  return result_json(engine.finalize());
}

[[nodiscard]] SimTime key_time(const capture::ConnRecord& r) { return r.start; }
[[nodiscard]] SimTime key_time(const capture::DnsRecord& r) { return r.ts; }

template <typename Rec>
std::vector<std::string> chunk_segments(const std::vector<Rec>& recs, stream::RecordKind kind,
                                        std::size_t per) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < recs.size(); i += per) {
    const std::size_t end = std::min(i + per, recs.size());
    std::string payload;
    for (std::size_t j = i; j < end; ++j) stream::append_record(payload, recs[j]);
    const SimTime first = key_time(recs[i]);
    const SimTime last = key_time(recs[end - 1]);
    out.push_back(stream::build_segment(kind, static_cast<std::uint32_t>(end - i), first,
                                        last, payload));
  }
  return out;
}

/// Server fixture: loop on a background thread, ephemeral ports.
struct TestServer {
  EventLoop loop;
  std::unique_ptr<Server> server;
  std::thread thread;

  explicit TestServer(ServeConfig cfg = {}) {
    server = std::make_unique<Server>(loop, std::move(cfg));
    server->start();
    thread = std::thread{[this] { loop.run(); }};
  }

  ~TestServer() { stop(); }

  void stop() {
    if (thread.joinable()) {
      loop.stop();
      thread.join();
    }
  }

  [[nodiscard]] std::uint16_t ingest_port() const { return server->ingest_port(); }
  [[nodiscard]] std::uint16_t http_port() const { return server->http_port(); }
};

void write_all_fd(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const auto n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    ASSERT_TRUE(n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR))
        << std::strerror(errno);
    pollfd pfd{fd, POLLOUT, 0};
    ASSERT_GT(::poll(&pfd, 1, 5000), 0);
  }
}

/// Read until EOF (with a deadline); returns everything received.
std::string read_to_eof(int fd, int timeout_ms = 5000) {
  std::string out;
  char buf[4096];
  for (;;) {
    const auto n = ::read(fd, buf, sizeof buf);
    if (n > 0) {
      out.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return out;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      pollfd pfd{fd, POLLIN, 0};
      if (::poll(&pfd, 1, timeout_ms) <= 0) return out;  // deadline: return what we have
      continue;
    }
    if (errno == EINTR) continue;
    return out;
  }
}

std::string http_get(std::uint16_t port, const std::string& target) {
  const int fd = connect_tcp("127.0.0.1", port);
  write_all_fd(fd, "GET " + target + " HTTP/1.1\r\nHost: t\r\n\r\n");
  const std::string resp = read_to_eof(fd);
  ::close(fd);
  return resp;
}

std::string status_line(const std::string& resp) {
  return resp.substr(0, resp.find("\r\n"));
}

std::string body_of(const std::string& resp) {
  const auto split = resp.find("\r\n\r\n");
  return split == std::string::npos ? std::string{} : resp.substr(split + 4);
}

/// True once read() reports EOF on `fd` (server closed the connection).
bool wait_closed(int fd, int timeout_ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds{timeout_ms};
  char buf[256];
  while (std::chrono::steady_clock::now() < deadline) {
    const auto n = ::read(fd, buf, sizeof buf);
    if (n == 0) return true;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd, POLLIN, 0};
      (void)::poll(&pfd, 1, 100);
      continue;
    }
    if (n < 0 && errno != EINTR) return true;  // ECONNRESET counts as closed
  }
  return false;
}

TEST(Serve, TwoTenantsByteIdenticalToBatchAcrossDeliveryOrders) {
  const auto ds1 = simulate(8, 2, 1);
  const auto ds2 = simulate(8, 2, 7);
  const std::string want1 = expected_json(ds1);
  const std::string want2 = expected_json(ds2);

  TestServer ts;

  // Tenant alpha: near-in-order interleave of conn and dns segments.
  {
    PushClient client{"127.0.0.1", ts.ingest_port(), Handshake{"alpha", true}};
    const auto conns = chunk_segments(ds1.conns, stream::RecordKind::kConn, 257);
    const auto dns = chunk_segments(ds1.dns, stream::RecordKind::kDns, 257);
    std::size_t sent = 0;
    for (std::size_t i = 0; i < std::max(conns.size(), dns.size()); ++i) {
      if (i < conns.size()) client.send_segment(conns[i]), ++sent;
      if (i < dns.size()) client.send_segment(dns[i]), ++sent;
    }
    client.flush();
    ++sent;
    std::uint64_t released = 0;
    for (std::size_t i = 0; i < sent; ++i) released = client.read_ack();
    EXPECT_EQ(released, ds1.conns.size() + ds1.dns.size());
  }

  // Tenant beta: maximal cross-kind reorder — every conn segment before
  // any dns segment. The LiveFeed watermark must still deliver the
  // canonical order.
  {
    PushClient client{"127.0.0.1", ts.ingest_port(), Handshake{"beta", true}};
    std::size_t sent = 0;
    for (const auto& seg : chunk_segments(ds2.conns, stream::RecordKind::kConn, 509)) {
      client.send_segment(seg);
      ++sent;
    }
    for (const auto& seg : chunk_segments(ds2.dns, stream::RecordKind::kDns, 509)) {
      client.send_segment(seg);
      ++sent;
    }
    client.flush();
    ++sent;
    std::uint64_t released = 0;
    for (std::size_t i = 0; i < sent; ++i) released = client.read_ack();
    EXPECT_EQ(released, ds2.conns.size() + ds2.dns.size());
  }

  const std::string resp1 = http_get(ts.http_port(), "/results/alpha");
  const std::string resp2 = http_get(ts.http_port(), "/results/beta");
  EXPECT_EQ(status_line(resp1), "HTTP/1.1 200 OK");
  EXPECT_EQ(body_of(resp1), want1 + "\n");
  EXPECT_EQ(body_of(resp2), want2 + "\n");

  ts.stop();
  EXPECT_EQ(ts.server->stats().connections_errored, 0u);
}

TEST(Serve, GracefulShutdownFlushesPartialResults) {
  const auto ds = simulate(6, 1, 3);
  const std::string want = expected_json(ds);

  const auto results_dir =
      std::filesystem::temp_directory_path() / "dnsctx_serve_results_test";
  std::filesystem::remove_all(results_dir);
  std::filesystem::create_directories(results_dir);

  ServeConfig cfg;
  cfg.results_dir = results_dir.string();
  TestServer ts{cfg};
  {
    PushClient client{"127.0.0.1", ts.ingest_port(), Handshake{"town", true}};
    for (const auto& seg : chunk_segments(ds.conns, stream::RecordKind::kConn, 997)) {
      client.send_segment(seg);
      (void)client.read_ack();
    }
    for (const auto& seg : chunk_segments(ds.dns, stream::RecordKind::kDns, 997)) {
      client.send_segment(seg);
      (void)client.read_ack();
    }
    // No FLUSH frame: the reorder window still holds the record tail.
  }

  ts.stop();  // what `kill -TERM` does, minus the signal plumbing
  ts.server->finish();

  const auto tenant = ts.server->tenants().find("town");
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(tenant->results(), want);

  std::ifstream in{results_dir / "town.json"};
  ASSERT_TRUE(in.good());
  std::ostringstream file;
  file << in.rdbuf();
  EXPECT_EQ(file.str(), want + "\n");
  std::filesystem::remove_all(results_dir);
}

TEST(Serve, MalformedFrameClosesOnlyThatConnection) {
  const auto ds = simulate(4, 1, 2);
  TestServer ts;

  PushClient good{"127.0.0.1", ts.ingest_port(), Handshake{"steady", true}};
  const auto segs = chunk_segments(ds.conns, stream::RecordKind::kConn, 4096);
  ASSERT_FALSE(segs.empty());
  good.send_segment(segs[0]);
  (void)good.read_ack();

  // A second producer sends garbage where the handshake belongs.
  const int bad = connect_tcp("127.0.0.1", ts.ingest_port());
  write_all_fd(bad, "GARBAGE!");
  EXPECT_TRUE(wait_closed(bad));
  ::close(bad);

  // And a third handshakes fine, then corrupts a frame CRC.
  {
    std::string blob = segs[0];
    blob.back() = static_cast<char>(blob.back() ^ 0x01);
    PushClient corrupt{"127.0.0.1", ts.ingest_port(), Handshake{"corrupt", false}};
    corrupt.send_segment(blob);
    EXPECT_TRUE(wait_closed(corrupt.fd()));
  }

  // The survivor keeps streaming on the same connection. (A conn-only
  // stream acks 0 until FLUSH — the watermark needs both kinds.)
  good.send_segment(segs[0]);
  (void)good.read_ack();
  good.flush();
  EXPECT_EQ(good.read_ack(), 2 * ds.conns.size());

  ts.stop();
  EXPECT_EQ(ts.server->stats().connections_errored, 2u);
  EXPECT_NE(ts.server->tenants().find("steady"), nullptr);
}

TEST(Serve, OversizedFrameClosesConnection) {
  ServeConfig cfg;
  cfg.max_frame_bytes = 1024;
  TestServer ts{cfg};

  PushClient client{"127.0.0.1", ts.ingest_port(), Handshake{"big", false}};
  client.send_segment(std::string(4096, '\0'));
  EXPECT_TRUE(wait_closed(client.fd()));

  ts.stop();
  EXPECT_EQ(ts.server->stats().connections_errored, 1u);
}

TEST(Serve, MaxTenantsRejectsHandshake) {
  ServeConfig cfg;
  cfg.tenant.max_tenants = 1;
  TestServer ts{cfg};

  PushClient first{"127.0.0.1", ts.ingest_port(), Handshake{"only", true}};
  const auto ds = simulate(4, 1, 2);
  first.send_segment(chunk_segments(ds.conns, stream::RecordKind::kConn, 8192)[0]);
  (void)first.read_ack();  // tenant "only" is live

  PushClient second{"127.0.0.1", ts.ingest_port(), Handshake{"overflow", false}};
  EXPECT_TRUE(wait_closed(second.fd()));

  // A RE-handshake into the existing tenant still succeeds.
  PushClient rejoin{"127.0.0.1", ts.ingest_port(), Handshake{"only", true}};
  rejoin.send_segment(chunk_segments(ds.conns, stream::RecordKind::kConn, 8192)[0]);
  (void)rejoin.read_ack();
  rejoin.flush();
  EXPECT_EQ(rejoin.read_ack(), 2 * ds.conns.size());

  ts.stop();
  EXPECT_EQ(ts.server->tenants().size(), 1u);
}

TEST(Serve, IdleTenantIsEvicted) {
  ServeConfig cfg;
  cfg.tenant.idle_evict = std::chrono::milliseconds{100};
  cfg.sweep_period = std::chrono::milliseconds{25};
  TestServer ts{cfg};

  const auto ds = simulate(4, 1, 2);
  {
    PushClient client{"127.0.0.1", ts.ingest_port(), Handshake{"ghost", true}};
    client.send_segment(chunk_segments(ds.conns, stream::RecordKind::kConn, 8192)[0]);
    (void)client.read_ack();
    client.flush();
    (void)client.read_ack();
    EXPECT_EQ(status_line(http_get(ts.http_port(), "/results/ghost")), "HTTP/1.1 200 OK");
  }  // producer disconnects; the tenant is now unattached and idle

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds{10};
  bool evicted = false;
  while (std::chrono::steady_clock::now() < deadline) {
    if (status_line(http_get(ts.http_port(), "/results/ghost")) ==
        "HTTP/1.1 404 Not Found") {
      evicted = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds{25});
  }
  EXPECT_TRUE(evicted);

  ts.stop();
  EXPECT_EQ(ts.server->tenants().evicted(), 1u);
}

TEST(Serve, BackpressureTinyQueueLosesNothing) {
  const auto ds = simulate(8, 2, 5);
  const std::string want = expected_json(ds);

  ServeConfig cfg;
  cfg.tenant.max_queued_segments = 2;  // force pause/resume constantly
  cfg.pump_budget = 1;
  cfg.sockbuf_bytes = 4096;
  TestServer ts{cfg};

  PushClient client{"127.0.0.1", ts.ingest_port(), Handshake{"squeeze", false}};
  // Small segments, no acks: the producer slams frames as fast as the
  // socket accepts them, far faster than a budget-1 pump drains.
  for (const auto& seg : chunk_segments(ds.conns, stream::RecordKind::kConn, 101)) {
    client.send_segment(seg);
  }
  for (const auto& seg : chunk_segments(ds.dns, stream::RecordKind::kDns, 101)) {
    client.send_segment(seg);
  }
  client.flush();

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds{30};
  std::string body;
  while (std::chrono::steady_clock::now() < deadline) {
    body = body_of(http_get(ts.http_port(), "/results/squeeze"));
    if (body == want + "\n") break;
    std::this_thread::sleep_for(std::chrono::milliseconds{50});
  }
  EXPECT_EQ(body, want + "\n");

  ts.stop();
  EXPECT_EQ(ts.server->stats().connections_errored, 0u);
  const auto tenant = ts.server->tenants().find("squeeze");
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(tenant->records_released(), ds.conns.size() + ds.dns.size());
}

TEST(Serve, HttpEndpointsAndErrors) {
  obs::set_enabled(true);
  TestServer ts;

  EXPECT_EQ(body_of(http_get(ts.http_port(), "/healthz")), "ok\n");
  EXPECT_EQ(status_line(http_get(ts.http_port(), "/nope")), "HTTP/1.1 404 Not Found");
  EXPECT_EQ(status_line(http_get(ts.http_port(), "/results/..%2f..")),
            "HTTP/1.1 400 Bad Request");
  EXPECT_EQ(status_line(http_get(ts.http_port(), "/results/absent")),
            "HTTP/1.1 404 Not Found");

  const std::string metrics = http_get(ts.http_port(), "/metrics");
  EXPECT_EQ(status_line(metrics), "HTTP/1.1 200 OK");
  EXPECT_NE(body_of(metrics).find("dnsctx_serve_connections_active"), std::string::npos);

  // Non-GET method.
  {
    const int fd = connect_tcp("127.0.0.1", ts.http_port());
    write_all_fd(fd, "POST /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    EXPECT_EQ(status_line(read_to_eof(fd)), "HTTP/1.1 405 Method Not Allowed");
    ::close(fd);
  }
  // Malformed request line.
  {
    const int fd = connect_tcp("127.0.0.1", ts.http_port());
    write_all_fd(fd, "NONSENSE\r\n\r\n");
    EXPECT_EQ(status_line(read_to_eof(fd)), "HTTP/1.1 400 Bad Request");
    ::close(fd);
  }
  // Oversized request headers.
  {
    const int fd = connect_tcp("127.0.0.1", ts.http_port());
    write_all_fd(fd, "GET /healthz HTTP/1.1\r\nX-Pad: " + std::string(10000, 'a'));
    EXPECT_EQ(status_line(read_to_eof(fd)), "HTTP/1.1 400 Bad Request");
    ::close(fd);
  }
  obs::set_enabled(false);
}

// A response far larger than the socket buffer must survive a reader
// that drains slowly: the connection parks the remainder and finishes
// under EPOLLOUT. Driven single-threaded so the interleaving is exact.
TEST(Serve, HttpSlowReaderGetsFullResponse) {
  EventLoop loop;
  const int listen_fd = listen_tcp("127.0.0.1", 0);
  const std::uint16_t port = bound_port(listen_fd);
  const int client = connect_tcp("127.0.0.1", port);
  const int served = ::accept(listen_fd, nullptr, nullptr);
  ASSERT_GE(served, 0);
  set_nonblocking(served);
  set_socket_buffers(served, 4096);

  const std::string big_body(512 * 1024, 'x');
  bool closed = false;
  HttpConnection conn{
      loop, served, "test",
      [&](const HttpRequest&) { return HttpResponse{200, "text/plain", big_body}; },
      [&](int) { closed = true; }};
  conn.start();

  write_all_fd(client, "GET /big HTTP/1.1\r\nHost: t\r\n\r\n");

  std::string got;
  char buf[2048];  // drain in sips, smaller than the server's buffer
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds{10};
  while (!closed && std::chrono::steady_clock::now() < deadline) {
    loop.run_once(5);
    const auto n = ::read(client, buf, sizeof buf);
    if (n > 0) got.append(buf, static_cast<std::size_t>(n));
  }
  // Drain whatever is still in flight after close.
  got += read_to_eof(client, 1000);

  EXPECT_TRUE(closed);
  EXPECT_EQ(body_of(got).size(), big_body.size());
  EXPECT_EQ(body_of(got), big_body);

  ::close(client);
  ::close(listen_fd);
}

}  // namespace
}  // namespace dnsctx::serve
