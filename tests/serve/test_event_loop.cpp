// dnsctx — event loop unit tests: timers, deferred work, idle pump,
// fd dispatch, and cross-thread stop.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include <unistd.h>

#include "serve/event_loop.hpp"

namespace dnsctx::serve {
namespace {

TEST(EventLoop, TimerFires) {
  EventLoop loop;
  int fired = 0;
  loop.add_timer(std::chrono::milliseconds{5}, [&] { ++fired; });
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds{2};
  while (fired == 0 && std::chrono::steady_clock::now() < deadline) {
    loop.run_once(20);
  }
  EXPECT_EQ(fired, 1);
}

TEST(EventLoop, CancelledTimerNeverFires) {
  EventLoop loop;
  int fired = 0;
  const auto id = loop.add_timer(std::chrono::milliseconds{5}, [&] { ++fired; });
  loop.cancel_timer(id);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds{100};
  while (std::chrono::steady_clock::now() < deadline) {
    loop.run_once(10);
  }
  EXPECT_EQ(fired, 0);
}

TEST(EventLoop, TimersBeyondOneWheelRevolutionFire) {
  // 1024 slots x 4ms = ~4.1s per revolution; a 100ms timer and a short
  // one must both fire exactly once (no lazy-revisit double fire).
  EventLoop loop;
  int fast = 0, slow = 0;
  loop.add_timer(std::chrono::milliseconds{5}, [&] { ++fast; });
  loop.add_timer(std::chrono::milliseconds{100}, [&] { ++slow; });
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds{3};
  while ((fast == 0 || slow == 0) && std::chrono::steady_clock::now() < deadline) {
    loop.run_once(20);
  }
  EXPECT_EQ(fast, 1);
  EXPECT_EQ(slow, 1);
}

TEST(EventLoop, DeferredRunsAfterBatchAndCanChain) {
  EventLoop loop;
  std::vector<int> order;
  loop.defer([&] {
    order.push_back(1);
    loop.defer([&] { order.push_back(2); });
  });
  loop.run_once(0);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventLoop, IdleWorkPumpsWhilePending) {
  EventLoop loop;
  int budget = 3;
  loop.set_idle_work([&] { return --budget > 0; });
  loop.run_once(0);
  loop.run_once(0);
  loop.run_once(0);
  EXPECT_EQ(budget, 0);
}

TEST(EventLoop, StopFromAnotherThreadWakesRun) {
  EventLoop loop;
  std::thread stopper{[&] {
    std::this_thread::sleep_for(std::chrono::milliseconds{20});
    loop.stop();
  }};
  loop.run();  // would block forever without the wake
  stopper.join();
  EXPECT_TRUE(loop.stopped());
}

class PipeReader : public FdHandler {
 public:
  explicit PipeReader(EventLoop& loop, int fd) : loop_{loop}, fd_{fd} {}
  void on_readable() override {
    char buf[64];
    const auto n = ::read(fd_, buf, sizeof buf);
    if (n > 0) bytes_ += static_cast<std::size_t>(n);
    if (remove_on_read_) loop_.remove(fd_);
  }
  std::size_t bytes_ = 0;
  bool remove_on_read_ = false;

 private:
  EventLoop& loop_;
  int fd_;
};

TEST(EventLoop, DispatchesReadableFd) {
  EventLoop loop;
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  PipeReader reader{loop, fds[0]};
  loop.add(fds[0], &reader, /*read=*/true, /*write=*/false);
  ASSERT_EQ(::write(fds[1], "abc", 3), 3);
  loop.run_once(100);
  EXPECT_EQ(reader.bytes_, 3u);
  loop.remove(fds[0]);
  ::close(fds[1]);
}

TEST(EventLoop, HandlerMayRemoveItselfMidDispatch) {
  EventLoop loop;
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  PipeReader reader{loop, fds[0]};
  reader.remove_on_read_ = true;
  loop.add(fds[0], &reader, /*read=*/true, /*write=*/false);
  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  loop.run_once(100);  // must not crash or double-dispatch
  EXPECT_EQ(reader.bytes_, 1u);
  loop.run_once(0);  // fd closed by remove(); nothing further fires
  EXPECT_EQ(reader.bytes_, 1u);
  ::close(fds[1]);
}

}  // namespace
}  // namespace dnsctx::serve
