// Tests for DNS truncation + TCP fallback (RFC 1035 §4.2.2), end to end
// through stub → NAT → platform and back.
#include <gtest/gtest.h>

#include "capture/monitor.hpp"
#include "dns/codec.hpp"
#include "resolver/recursive.hpp"
#include "traffic/device.hpp"

namespace dnsctx::resolver {
namespace {

constexpr Ipv4Addr kHouse{100, 66, 1, 1};
constexpr Ipv4Addr kDeviceIp{192, 168, 1, 10};
constexpr Ipv4Addr kResolver{100, 66, 250, 1};

TEST(TruncateForUdp, SmallMessagesUntouched) {
  const auto msg = dns::DnsMessage::query(1, dns::DomainName::must("a.com"));
  const auto out = dns::truncate_for_udp(msg);
  EXPECT_EQ(out, msg);
  EXPECT_FALSE(out.flags.tc);
}

TEST(TruncateForUdp, OversizedMessagesLoseRecordsAndGainTc) {
  auto q = dns::DnsMessage::query(7, dns::DomainName::must("wide.example.com"));
  std::vector<dns::ResourceRecord> answers;
  for (int i = 0; i < 40; ++i) {
    answers.push_back(dns::ResourceRecord::a(
        dns::DomainName::must("wide.example.com"),
        Ipv4Addr{35, 0, 0, static_cast<std::uint8_t>(1 + i)}, 300));
  }
  const auto resp = dns::DnsMessage::response(q, std::move(answers));
  ASSERT_GT(dns::encoded_size(resp), dns::kUdpPayloadLimit);
  const auto out = dns::truncate_for_udp(resp);
  EXPECT_TRUE(out.flags.tc);
  EXPECT_TRUE(out.answers.empty());
  EXPECT_EQ(out.questions, resp.questions);
  EXPECT_EQ(out.id, resp.id);
  EXPECT_LE(dns::encoded_size(out), dns::kUdpPayloadLimit);
}

/// Find a ZoneDb name whose full answer set overflows UDP.
[[nodiscard]] const HostRecord* find_wide_record(const ZoneDb& zones) {
  for (NameId id = 0; id < zones.size(); ++id) {
    if (zones.record(id).addrs.size() >= 30) return &zones.record(id);
  }
  return nullptr;
}

class TcpFallbackTest : public ::testing::Test {
 protected:
  TcpFallbackTest()
      : net{sim, make_latency(), 3},
        gateway{sim, net, kHouse, 5, SimDuration::from_ms(0.2)},
        zones{make_zone_config()},
        platform{sim, net, zones, platform_config(), 7},
        device{sim, gateway, kDeviceIp, stub_config(), 11} {
    net.set_tap(&monitor);
  }

  static netsim::LatencyModel make_latency() {
    netsim::LatencyModel lat;
    lat.set_site(kHouse, {SimDuration::from_ms(0.5), 0.0});
    lat.set_site(kResolver, {SimDuration::from_ms(0.5), 0.0});
    return lat;
  }
  static ZoneDbConfig make_zone_config() {
    ZoneDbConfig cfg;
    cfg.seed = 12;  // chosen so the API family contains a wide pool
    cfg.web_sites = 10;
    cfg.cdn_domains = 2;
    cfg.ad_domains = 2;
    cfg.tracker_domains = 2;
    cfg.api_domains = 60;
    cfg.video_sites = 2;
    cfg.other_names = 2;
    return cfg;
  }
  static PlatformConfig platform_config() {
    PlatformConfig cfg;
    cfg.addrs = {kResolver};
    cfg.site = {SimDuration::from_ms(0.5), 0.0};
    cfg.slow_tail_prob = 0.0;
    return cfg;
  }
  static StubConfig stub_config() {
    StubConfig cfg;
    cfg.resolver_addrs = {kResolver};
    cfg.ttl_violation_prob = 0.0;
    cfg.aaaa_prob = 0.0;
    return cfg;
  }

  netsim::Simulator sim;
  netsim::Network net;
  netsim::HouseGateway gateway;
  ZoneDb zones;
  RecursiveResolverPlatform platform;
  capture::Monitor monitor;
  traffic::Device device;
};

TEST_F(TcpFallbackTest, WideAnswerResolvesViaTcp) {
  const HostRecord* wide = find_wide_record(zones);
  ASSERT_NE(wide, nullptr) << "zone seed produced no wide pool; adjust make_zone_config";

  ResolveResult result;
  device.stub().resolve(wide->name, [&](const ResolveResult& r) { result = r; });
  sim.run_until(sim.now() + SimDuration::sec(2));

  EXPECT_TRUE(result.success);
  EXPECT_GE(result.addrs.size(), 30u);  // the full pool, not a truncated subset
  EXPECT_EQ(device.stub().tcp_fallbacks(), 1u);
  EXPECT_EQ(platform.stats().truncated_udp, 1u);
  EXPECT_EQ(platform.stats().queries, 2u);  // UDP attempt + TCP retry
}

TEST_F(TcpFallbackTest, FallbackResultIsCached) {
  const HostRecord* wide = find_wide_record(zones);
  ASSERT_NE(wide, nullptr);
  device.stub().resolve(wide->name, [](const ResolveResult&) {});
  sim.run_until(sim.now() + SimDuration::sec(2));
  ResolveResult again;
  device.stub().resolve(wide->name, [&](const ResolveResult& r) { again = r; });
  sim.run_until(sim.now() + SimDuration::sec(1));
  EXPECT_TRUE(again.from_cache);
  EXPECT_GE(again.addrs.size(), 30u);
  EXPECT_EQ(device.stub().tcp_fallbacks(), 1u);  // no second fallback
}

TEST_F(TcpFallbackTest, NarrowAnswersNeverFallBack) {
  const auto& narrow = zones.record(zones.ids_of(ServiceClass::kWebOrigin)[0]);
  ResolveResult result;
  device.stub().resolve(narrow.name, [&](const ResolveResult& r) { result = r; });
  sim.run_until(sim.now() + SimDuration::sec(2));
  EXPECT_TRUE(result.success);
  EXPECT_EQ(device.stub().tcp_fallbacks(), 0u);
  EXPECT_EQ(platform.stats().truncated_udp, 0u);
}

TEST_F(TcpFallbackTest, MonitorLogsBothTransactions) {
  const HostRecord* wide = find_wide_record(zones);
  ASSERT_NE(wide, nullptr);
  device.stub().resolve(wide->name, [](const ResolveResult&) {});
  sim.run_until(sim.now() + SimDuration::sec(2));
  const auto ds = monitor.harvest(sim.now());

  // Port-53 traffic (UDP and TCP) must not appear as connections.
  EXPECT_TRUE(ds.conns.empty());

  // Two DNS records for the name: the truncated UDP one (no A answers)
  // and the TCP one carrying the full pool.
  std::size_t with_answers = 0, without = 0;
  for (const auto& d : ds.dns) {
    if (d.query != wide->name.text()) continue;
    if (d.answers.size() >= 30) {
      ++with_answers;
      EXPECT_GT(d.duration, SimDuration::zero());
    } else {
      ++without;
    }
  }
  EXPECT_EQ(with_answers, 1u);
  EXPECT_EQ(without, 1u);
}

TEST_F(TcpFallbackTest, FallbackCanBeDisabled) {
  auto cfg = stub_config();
  cfg.tcp_fallback = false;
  traffic::Device strict{sim, gateway, Ipv4Addr{192, 168, 1, 11}, cfg, 13};
  const HostRecord* wide = find_wide_record(zones);
  ASSERT_NE(wide, nullptr);
  ResolveResult result;
  result.success = true;
  strict.stub().resolve(wide->name, [&](const ResolveResult& r) { result = r; });
  sim.run_until(sim.now() + SimDuration::sec(2));
  // The TC response carries no answers; without fallback that reads as
  // an empty (failed) resolution.
  EXPECT_FALSE(result.success);
  EXPECT_EQ(strict.stub().tcp_fallbacks(), 0u);
}

}  // namespace
}  // namespace dnsctx::resolver
