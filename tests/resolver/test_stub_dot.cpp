// Unit tests for the stub resolver's encrypted transports (DoT/DoH):
// handshake sequencing, channel reuse, RFC 8467 padded message sizes,
// idle teardown, and failover — all through the packet-capturing
// harness, playing the resolver side by hand.
#include <gtest/gtest.h>

#include "dns/codec.hpp"
#include "netsim/transport.hpp"
#include "resolver/stub.hpp"

namespace dnsctx::resolver {
namespace {

constexpr Ipv4Addr kDevice{192, 168, 1, 10};
constexpr Ipv4Addr kResolverA{100, 66, 250, 1};
constexpr Ipv4Addr kResolverB{8, 8, 8, 8};

class StubDotTest : public ::testing::Test {
 protected:
  [[nodiscard]] StubResolver make_stub(netsim::Transport transport,
                                       std::vector<Ipv4Addr> resolvers = {kResolverA}) {
    StubConfig cfg;
    cfg.resolver_addrs = std::move(resolvers);
    cfg.transport = transport;
    transport_ = transport;
    return StubResolver{sim, kDevice, std::move(cfg), 77,
                        [this](netsim::Packet p) { sent.push_back(std::move(p)); }};
  }

  [[nodiscard]] const netsim::TransportTraits& traits() const {
    return netsim::traits_for(transport_);
  }

  /// Resolver side of the TCP+TLS handshake, replying to the client's
  /// packet at `sent[idx]`.
  [[nodiscard]] netsim::Packet synack(std::size_t idx) const {
    netsim::Packet p = reverse(idx);
    p.tcp = netsim::TcpFlags{.syn = true, .ack = true};
    return p;
  }

  [[nodiscard]] netsim::Packet server_hello(std::size_t idx) const {
    netsim::Packet p = reverse(idx);
    p.tcp = netsim::TcpFlags{.ack = true};
    p.payload_bytes = traits().server_hello_bytes;
    return p;
  }

  /// Encrypted DNS response to the query carried by `sent[idx]`.
  [[nodiscard]] netsim::Packet respond(std::size_t idx,
                                       dns::Rcode rcode = dns::Rcode::kNoError) const {
    const dns::DnsMessage* q = sent[idx].dns.message();
    EXPECT_TRUE(q != nullptr);
    std::vector<dns::ResourceRecord> answers;
    if (rcode == dns::Rcode::kNoError) {
      answers.push_back(dns::ResourceRecord::a(q->questions[0].qname,
                                               Ipv4Addr{1, 2, 3, 4}, 300));
    }
    netsim::Packet p = reverse(idx);
    p.tcp = netsim::TcpFlags{.ack = true};
    p.dns = dns::DnsPayload::from_message(
        dns::DnsMessage::response(*q, std::move(answers), rcode));
    return p;
  }

  /// Run the whole cold-channel exchange for the newest SYN and deliver
  /// queued queries; returns the index of the first data packet flushed.
  std::size_t complete_handshake(StubResolver& stub, std::size_t syn_idx) {
    stub.on_secure(synack(syn_idx));          // elicits the ClientHello
    const std::size_t hello_idx = sent.size() - 1;
    stub.on_secure(server_hello(hello_idx));  // flushes queued queries
    return hello_idx + 1;
  }

  [[nodiscard]] netsim::Packet reverse(std::size_t idx) const {
    const netsim::Packet& out = sent[idx];
    netsim::Packet p;
    p.src_ip = out.dst_ip;
    p.dst_ip = out.src_ip;
    p.src_port = out.dst_port;
    p.dst_port = out.src_port;
    p.proto = Proto::kTcp;
    return p;
  }

  netsim::Simulator sim;
  std::vector<netsim::Packet> sent;
  netsim::Transport transport_ = netsim::Transport::kDoT;
};

TEST_F(StubDotTest, ColdQueryOpensTcp853) {
  auto stub = make_stub(netsim::Transport::kDoT);
  stub.resolve(dns::DomainName::must("a.com"), [](const ResolveResult&) {});
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].proto, Proto::kTcp);
  EXPECT_EQ(sent[0].dst_port, 853);
  EXPECT_TRUE(sent[0].tcp.syn);
  EXPECT_TRUE(sent[0].dns.empty());  // no cleartext query leaves the stub
  EXPECT_EQ(stub.secure_handshakes(), 1u);
}

TEST_F(StubDotTest, SynAckElicitsClientHello) {
  auto stub = make_stub(netsim::Transport::kDoT);
  stub.resolve(dns::DomainName::must("a.com"), [](const ResolveResult&) {});
  stub.on_secure(synack(0));
  ASSERT_EQ(sent.size(), 2u);
  EXPECT_EQ(sent[1].payload_bytes, traits().client_hello_bytes);
  EXPECT_TRUE(sent[1].dns.empty());
}

TEST_F(StubDotTest, ServerHelloFlushesPaddedQuery) {
  auto stub = make_stub(netsim::Transport::kDoT);
  stub.resolve(dns::DomainName::must("a.com"), [](const ResolveResult&) {});
  const std::size_t data = complete_handshake(stub, 0);
  ASSERT_EQ(sent.size(), data + 1);
  const netsim::Packet& q = sent[data];
  ASSERT_TRUE(q.dns.message() != nullptr);
  // The tap-observable ciphertext size (payload padding + DNS wire
  // bytes) lands exactly on an RFC 8467 query block plus framing.
  const std::uint64_t observable =
      q.payload_bytes + static_cast<std::uint64_t>(q.dns.wire_size());
  EXPECT_GT(observable, traits().per_message_overhead);
  EXPECT_EQ((observable - traits().per_message_overhead) % traits().query_pad_block, 0u);
}

TEST_F(StubDotTest, ResponseOverChannelCompletesResolve) {
  auto stub = make_stub(netsim::Transport::kDoT);
  ResolveResult result;
  int calls = 0;
  stub.resolve(dns::DomainName::must("a.com"), [&](const ResolveResult& r) {
    result = r;
    ++calls;
  });
  const std::size_t data = complete_handshake(stub, 0);
  stub.on_secure(respond(data));
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(result.success);
  EXPECT_FALSE(result.from_cache);
  EXPECT_EQ(result.resolver, kResolverA);
}

TEST_F(StubDotTest, WarmChannelIsReusedWithoutHandshake) {
  auto stub = make_stub(netsim::Transport::kDoT);
  stub.resolve(dns::DomainName::must("a.com"), [](const ResolveResult&) {});
  const std::size_t data = complete_handshake(stub, 0);
  stub.on_secure(respond(data));

  const std::size_t before = sent.size();
  int calls = 0;
  stub.resolve(dns::DomainName::must("b.com"), [&](const ResolveResult&) { ++calls; });
  // One new packet: the query itself, straight onto the warm channel.
  ASSERT_EQ(sent.size(), before + 1);
  EXPECT_FALSE(sent[before].tcp.syn);
  ASSERT_TRUE(sent[before].dns.message() != nullptr);
  EXPECT_EQ(stub.secure_handshakes(), 1u);
  EXPECT_EQ(stub.secure_reuses(), 1u);
  stub.on_secure(respond(before));
  EXPECT_EQ(calls, 1);
}

TEST_F(StubDotTest, ConcurrentQueriesShareOneHandshake) {
  auto stub = make_stub(netsim::Transport::kDoT);
  int calls = 0;
  stub.resolve(dns::DomainName::must("a.com"), [&](const ResolveResult&) { ++calls; });
  stub.resolve(dns::DomainName::must("b.com"), [&](const ResolveResult&) { ++calls; });
  ASSERT_EQ(sent.size(), 1u);  // one SYN covers both queued queries
  const std::size_t data = complete_handshake(stub, 0);
  ASSERT_EQ(sent.size(), data + 2);  // both queries flushed together
  stub.on_secure(respond(data));
  stub.on_secure(respond(data + 1));
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(stub.secure_handshakes(), 1u);
}

TEST_F(StubDotTest, IdleTimeoutTearsTheChannelDown) {
  auto stub = make_stub(netsim::Transport::kDoT);
  stub.resolve(dns::DomainName::must("a.com"), [](const ResolveResult&) {});
  const std::size_t data = complete_handshake(stub, 0);
  stub.on_secure(respond(data));
  const std::uint16_t port = sent[0].src_port;
  EXPECT_TRUE(stub.owns_secure_port(port));

  sim.run_until(sim.now() + traits().idle_timeout + SimDuration::sec(1));
  const netsim::Packet& fin = sent.back();
  EXPECT_TRUE(fin.tcp.fin);
  EXPECT_EQ(fin.dst_port, 853);

  // Next lookup needs a fresh TCP+TLS handshake.
  const std::size_t before = sent.size();
  stub.resolve(dns::DomainName::must("c.com"), [](const ResolveResult&) {});
  ASSERT_EQ(sent.size(), before + 1);
  EXPECT_TRUE(sent[before].tcp.syn);
  EXPECT_EQ(stub.secure_handshakes(), 2u);
}

TEST_F(StubDotTest, PeerFinReleasesThePortMapping) {
  auto stub = make_stub(netsim::Transport::kDoT);
  stub.resolve(dns::DomainName::must("a.com"), [](const ResolveResult&) {});
  const std::size_t data = complete_handshake(stub, 0);
  stub.on_secure(respond(data));
  const std::uint16_t port = sent[0].src_port;
  netsim::Packet fin = reverse(0);
  fin.tcp = netsim::TcpFlags{.ack = true, .fin = true};
  stub.on_secure(fin);
  EXPECT_FALSE(stub.owns_secure_port(port));
}

TEST_F(StubDotTest, ServfailFailsOverToNextResolverChannel) {
  auto stub = make_stub(netsim::Transport::kDoT, {kResolverA, kResolverB});
  int calls = 0;
  stub.resolve(dns::DomainName::must("a.com"), [&](const ResolveResult&) { ++calls; });
  const std::size_t data = complete_handshake(stub, 0);
  stub.on_secure(respond(data, dns::Rcode::kServFail));
  EXPECT_EQ(calls, 0);
  // The retry opened a second channel — SYN to resolver B on 853.
  const netsim::Packet& syn = sent.back();
  EXPECT_TRUE(syn.tcp.syn);
  EXPECT_EQ(syn.dst_ip, kResolverB);
  EXPECT_EQ(stub.servfail_failovers(), 1u);

  const std::size_t data_b = complete_handshake(stub, sent.size() - 1);
  stub.on_secure(respond(data_b));
  EXPECT_EQ(calls, 1);
}

TEST_F(StubDotTest, DohRidesPort443WithItsOwnHello) {
  auto stub = make_stub(netsim::Transport::kDoH);
  stub.resolve(dns::DomainName::must("a.com"), [](const ResolveResult&) {});
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].dst_port, 443);
  stub.on_secure(synack(0));
  EXPECT_EQ(sent[1].payload_bytes,
            netsim::traits_for(netsim::Transport::kDoH).client_hello_bytes);
}

TEST_F(StubDotTest, CleartextTransportsNeverOpenChannels) {
  for (const auto t : {netsim::Transport::kDo53, netsim::Transport::kResolverless}) {
    sent.clear();
    auto stub = make_stub(t);
    stub.resolve(dns::DomainName::must("a.com"), [](const ResolveResult&) {});
    ASSERT_EQ(sent.size(), 1u);
    EXPECT_EQ(sent[0].proto, Proto::kUdp);
    EXPECT_EQ(sent[0].dst_port, 53);
    EXPECT_EQ(stub.secure_handshakes(), 0u);
  }
}

TEST_F(StubDotTest, PushedRecordsServeWithoutAnyPacket) {
  auto stub = make_stub(netsim::Transport::kResolverless);
  stub.insert_pushed(dns::DomainName::must("asset.cdn.com"),
                     {dns::ResourceRecord::a(dns::DomainName::must("asset.cdn.com"),
                                             Ipv4Addr{9, 9, 9, 9}, 300)},
                     sim.now());
  EXPECT_EQ(stub.pushed_inserts(), 1u);
  ResolveResult result;
  stub.resolve(dns::DomainName::must("asset.cdn.com"),
               [&](const ResolveResult& r) { result = r; });
  sim.run_to_completion();
  EXPECT_TRUE(sent.empty());  // no lookup ever hit the wire
  EXPECT_TRUE(result.success);
  EXPECT_TRUE(result.from_cache);
  EXPECT_EQ(result.origin, dns::CacheOrigin::kPushed);
}

}  // namespace
}  // namespace dnsctx::resolver
