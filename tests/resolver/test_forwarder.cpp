// Unit tests for the whole-house caching forwarder (§8 live component).
#include <gtest/gtest.h>

#include "dns/codec.hpp"
#include "resolver/forwarder.hpp"
#include "resolver/recursive.hpp"

namespace dnsctx::resolver {
namespace {

constexpr Ipv4Addr kHouse{100, 66, 3, 1};
constexpr Ipv4Addr kDevice{192, 168, 1, 10};
constexpr Ipv4Addr kDevice2{192, 168, 1, 11};
constexpr Ipv4Addr kForwarderIp{192, 168, 1, 253};
constexpr Ipv4Addr kUpstream{100, 66, 250, 1};

struct DeviceProbe : netsim::Host {
  std::vector<dns::DnsMessage> responses;
  void receive(const netsim::Packet& p) override {
    if (p.dns.empty()) return;
    const dns::DnsMessage* msg = p.dns.message();
    ASSERT_TRUE(msg != nullptr);
    if (msg->flags.qr) responses.push_back(*msg);
  }
};

class ForwarderTest : public ::testing::Test {
 protected:
  ForwarderTest()
      : net{sim, make_latency(), 3},
        gateway{sim, net, kHouse, 11, SimDuration::from_ms(0.2)},
        zones{make_zone_config()},
        platform{sim, net, zones, platform_config(), 13},
        forwarder{sim, gateway, kForwarderIp, dns::CacheConfig{}, 17} {
    gateway.attach_device(kDevice, &probe);
    gateway.attach_device(kDevice2, &probe2);
  }

  static netsim::LatencyModel make_latency() {
    netsim::LatencyModel lat;
    lat.set_site(kHouse, {SimDuration::from_ms(0.5), 0.0});
    lat.set_site(kUpstream, {SimDuration::from_ms(0.5), 0.0});
    return lat;
  }

  static ZoneDbConfig make_zone_config() {
    ZoneDbConfig cfg;
    cfg.seed = 4;
    cfg.web_sites = 10;
    cfg.cdn_domains = 2;
    cfg.ad_domains = 2;
    cfg.tracker_domains = 2;
    cfg.api_domains = 2;
    cfg.video_sites = 2;
    cfg.other_names = 2;
    return cfg;
  }

  static PlatformConfig platform_config() {
    PlatformConfig cfg;
    cfg.name = "Local";
    cfg.addrs = {kUpstream};
    cfg.site = {SimDuration::from_ms(0.5), 0.0};
    cfg.slow_tail_prob = 0.0;
    return cfg;
  }

  void device_query(Ipv4Addr device, const dns::DomainName& name, std::uint16_t txid,
                    std::uint16_t sport = 20'000) {
    netsim::Packet p;
    p.src_ip = device;
    p.dst_ip = kUpstream;
    p.src_port = sport;
    p.dst_port = 53;
    p.proto = Proto::kUdp;
    p.dns = dns::DnsPayload::from_message(dns::DnsMessage::query(txid, name));
    gateway.from_device(std::move(p));
  }

  [[nodiscard]] const dns::DomainName& some_name() {
    return zones.record(zones.ids_of(ServiceClass::kWebOrigin)[0]).name;
  }

  netsim::Simulator sim;
  netsim::Network net;
  netsim::HouseGateway gateway;
  ZoneDb zones;
  RecursiveResolverPlatform platform;
  WholeHouseForwarder forwarder;
  DeviceProbe probe;
  DeviceProbe probe2;
};

TEST_F(ForwarderTest, FirstQueryRelaysUpstream) {
  device_query(kDevice, some_name(), 1);
  sim.run_to_completion();
  ASSERT_EQ(probe.responses.size(), 1u);
  EXPECT_EQ(probe.responses[0].id, 1);  // original txid restored
  EXPECT_FALSE(probe.responses[0].answers.empty());
  EXPECT_EQ(forwarder.upstream_queries(), 1u);
  EXPECT_EQ(platform.stats().queries, 1u);
}

TEST_F(ForwarderTest, SecondDeviceIsServedFromHouseCache) {
  device_query(kDevice, some_name(), 1);
  sim.run_to_completion();
  device_query(kDevice2, some_name(), 2, 21'000);
  sim.run_to_completion();
  ASSERT_EQ(probe2.responses.size(), 1u);
  EXPECT_EQ(forwarder.upstream_queries(), 1u);  // no extra upstream traffic
  EXPECT_EQ(platform.stats().queries, 1u);
  EXPECT_EQ(forwarder.cache_stats().hits, 1u);
}

TEST_F(ForwarderTest, CacheRespectsTtl) {
  device_query(kDevice, some_name(), 1);
  sim.run_to_completion();
  const auto ttl = zones.record(zones.ids_of(ServiceClass::kWebOrigin)[0]).ttl_sec;
  sim.run_until(sim.now() + SimDuration::sec(ttl + 1));
  device_query(kDevice, some_name(), 2);
  sim.run_to_completion();
  EXPECT_EQ(forwarder.upstream_queries(), 2u);
}

TEST_F(ForwarderTest, ServedTtlDecaysFromHouseCache) {
  device_query(kDevice, some_name(), 1);
  sim.run_to_completion();
  const auto first_ttl = probe.responses[0].answers[0].ttl;
  sim.run_until(sim.now() + SimDuration::sec(20));
  device_query(kDevice, some_name(), 2);
  sim.run_to_completion();
  ASSERT_EQ(probe.responses.size(), 2u);
  EXPECT_LE(probe.responses[1].answers[0].ttl, first_ttl - 19);
}

TEST_F(ForwarderTest, AnswersAppearToComeFromQueriedResolver) {
  device_query(kDevice, some_name(), 1);
  sim.run_to_completion();
  device_query(kDevice2, some_name(), 9, 21'000);
  sim.run_to_completion();
  // Both paths produced well-formed responses matched by txid; the
  // cached answer spoofs the upstream resolver address, which the
  // devices' stub anti-spoofing accepts by construction.
  ASSERT_EQ(probe2.responses.size(), 1u);
  EXPECT_EQ(probe2.responses[0].id, 9);
}

TEST_F(ForwarderTest, NonDnsTrafficPassesThrough) {
  netsim::Packet p;
  p.src_ip = kDevice;
  p.dst_ip = Ipv4Addr{34, 1, 1, 1};
  p.src_port = 10'000;
  p.dst_port = 443;
  p.proto = Proto::kTcp;
  p.tcp.syn = true;
  gateway.from_device(std::move(p));
  sim.run_to_completion();
  EXPECT_EQ(forwarder.upstream_queries(), 0u);
}

}  // namespace
}  // namespace dnsctx::resolver
