// Unit tests for the stub resolver, driven through a packet-capturing
// harness (no network needed).
#include <gtest/gtest.h>

#include "dns/codec.hpp"
#include "resolver/stub.hpp"

namespace dnsctx::resolver {
namespace {

constexpr Ipv4Addr kDevice{192, 168, 1, 10};
constexpr Ipv4Addr kResolverA{100, 66, 250, 1};
constexpr Ipv4Addr kResolverB{8, 8, 8, 8};

class StubTest : public ::testing::Test {
 protected:
  [[nodiscard]] StubResolver make_stub(StubConfig cfg = {}) {
    if (cfg.resolver_addrs.empty()) cfg.resolver_addrs = {kResolverA, kResolverB};
    return StubResolver{sim, kDevice, std::move(cfg), 77,
                        [this](netsim::Packet p) { sent.push_back(std::move(p)); }};
  }

  /// Craft a response to the most recent captured query.
  [[nodiscard]] netsim::Packet respond(const netsim::Packet& query,
                                       std::vector<dns::ResourceRecord> answers,
                                       dns::Rcode rcode = dns::Rcode::kNoError) {
    const dns::DnsMessage* q = query.dns.message();
    EXPECT_TRUE(q != nullptr);
    dns::DnsMessage resp = dns::DnsMessage::response(*q, std::move(answers), rcode);
    netsim::Packet p;
    p.src_ip = query.dst_ip;
    p.dst_ip = query.src_ip;
    p.src_port = 53;
    p.dst_port = query.src_port;
    p.proto = Proto::kUdp;
    p.dns = dns::DnsPayload::from_message(std::move(resp));
    return p;
  }

  [[nodiscard]] static std::vector<dns::ResourceRecord> a_record(const char* name,
                                                                 std::uint32_t ttl = 300) {
    return {dns::ResourceRecord::a(dns::DomainName::must(name), Ipv4Addr{1, 2, 3, 4}, ttl)};
  }

  netsim::Simulator sim;
  std::vector<netsim::Packet> sent;
};

TEST_F(StubTest, QuerySentToPrimaryResolver) {
  auto stub = make_stub();
  bool called = false;
  stub.resolve(dns::DomainName::must("a.com"), [&](const ResolveResult&) { called = true; });
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].dst_ip, kResolverA);
  EXPECT_EQ(sent[0].dst_port, 53);
  EXPECT_EQ(sent[0].proto, Proto::kUdp);
  const dns::DnsMessage* q = sent[0].dns.message();
  ASSERT_TRUE(q != nullptr);
  EXPECT_EQ(q->questions[0].qname.text(), "a.com");
  EXPECT_FALSE(called);  // no response yet
}

TEST_F(StubTest, ResponseCompletesResolutionAndCaches) {
  auto stub = make_stub();
  ResolveResult result;
  int calls = 0;
  stub.resolve(dns::DomainName::must("a.com"), [&](const ResolveResult& r) {
    result = r;
    ++calls;
  });
  stub.on_response(respond(sent[0], a_record("a.com")));
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(result.success);
  EXPECT_FALSE(result.from_cache);
  EXPECT_EQ(result.resolver, kResolverA);
  ASSERT_EQ(result.addrs.size(), 1u);

  // Second resolve: cache hit, no new packet, small scheduled delay.
  stub.resolve(dns::DomainName::must("a.com"), [&](const ResolveResult& r) {
    result = r;
    ++calls;
  });
  EXPECT_EQ(sent.size(), 1u);
  sim.run_to_completion();
  EXPECT_EQ(calls, 2);
  EXPECT_TRUE(result.from_cache);
  EXPECT_FALSE(result.used_expired);
}

TEST_F(StubTest, ConcurrentResolvesShareOneQuery) {
  auto stub = make_stub();
  int calls = 0;
  for (int i = 0; i < 5; ++i) {
    stub.resolve(dns::DomainName::must("a.com"), [&](const ResolveResult&) { ++calls; });
  }
  EXPECT_EQ(sent.size(), 1u);
  stub.on_response(respond(sent[0], a_record("a.com")));
  EXPECT_EQ(calls, 5);
}

TEST_F(StubTest, TimeoutRetriesSameResolverThenFailsOver) {
  StubConfig cfg;
  cfg.resolver_addrs = {kResolverA, kResolverB};
  cfg.retries_per_resolver = 1;
  auto stub = make_stub(cfg);
  stub.resolve(dns::DomainName::must("slow.com"), [](const ResolveResult&) {});
  EXPECT_EQ(sent.size(), 1u);
  sim.run_until(sim.now() + cfg.query_timeout + SimDuration::ms(1));
  ASSERT_EQ(sent.size(), 2u);
  EXPECT_EQ(sent[1].dst_ip, kResolverA);  // retry on the same resolver
  sim.run_until(sim.now() + cfg.query_timeout + SimDuration::ms(1));
  ASSERT_EQ(sent.size(), 3u);
  EXPECT_EQ(sent[2].dst_ip, kResolverB);  // failover
}

TEST_F(StubTest, TerminalTimeoutReportsFailure) {
  StubConfig cfg;
  cfg.resolver_addrs = {kResolverA};
  cfg.retries_per_resolver = 0;
  auto stub = make_stub(cfg);
  ResolveResult result;
  result.success = true;
  stub.resolve(dns::DomainName::must("dead.com"),
               [&](const ResolveResult& r) { result = r; });
  sim.run_until(sim.now() + SimDuration::sec(10));
  EXPECT_FALSE(result.success);
  EXPECT_EQ(stub.failures(), 1u);
}

TEST_F(StubTest, LateResponseAfterFailoverIsIgnored) {
  StubConfig cfg;
  cfg.resolver_addrs = {kResolverA, kResolverB};
  cfg.retries_per_resolver = 0;
  auto stub = make_stub(cfg);
  int calls = 0;
  stub.resolve(dns::DomainName::must("a.com"), [&](const ResolveResult&) { ++calls; });
  sim.run_until(sim.now() + cfg.query_timeout + SimDuration::ms(1));  // now on resolver B
  ASSERT_EQ(sent.size(), 2u);
  // Response arriving from resolver A is rejected by the source check.
  stub.on_response(respond(sent[0], a_record("a.com")));
  EXPECT_EQ(calls, 0);
  stub.on_response(respond(sent[1], a_record("a.com")));
  EXPECT_EQ(calls, 1);
}

TEST_F(StubTest, SpoofedSourceRejected) {
  auto stub = make_stub();
  int calls = 0;
  stub.resolve(dns::DomainName::must("a.com"), [&](const ResolveResult&) { ++calls; });
  auto spoofed = respond(sent[0], a_record("a.com"));
  spoofed.src_ip = Ipv4Addr{6, 6, 6, 6};
  stub.on_response(spoofed);
  EXPECT_EQ(calls, 0);
}

TEST_F(StubTest, WrongPortRejected) {
  auto stub = make_stub();
  int calls = 0;
  stub.resolve(dns::DomainName::must("a.com"), [&](const ResolveResult&) { ++calls; });
  auto wrong = respond(sent[0], a_record("a.com"));
  wrong.dst_port = static_cast<std::uint16_t>(wrong.dst_port + 1);
  stub.on_response(wrong);
  EXPECT_EQ(calls, 0);
}

TEST_F(StubTest, NxDomainIsNegativelyCached) {
  auto stub = make_stub();
  ResolveResult result;
  stub.resolve(dns::DomainName::must("nx.com"), [&](const ResolveResult& r) { result = r; });
  stub.on_response(respond(sent[0], {}, dns::Rcode::kNxDomain));
  EXPECT_FALSE(result.success);
  // Within the negative-caching window: answered from cache, still a
  // failure, no new query (RFC 2308 behaviour).
  ResolveResult again;
  again.success = true;
  stub.resolve(dns::DomainName::must("nx.com"), [&](const ResolveResult& r) { again = r; });
  sim.run_to_completion();
  EXPECT_FALSE(again.success);
  EXPECT_EQ(sent.size(), 1u);
  // After the window expires the stub asks the network again.
  sim.at(sim.now() + SimDuration::sec(400), [] {});
  sim.run_to_completion();
  stub.resolve(dns::DomainName::must("nx.com"), [](const ResolveResult&) {});
  EXPECT_EQ(sent.size(), 2u);
}

TEST_F(StubTest, ExpiredEntryIsFlaggedWhenHeldPastTtl) {
  StubConfig cfg;
  cfg.resolver_addrs = {kResolverA};
  cfg.ttl_violation_prob = 1.0;  // always hold
  cfg.hold_mu = 8.0;             // hold for hours
  cfg.hold_sigma = 0.1;
  auto stub = make_stub(cfg);
  stub.resolve(dns::DomainName::must("a.com"), [](const ResolveResult&) {});
  stub.on_response(respond(sent[0], a_record("a.com", 60)));

  sim.run_until(sim.now() + SimDuration::sec(120));  // past TTL, within hold
  ResolveResult result;
  stub.resolve(dns::DomainName::must("a.com"), [&](const ResolveResult& r) { result = r; });
  sim.run_to_completion();
  EXPECT_TRUE(result.success);
  EXPECT_TRUE(result.from_cache);
  EXPECT_TRUE(result.used_expired);
  EXPECT_EQ(sent.size(), 1u);  // served stale, no new query
}

TEST_F(StubTest, StrictModeRequeriesAfterTtl) {
  StubConfig cfg;
  cfg.resolver_addrs = {kResolverA};
  cfg.ttl_violation_prob = 0.0;
  auto stub = make_stub(cfg);
  stub.resolve(dns::DomainName::must("a.com"), [](const ResolveResult&) {});
  stub.on_response(respond(sent[0], a_record("a.com", 60)));
  sim.run_until(sim.now() + SimDuration::sec(61));
  stub.resolve(dns::DomainName::must("a.com"), [](const ResolveResult&) {});
  EXPECT_EQ(sent.size(), 2u);
}

TEST_F(StubTest, SpeculativeResolvesGetMinimumHold) {
  StubConfig cfg;
  cfg.resolver_addrs = {kResolverA};
  cfg.ttl_violation_prob = 0.0;
  cfg.speculative_hold_min_sec = 120.0;
  cfg.speculative_hold_max_sec = 120.0;
  auto stub = make_stub(cfg);
  stub.resolve(dns::DomainName::must("a.com"), [](const ResolveResult&) {},
               /*speculative=*/true);
  stub.on_response(respond(sent[0], a_record("a.com", 10)));
  sim.run_until(sim.now() + SimDuration::sec(60));  // TTL long gone, hold active
  ResolveResult result;
  stub.resolve(dns::DomainName::must("a.com"), [&](const ResolveResult& r) { result = r; });
  sim.run_to_completion();
  EXPECT_TRUE(result.from_cache);
  EXPECT_TRUE(result.used_expired);
}

TEST_F(StubTest, NoResolversConfiguredFailsImmediately) {
  StubConfig cfg;
  cfg.resolver_addrs = {};
  StubResolver stub{sim, kDevice, cfg, 1, [this](netsim::Packet p) { sent.push_back(p); }};
  ResolveResult result;
  result.success = true;
  stub.resolve(dns::DomainName::must("a.com"), [&](const ResolveResult& r) { result = r; });
  sim.run_to_completion();
  EXPECT_FALSE(result.success);
  EXPECT_TRUE(sent.empty());
}

TEST_F(StubTest, QueriesCountersTrack) {
  auto stub = make_stub();
  stub.resolve(dns::DomainName::must("a.com"), [](const ResolveResult&) {});
  stub.resolve(dns::DomainName::must("b.com"), [](const ResolveResult&) {});
  EXPECT_EQ(stub.queries_sent(), 2u);
}

}  // namespace
}  // namespace dnsctx::resolver
