// Unit tests for the authoritative universe.
#include <gtest/gtest.h>

#include <set>

#include "resolver/zonedb.hpp"

namespace dnsctx::resolver {
namespace {

[[nodiscard]] ZoneDbConfig small_config(std::uint64_t seed = 5) {
  ZoneDbConfig cfg;
  cfg.seed = seed;
  cfg.web_sites = 50;
  cfg.cdn_domains = 10;
  cfg.ad_domains = 10;
  cfg.tracker_domains = 8;
  cfg.api_domains = 12;
  cfg.video_sites = 5;
  cfg.other_names = 10;
  return cfg;
}

TEST(ZoneDb, SizeMatchesConfig) {
  const ZoneDb db{small_config()};
  // 50+10+10+8+12+5+1(conncheck)+10
  EXPECT_EQ(db.size(), 106u);
}

TEST(ZoneDb, DeterministicForSeed) {
  const ZoneDb a{small_config(9)};
  const ZoneDb b{small_config(9)};
  ASSERT_EQ(a.size(), b.size());
  for (NameId id = 0; id < a.size(); ++id) {
    EXPECT_EQ(a.record(id).name, b.record(id).name);
    EXPECT_EQ(a.record(id).addrs, b.record(id).addrs);
    EXPECT_EQ(a.record(id).ttl_sec, b.record(id).ttl_sec);
  }
}

TEST(ZoneDb, DifferentSeedsDiffer) {
  const ZoneDb a{small_config(1)};
  const ZoneDb b{small_config(2)};
  bool any_diff = false;
  for (NameId id = 0; id < std::min(a.size(), b.size()); ++id) {
    any_diff = any_diff || a.record(id).addrs != b.record(id).addrs;
  }
  EXPECT_TRUE(any_diff);
}

TEST(ZoneDb, FindByName) {
  const ZoneDb db{small_config()};
  for (NameId id = 0; id < db.size(); ++id) {
    const auto found = db.find(db.record(id).name);
    ASSERT_TRUE(found);
    EXPECT_EQ(*found, id);
  }
  EXPECT_FALSE(db.find(dns::DomainName::must("not-a-real-name.example")));
}

TEST(ZoneDb, EveryRecordHasAddressesAndTtl) {
  const ZoneDb db{small_config()};
  for (NameId id = 0; id < db.size(); ++id) {
    const auto& rec = db.record(id);
    EXPECT_FALSE(rec.addrs.empty()) << rec.name.text();
    EXPECT_GT(rec.ttl_sec, 0u);
    EXPECT_GT(rec.popularity, 0.0);
    EXPECT_LE(rec.popularity, 1.0);
  }
}

TEST(ZoneDb, ServiceIndexCoversEverything) {
  const ZoneDb db{small_config()};
  std::size_t total = 0;
  for (const auto s :
       {ServiceClass::kWebOrigin, ServiceClass::kCdnAsset, ServiceClass::kAdNetwork,
        ServiceClass::kTracker, ServiceClass::kApi, ServiceClass::kVideo,
        ServiceClass::kConnCheck, ServiceClass::kOther}) {
    total += db.ids_of(s).size();
  }
  EXPECT_EQ(total, db.size());
  EXPECT_EQ(db.ids_of(ServiceClass::kWebOrigin).size(), 50u);
}

TEST(ZoneDb, ConnCheckSingleton) {
  const ZoneDb db{small_config()};
  const auto& rec = db.record(db.conn_check_id());
  EXPECT_EQ(rec.name.text(), "connectivitycheck.gstatic.com");
  EXPECT_EQ(rec.service, ServiceClass::kConnCheck);
  EXPECT_DOUBLE_EQ(rec.popularity, 1.0);
}

TEST(ZoneDb, WebPopularityIsZipfRanked) {
  const ZoneDb db{small_config()};
  const auto& webs = db.ids_of(ServiceClass::kWebOrigin);
  for (std::size_t i = 1; i < webs.size(); ++i) {
    EXPECT_GE(db.record(webs[i - 1]).popularity, db.record(webs[i]).popularity);
  }
  EXPECT_DOUBLE_EQ(db.record(webs[0]).popularity, 1.0);
}

TEST(ZoneDb, SampleWebSiteFavoursHead) {
  const ZoneDb db{small_config()};
  Rng rng{11};
  const auto& webs = db.ids_of(ServiceClass::kWebOrigin);
  std::size_t head = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    if (db.sample_web_site(rng) == webs[0]) ++head;
  }
  // Zipf(0.95) over 50 ranks: head probability is ~22%.
  EXPECT_GT(head, static_cast<std::size_t>(n) / 10);
}

TEST(ZoneDb, AuthoritativeAnswerForKnownName) {
  const ZoneDb db{small_config()};
  Rng rng{13};
  const auto& rec = db.record(db.ids_of(ServiceClass::kWebOrigin)[0]);
  const auto answers = db.authoritative_answer(rec.name, GeoQuality{0.9}, rng);
  ASSERT_FALSE(answers.empty());
  for (const auto& rr : answers) {
    EXPECT_EQ(rr.name, rec.name);
    EXPECT_EQ(rr.ttl, rec.ttl_sec);
    const auto addr = std::get<Ipv4Addr>(rr.rdata);
    EXPECT_NE(std::find(rec.addrs.begin(), rec.addrs.end(), addr), rec.addrs.end());
  }
}

TEST(ZoneDb, AuthoritativeAnswerForUnknownNameIsEmpty) {
  const ZoneDb db{small_config()};
  Rng rng{13};
  EXPECT_TRUE(
      db.authoritative_answer(dns::DomainName::must("zzz.unknown.test"), GeoQuality{}, rng)
          .empty());
}

TEST(ZoneDb, CdnGeoQualityControlsBestEdgeShare) {
  const ZoneDb db{small_config()};
  const auto& cdns = db.ids_of(ServiceClass::kCdnAsset);
  // Find a CDN-flagged record.
  const HostRecord* cdn = nullptr;
  for (const auto id : cdns) {
    if (db.record(id).cdn) {
      cdn = &db.record(id);
      break;
    }
  }
  ASSERT_NE(cdn, nullptr);
  Rng rng{17};
  auto best_edge_share = [&](double geo_prob) {
    int best = 0;
    const int n = 4'000;
    for (int i = 0; i < n; ++i) {
      const auto ans = db.authoritative_answer(cdn->name, GeoQuality{geo_prob}, rng);
      // The edge A record is the last element (a CNAME may precede it).
      if (std::get<Ipv4Addr>(ans.back().rdata) == cdn->addrs[0]) ++best;
    }
    return static_cast<double>(best) / n;
  };
  EXPECT_NEAR(best_edge_share(0.95), 0.95, 0.03);
  EXPECT_NEAR(best_edge_share(0.4), 0.4, 0.04);
}

TEST(ZoneDb, CdnCnameChainsWellFormed) {
  const ZoneDb db{small_config()};
  Rng rng{21};
  bool saw_chain = false;
  for (const auto id : db.ids_of(ServiceClass::kCdnAsset)) {
    const auto& rec = db.record(id);
    if (!rec.cdn || rec.cname_target.is_root()) continue;
    saw_chain = true;
    const auto ans = db.authoritative_answer(rec.name, GeoQuality{0.9}, rng);
    ASSERT_EQ(ans.size(), 2u);
    EXPECT_EQ(ans[0].type, dns::RrType::kCname);
    EXPECT_EQ(ans[0].name, rec.name);
    EXPECT_EQ(std::get<dns::DomainName>(ans[0].rdata), rec.cname_target);
    EXPECT_EQ(ans[1].type, dns::RrType::kA);
    EXPECT_EQ(ans[1].name, rec.cname_target);  // A record owned by the target
  }
  EXPECT_TRUE(saw_chain);
}

TEST(ZoneDb, CdnEdgesHaveDecayingThroughput) {
  const ZoneDb db{small_config()};
  for (const auto id : db.ids_of(ServiceClass::kVideo)) {
    const auto& rec = db.record(id);
    ASSERT_TRUE(rec.cdn);
    EXPECT_GT(db.throughput_factor(rec.addrs.front()),
              db.throughput_factor(rec.addrs.back()));
  }
}

TEST(ZoneDb, UnknownAddressHasUnitThroughput) {
  const ZoneDb db{small_config()};
  EXPECT_DOUBLE_EQ(db.throughput_factor(Ipv4Addr{9, 9, 9, 9}), 1.0);
}

TEST(ZoneDb, SharedHostingCreatesAddressCollisions) {
  const ZoneDb db{small_config()};
  std::map<std::uint32_t, int> names_per_ip;
  for (const auto id : db.ids_of(ServiceClass::kWebOrigin)) {
    for (const auto addr : db.record(id).addrs) ++names_per_ip[addr.to_u32()];
  }
  int shared = 0;
  for (const auto& [ip, count] : names_per_ip) {
    if (count > 1) ++shared;
  }
  EXPECT_GT(shared, 0);  // DN-Hunter ambiguity exists by construction
}

}  // namespace
}  // namespace dnsctx::resolver
