// Unit tests for the recursive resolver platforms, exercised over a tiny
// live network with a probe host.
#include <gtest/gtest.h>

#include "dns/codec.hpp"
#include "resolver/recursive.hpp"

namespace dnsctx::resolver {
namespace {

constexpr Ipv4Addr kClient{100, 66, 1, 1};
constexpr Ipv4Addr kService{9, 9, 9, 9};
constexpr Ipv4Addr kService2{9, 9, 9, 10};

struct Probe : netsim::Host {
  std::vector<std::pair<SimTime, dns::DnsMessage>> responses;
  netsim::Simulator* sim = nullptr;
  void receive(const netsim::Packet& p) override {
    if (p.dns.empty()) return;
    const dns::DnsMessage* msg = p.dns.message();
    ASSERT_TRUE(msg != nullptr);
    responses.emplace_back(sim->now(), *msg);
  }
};

class RecursiveTest : public ::testing::Test {
 protected:
  RecursiveTest() : net{sim, make_latency(), 3}, zones{make_zone_config()} {
    probe.sim = &sim;
    net.attach(kClient, &probe);
  }

  static netsim::LatencyModel make_latency() {
    netsim::LatencyModel lat;
    lat.set_site(kClient, {SimDuration::from_ms(0.5), 0.0});
    lat.set_site(kService, {SimDuration::from_ms(0.5), 0.0});
    lat.set_site(kService2, {SimDuration::from_ms(0.5), 0.0});
    return lat;
  }

  static ZoneDbConfig make_zone_config() {
    ZoneDbConfig cfg;
    cfg.seed = 4;
    cfg.web_sites = 30;
    cfg.cdn_domains = 5;
    cfg.ad_domains = 5;
    cfg.tracker_domains = 5;
    cfg.api_domains = 5;
    cfg.video_sites = 3;
    cfg.other_names = 5;
    return cfg;
  }

  [[nodiscard]] PlatformConfig base_config() {
    PlatformConfig cfg;
    cfg.name = "Test";
    cfg.addrs = {kService, kService2};
    cfg.site = {SimDuration::from_ms(0.5), 0.0};
    cfg.proc_ms = 0.1;
    cfg.auth_rtt_ms_mean = 20.0;
    cfg.slow_tail_prob = 0.0;
    cfg.ambient_warmth = 0.0;
    return cfg;
  }

  void query(const dns::DomainName& name, Ipv4Addr service = kService,
             std::uint16_t txid = 1) {
    netsim::Packet p;
    p.src_ip = kClient;
    p.dst_ip = service;
    p.src_port = 40'000;
    p.dst_port = 53;
    p.proto = Proto::kUdp;
    p.dns = dns::DnsPayload::from_message(dns::DnsMessage::query(txid, name));
    net.send(std::move(p));
  }

  [[nodiscard]] const dns::DomainName& some_name() {
    return zones.record(zones.ids_of(ServiceClass::kWebOrigin)[0]).name;
  }

  netsim::Simulator sim;
  netsim::Network net;
  ZoneDb zones;
  Probe probe;
};

TEST_F(RecursiveTest, MissThenHitIsFaster) {
  RecursiveResolverPlatform platform{sim, net, zones, base_config(), 5};
  const SimTime t0 = sim.now();
  query(some_name(), kService, 1);
  sim.run_to_completion();
  ASSERT_EQ(probe.responses.size(), 1u);
  const SimDuration miss_rtt = probe.responses[0].first - t0;

  const SimTime t1 = sim.now();
  query(some_name(), kService, 2);
  sim.run_to_completion();
  ASSERT_EQ(probe.responses.size(), 2u);
  const SimDuration hit_rtt = probe.responses[1].first - t1;

  EXPECT_LT(hit_rtt, miss_rtt);
  EXPECT_LT(hit_rtt, SimDuration::ms(5));   // ~RTT + proc
  EXPECT_GT(miss_rtt, SimDuration::ms(10)); // includes authoritative work
  EXPECT_EQ(platform.stats().queries, 2u);
  EXPECT_EQ(platform.stats().shard_hits, 1u);
  EXPECT_EQ(platform.stats().auth_resolutions, 1u);
}

TEST_F(RecursiveTest, ResponseEchoesTxidAndQuestion) {
  RecursiveResolverPlatform platform{sim, net, zones, base_config(), 5};
  query(some_name(), kService, 777);
  sim.run_to_completion();
  ASSERT_EQ(probe.responses.size(), 1u);
  const auto& msg = probe.responses[0].second;
  EXPECT_EQ(msg.id, 777);
  EXPECT_TRUE(msg.flags.qr);
  EXPECT_EQ(msg.questions[0].qname, some_name());
  EXPECT_FALSE(msg.answers.empty());
}

TEST_F(RecursiveTest, UnknownNameYieldsNxDomain) {
  RecursiveResolverPlatform platform{sim, net, zones, base_config(), 5};
  query(dns::DomainName::must("definitely.not.in.zonedb"), kService, 3);
  sim.run_to_completion();
  ASSERT_EQ(probe.responses.size(), 1u);
  EXPECT_EQ(probe.responses[0].second.flags.rcode, dns::Rcode::kNxDomain);
  EXPECT_TRUE(probe.responses[0].second.answers.empty());
  EXPECT_EQ(platform.stats().nxdomain, 1u);
}

TEST_F(RecursiveTest, CachedTtlCountsDown) {
  RecursiveResolverPlatform platform{sim, net, zones, base_config(), 5};
  query(some_name(), kService, 1);
  sim.run_to_completion();
  const auto first_ttl = probe.responses[0].second.answers[0].ttl;

  sim.run_until(sim.now() + SimDuration::sec(10));
  query(some_name(), kService, 2);
  sim.run_to_completion();
  ASSERT_EQ(probe.responses.size(), 2u);
  const auto second_ttl = probe.responses[1].second.answers[0].ttl;
  EXPECT_LE(second_ttl, first_ttl - 9);
}

TEST_F(RecursiveTest, ShardByAddrSeparatesServiceAddresses) {
  auto cfg = base_config();
  cfg.frontends = 2;
  cfg.shard_by_addr = true;
  RecursiveResolverPlatform platform{sim, net, zones, cfg, 5};
  query(some_name(), kService, 1);
  sim.run_to_completion();
  query(some_name(), kService2, 2);  // other box: cold cache
  sim.run_to_completion();
  EXPECT_EQ(platform.stats().auth_resolutions, 2u);
  query(some_name(), kService, 3);  // first box: warm
  sim.run_to_completion();
  EXPECT_EQ(platform.stats().shard_hits, 1u);
}

TEST_F(RecursiveTest, ShardByNameActsAsOneCache) {
  auto cfg = base_config();
  cfg.frontends = 8;
  cfg.shard_by_name = true;
  RecursiveResolverPlatform platform{sim, net, zones, cfg, 5};
  query(some_name(), kService, 1);
  sim.run_to_completion();
  for (std::uint16_t i = 2; i < 12; ++i) {
    query(some_name(), i % 2 ? kService : kService2, i);
    sim.run_to_completion();
  }
  EXPECT_EQ(platform.stats().auth_resolutions, 1u);
  EXPECT_EQ(platform.stats().shard_hits, 10u);
}

TEST_F(RecursiveTest, RandomShardingFragmentsTheCache) {
  auto cfg = base_config();
  cfg.frontends = 16;
  RecursiveResolverPlatform platform{sim, net, zones, cfg, 5};
  for (std::uint16_t i = 0; i < 24; ++i) {
    query(some_name(), kService, static_cast<std::uint16_t>(i + 1));
    sim.run_to_completion();
  }
  // With 16 random shards the hit rate must be far below shard_by_name's.
  EXPECT_LT(platform.stats().shard_hits, 18u);
  EXPECT_GT(platform.stats().auth_resolutions, 4u);
}

TEST_F(RecursiveTest, AmbientWarmthServesPopularNamesFast) {
  auto cfg = base_config();
  cfg.ambient_warmth = 1.0;
  cfg.ambient_pop_exp = 0.0;  // popularity-independent for the test
  RecursiveResolverPlatform platform{sim, net, zones, cfg, 5};
  query(some_name(), kService, 1);
  sim.run_to_completion();
  EXPECT_EQ(platform.stats().ambient_hits, 1u);
  EXPECT_EQ(platform.stats().auth_resolutions, 0u);
  // Ambient answers carry decayed TTLs.
  EXPECT_LT(probe.responses[0].second.answers[0].ttl,
            zones.record(zones.ids_of(ServiceClass::kWebOrigin)[0]).ttl_sec);
}

TEST_F(RecursiveTest, TtlCapClampsAnswers) {
  auto cfg = base_config();
  cfg.cache.max_ttl_sec = 60;
  RecursiveResolverPlatform platform{sim, net, zones, cfg, 5};
  // Pick a name whose authoritative TTL exceeds the cap.
  const dns::DomainName* name = nullptr;
  for (const auto id : zones.ids_of(ServiceClass::kWebOrigin)) {
    if (zones.record(id).ttl_sec > 120) {
      name = &zones.record(id).name;
      break;
    }
  }
  ASSERT_NE(name, nullptr);
  query(*name, kService, 1);
  sim.run_to_completion();
  sim.run_until(sim.now() + SimDuration::sec(61));
  query(*name, kService, 2);  // past cap: must re-resolve
  sim.run_to_completion();
  EXPECT_EQ(platform.stats().auth_resolutions, 2u);
}

TEST_F(RecursiveTest, IgnoresNonQueryTraffic) {
  RecursiveResolverPlatform platform{sim, net, zones, base_config(), 5};
  netsim::Packet junk;
  junk.src_ip = kClient;
  junk.dst_ip = kService;
  junk.src_port = 40'000;
  junk.dst_port = 53;
  junk.proto = Proto::kUdp;  // no dns payload
  net.send(junk);
  sim.run_to_completion();
  EXPECT_EQ(platform.stats().queries, 0u);
  EXPECT_TRUE(probe.responses.empty());
}

TEST_F(RecursiveTest, DefaultPlatformsAreWellFormed) {
  const auto platforms = default_platforms();
  ASSERT_EQ(platforms.size(), 4u);
  EXPECT_EQ(platforms[0].name, "Local");
  EXPECT_EQ(platforms[1].name, "Google");
  EXPECT_EQ(platforms[2].name, "OpenDNS");
  EXPECT_EQ(platforms[3].name, "Cloudflare");
  for (const auto& p : platforms) {
    EXPECT_FALSE(p.addrs.empty());
    EXPECT_GT(p.frontends, 0u);
    EXPECT_GT(p.cache.capacity, 0u);
  }
  // The calibrated RTT ordering the paper reports: Local < CF < Google/OpenDNS.
  EXPECT_LT(platforms[0].site.base_one_way, platforms[3].site.base_one_way);
  EXPECT_LT(platforms[3].site.base_one_way, platforms[1].site.base_one_way);
}

}  // namespace
}  // namespace dnsctx::resolver
