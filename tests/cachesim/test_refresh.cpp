// Unit tests for the Table 3 refresh simulator.
#include <gtest/gtest.h>

#include "cachesim/refresh.hpp"

namespace dnsctx::cachesim {
namespace {

constexpr Ipv4Addr kHouse{100, 66, 1, 1};
constexpr Ipv4Addr kResolver{100, 66, 250, 1};

struct Builder {
  capture::Dataset ds;
  int idx = 0;

  void demand(const char* name, std::int64_t at_sec, std::uint32_t ttl,
              Ipv4Addr house = kHouse) {
    const Ipv4Addr server{34, 3, static_cast<std::uint8_t>(idx / 200),
                          static_cast<std::uint8_t>(1 + idx % 200)};
    ++idx;
    capture::DnsRecord d;
    d.ts = SimTime::origin() + SimDuration::sec(at_sec);
    d.duration = SimDuration::ms(2);
    d.client_ip = house;
    d.resolver_ip = kResolver;
    d.query = name;
    d.answered = true;
    d.answers = {{server, ttl}};
    ds.dns.push_back(d);
    capture::ConnRecord c;
    c.start = d.response_time() + SimDuration::ms(5);
    c.duration = SimDuration::sec(1);
    c.orig_ip = house;
    c.resp_ip = server;
    c.orig_port = 10'000;
    c.resp_port = 443;
    ds.conns.push_back(c);
  }

  void speculative(const char* name, std::int64_t at_sec, std::uint32_t ttl) {
    capture::DnsRecord d;
    d.ts = SimTime::origin() + SimDuration::sec(at_sec);
    d.duration = SimDuration::ms(2);
    d.client_ip = kHouse;
    d.resolver_ip = kResolver;
    d.query = name;
    d.answered = true;
    d.answers = {{Ipv4Addr{35, 9, 9, static_cast<std::uint8_t>(1 + idx % 200)}, ttl}};
    ++idx;
    ds.dns.push_back(d);
  }

  [[nodiscard]] RefreshResult run(bool refresh) {
    std::sort(ds.dns.begin(), ds.dns.end(),
              [](const auto& a, const auto& b) { return a.ts < b.ts; });
    std::sort(ds.conns.begin(), ds.conns.end(),
              [](const auto& a, const auto& b) { return a.start < b.start; });
    const auto pairing = analysis::pair_connections(ds);
    RefreshConfig cfg;
    cfg.policy = refresh ? RefreshPolicy::kRefreshAll : RefreshPolicy::kStandard;
    return simulate_refresh(ds, pairing, cfg);
  }
};

TEST(Refresh, StandardCacheHitsRepeatDemandsWithinTtl) {
  Builder b;
  b.demand("a.com", 0, 600);
  b.demand("a.com", 100, 600);  // within TTL → conn hit
  b.demand("a.com", 700, 600);  // expired → miss
  const auto r = b.run(false);
  EXPECT_EQ(r.conns, 3u);
  EXPECT_EQ(r.conn_hits, 1u);
  EXPECT_EQ(r.upstream_lookups, 2u);
  EXPECT_EQ(r.refresh_lookups, 0u);
}

TEST(Refresh, SpeculativeLookupsCountAsDemands) {
  Builder b;
  b.speculative("spec.com", 0, 600);
  b.speculative("spec.com", 100, 600);  // cache hit: no upstream
  b.speculative("other.com", 200, 600);
  const auto r = b.run(false);
  EXPECT_EQ(r.conns, 0u);
  EXPECT_EQ(r.upstream_lookups, 2u);
}

TEST(Refresh, RefreshModeKeepsEntriesWarm) {
  Builder b;
  b.demand("a.com", 0, 100);
  b.demand("a.com", 500, 100);    // far past TTL, but refreshed → hit
  b.demand("a.com", 1'000, 100);  // also hit
  const auto r = b.run(true);
  EXPECT_EQ(r.conn_hits, 2u);
  // 1 miss + refreshes over the ~1001 s trace at TTL 100 ≈ 10.
  EXPECT_EQ(r.upstream_lookups - r.refresh_lookups, 1u);
  EXPECT_NEAR(static_cast<double>(r.refresh_lookups), 10.0, 1.0);
}

TEST(Refresh, ShortTtlNamesAreNotRefreshed) {
  Builder b;
  b.demand("tiny.com", 0, 5);      // TTL below the 10 s floor
  b.demand("tiny.com", 100, 5);    // miss again
  const auto r = b.run(true);
  EXPECT_EQ(r.conn_hits, 0u);
  EXPECT_EQ(r.refresh_lookups, 0u);
  EXPECT_EQ(r.upstream_lookups, 2u);
}

TEST(Refresh, RefreshBeatsStandardHitRate) {
  Builder b;
  Rng rng{5};
  for (int i = 0; i < 400; ++i) {
    const auto name = "n" + std::to_string(rng.bounded(30)) + ".com";
    b.demand(name.c_str(), i * 30, 120);
  }
  Builder b2;
  b2.ds = b.ds;
  const auto standard = b.run(false);
  const auto refresh = b2.run(true);
  EXPECT_GT(refresh.conn_hit_rate(), standard.conn_hit_rate());
  EXPECT_GT(refresh.upstream_lookups, standard.upstream_lookups);
  EXPECT_GT(refresh.conn_hit_rate(), 0.9);  // nearly everything warm
}

TEST(Refresh, PerHouseCachesAreIndependent) {
  Builder b;
  b.demand("a.com", 0, 3'600, kHouse);
  b.demand("a.com", 100, 3'600, Ipv4Addr{100, 66, 1, 2});  // other house: miss
  const auto r = b.run(false);
  EXPECT_EQ(r.conn_hits, 0u);
  EXPECT_EQ(r.upstream_lookups, 2u);
  EXPECT_EQ(r.houses, 2u);
}

TEST(Refresh, AuthoritativeTtlIsMaxObserved) {
  Builder b;
  // First response advertises a low TTL (decayed shared-cache answer);
  // a later one shows the true 600 s. The simulator uses 600 everywhere.
  b.demand("a.com", 0, 60);
  b.demand("a.com", 1'000, 600);
  b.demand("a.com", 1'100, 60);  // within 600 of the 1'000 s insert → hit
  const auto r = b.run(false);
  EXPECT_EQ(r.conn_hits, 1u);
}

TEST(Refresh, LookupsPerSecondPerHouse) {
  Builder b;
  b.demand("a.com", 0, 50);
  b.demand("b.com", 1'000, 50);  // trace ≈ 1'001 s, one house
  const auto r = b.run(false);
  EXPECT_EQ(r.houses, 1u);
  EXPECT_NEAR(r.trace_seconds, 1'001.0, 1.0);
  EXPECT_NEAR(r.lookups_per_sec_per_house(), 2.0 / 1'001.0, 1e-4);
}

TEST(RefreshPolicies, RecentStopsRefreshingDormantNames) {
  Builder b;
  b.demand("hot.com", 0, 100);
  b.demand("hot.com", 500, 100);    // still inside the 1 h window → hit
  b.demand("cold.com", 0, 100);     // never demanded again
  std::sort(b.ds.dns.begin(), b.ds.dns.end(),
            [](const auto& x, const auto& y) { return x.ts < y.ts; });
  std::sort(b.ds.conns.begin(), b.ds.conns.end(),
            [](const auto& x, const auto& y) { return x.start < y.start; });
  const auto pairing = analysis::pair_connections(b.ds);
  RefreshConfig cfg;
  cfg.policy = RefreshPolicy::kRefreshRecent;
  cfg.recent_window = SimDuration::sec(600);
  const auto r = simulate_refresh(b.ds, pairing, cfg);
  EXPECT_EQ(r.conn_hits, 1u);  // hot.com's second demand
  // Coverage is capped at the trace end (~501 s): each name's initial
  // fetch covers 100 s and refreshing extends it to the cap, costing
  // (501-100)/100 ≈ 4 refreshes per name.
  EXPECT_NEAR(static_cast<double>(r.refresh_lookups), 8.0, 2.0);
  // Refresh-all on the same trace would cover both names to trace end.
  RefreshConfig all;
  all.policy = RefreshPolicy::kRefreshAll;
  const auto r_all = simulate_refresh(b.ds, pairing, all);
  EXPECT_GE(r_all.refresh_lookups, r.refresh_lookups);
}

TEST(RefreshPolicies, FrequentOnlyRefreshesRepeatedNames) {
  Builder b;
  // one-shot.com demanded once; popular.com three times.
  b.demand("one-shot.com", 0, 100);
  b.demand("popular.com", 0, 100);
  b.demand("popular.com", 50, 100);
  b.demand("popular.com", 2'000, 100);
  std::sort(b.ds.dns.begin(), b.ds.dns.end(),
            [](const auto& x, const auto& y) { return x.ts < y.ts; });
  std::sort(b.ds.conns.begin(), b.ds.conns.end(),
            [](const auto& x, const auto& y) { return x.start < y.start; });
  const auto pairing = analysis::pair_connections(b.ds);
  RefreshConfig cfg;
  cfg.policy = RefreshPolicy::kRefreshFrequent;
  cfg.frequent_threshold = 2;
  const auto r = simulate_refresh(b.ds, pairing, cfg);
  // popular.com starts refreshing at its 2nd demand (t=50) → the t=2000
  // demand hits; one-shot.com never refreshes.
  EXPECT_EQ(r.conn_hits, 2u);  // t=50 (TTL hit) and t=2000 (refresh hit)
  EXPECT_GT(r.refresh_lookups, 0u);
  // The one-shot name contributed no refresh traffic: total refreshes
  // cover only popular.com's span (~2000 s / 100 s ≈ 20).
  EXPECT_NEAR(static_cast<double>(r.refresh_lookups), 20.0, 3.0);
}

TEST(RefreshPolicies, CostOrderingHolds) {
  Builder b;
  Rng rng{9};
  for (int i = 0; i < 300; ++i) {
    const auto name = "n" + std::to_string(rng.bounded(40)) + ".com";
    b.demand(name.c_str(), i * 40, 120);
  }
  std::sort(b.ds.dns.begin(), b.ds.dns.end(),
            [](const auto& x, const auto& y) { return x.ts < y.ts; });
  std::sort(b.ds.conns.begin(), b.ds.conns.end(),
            [](const auto& x, const auto& y) { return x.start < y.start; });
  const auto pairing = analysis::pair_connections(b.ds);
  auto run_policy = [&](RefreshPolicy p) {
    RefreshConfig cfg;
    cfg.policy = p;
    return simulate_refresh(b.ds, pairing, cfg);
  };
  const auto standard = run_policy(RefreshPolicy::kStandard);
  const auto recent = run_policy(RefreshPolicy::kRefreshRecent);
  const auto frequent = run_policy(RefreshPolicy::kRefreshFrequent);
  const auto all = run_policy(RefreshPolicy::kRefreshAll);
  // Hit rate: standard ≤ {recent, frequent} ≤ all.
  EXPECT_LE(standard.conn_hit_rate(), recent.conn_hit_rate());
  EXPECT_LE(standard.conn_hit_rate(), frequent.conn_hit_rate());
  EXPECT_LE(recent.conn_hit_rate(), all.conn_hit_rate() + 1e-9);
  EXPECT_LE(frequent.conn_hit_rate(), all.conn_hit_rate() + 1e-9);
  // Cost: the selective policies stay below refresh-all.
  EXPECT_LT(recent.upstream_lookups, all.upstream_lookups);
  EXPECT_LT(frequent.upstream_lookups, all.upstream_lookups);
}

TEST(RefreshPolicies, Names) {
  EXPECT_EQ(to_string(RefreshPolicy::kStandard), "standard");
  EXPECT_EQ(to_string(RefreshPolicy::kRefreshAll), "refresh-all");
  EXPECT_EQ(to_string(RefreshPolicy::kRefreshRecent), "refresh-recent");
  EXPECT_EQ(to_string(RefreshPolicy::kRefreshFrequent), "refresh-frequent");
}

TEST(Refresh, EmptyDatasetSafe) {
  const capture::Dataset ds;
  const auto pairing = analysis::pair_connections(ds);
  const auto r = simulate_refresh(ds, pairing, RefreshConfig{});
  EXPECT_EQ(r.conns, 0u);
  EXPECT_EQ(r.upstream_lookups, 0u);
  EXPECT_EQ(r.lookups_per_sec_per_house(), 0.0);
}

}  // namespace
}  // namespace dnsctx::cachesim
