// Unit tests for the §8 whole-house cache what-if simulator.
#include <gtest/gtest.h>

#include "cachesim/whole_house.hpp"

namespace dnsctx::cachesim {
namespace {

constexpr Ipv4Addr kHouse{100, 66, 1, 1};
constexpr Ipv4Addr kHouse2{100, 66, 1, 2};
constexpr Ipv4Addr kResolver{100, 66, 250, 1};

struct Builder {
  capture::Dataset ds;
  int idx = 0;

  /// A blocked lookup+conn for (house, name). Returns the conn index.
  std::size_t blocked(Ipv4Addr house, const char* name, std::int64_t at_ms,
                      std::uint32_t ttl = 300, double lookup_ms = 2.0) {
    const Ipv4Addr server{34, 2, static_cast<std::uint8_t>(idx / 200),
                          static_cast<std::uint8_t>(1 + idx % 200)};
    ++idx;
    capture::DnsRecord d;
    d.ts = SimTime::origin() + SimDuration::ms(at_ms);
    d.duration = SimDuration::from_ms(lookup_ms);
    d.client_ip = house;
    d.resolver_ip = kResolver;
    d.query = name;
    d.answered = true;
    d.answers = {{server, ttl}};
    ds.dns.push_back(d);
    capture::ConnRecord c;
    c.start = d.response_time() + SimDuration::ms(5);
    c.duration = SimDuration::sec(1);
    c.orig_ip = house;
    c.resp_ip = server;
    c.orig_port = 10'000;
    c.resp_port = 443;
    ds.conns.push_back(c);
    return ds.conns.size() - 1;
  }

  struct Outputs {
    analysis::PairingResult pairing;
    analysis::Classified classified;
    WholeHouseResult result;
  };

  [[nodiscard]] Outputs run() {
    std::sort(ds.dns.begin(), ds.dns.end(),
              [](const auto& a, const auto& b) { return a.ts < b.ts; });
    std::sort(ds.conns.begin(), ds.conns.end(),
              [](const auto& a, const auto& b) { return a.start < b.start; });
    Outputs out;
    out.pairing = analysis::pair_connections(ds);
    analysis::ClassifyConfig cfg;
    cfg.per_resolver_min_lookups = 1'000'000;
    out.classified = analysis::classify_connections(ds, out.pairing, cfg);
    out.result = simulate_whole_house(ds, out.pairing, out.classified);
    return out;
  }
};

TEST(WholeHouse, SecondDeviceLookupWithinTtlMoves) {
  Builder b;
  b.blocked(kHouse, "shared.com", 0, 300);
  // Same house asks again 60 s later (another device): would be a house
  // cache hit → that conn moves to LC.
  b.blocked(kHouse, "shared.com", 60'000, 300);
  const auto out = b.run();
  EXPECT_EQ(out.result.sc_total, 2u);
  EXPECT_EQ(out.result.moved(), 1u);
  EXPECT_DOUBLE_EQ(out.result.moved_frac_of_all(), 0.5);
}

TEST(WholeHouse, ExpiredEntryDoesNotMove) {
  Builder b;
  b.blocked(kHouse, "shared.com", 0, 30);
  b.blocked(kHouse, "shared.com", 60'000, 30);  // 60 s later, TTL was 30 s
  const auto out = b.run();
  EXPECT_EQ(out.result.moved(), 0u);
}

TEST(WholeHouse, CacheIsPerHouse) {
  Builder b;
  b.blocked(kHouse, "shared.com", 0, 3'600);
  b.blocked(kHouse2, "shared.com", 60'000, 3'600);  // different house: no benefit
  const auto out = b.run();
  EXPECT_EQ(out.result.moved(), 0u);
}

TEST(WholeHouse, MovesSplitBetweenScAndR) {
  Builder b;
  b.blocked(kHouse, "fast.com", 0, 3'600, 2.0);
  b.blocked(kHouse, "fast.com", 30'000, 3'600, 2.0);    // SC move
  b.blocked(kHouse, "slow.com", 60'000, 3'600, 80.0);
  b.blocked(kHouse, "slow.com", 90'000, 3'600, 80.0);   // R move
  const auto out = b.run();
  EXPECT_EQ(out.result.sc_moved, 1u);
  EXPECT_EQ(out.result.r_moved, 1u);
  EXPECT_DOUBLE_EQ(out.result.sc_moved_frac(), 0.5);
  EXPECT_DOUBLE_EQ(out.result.r_moved_frac(), 0.5);
}

TEST(WholeHouse, NonBlockedClassesUntouched) {
  Builder b;
  const auto first = b.blocked(kHouse, "a.com", 0, 3'600);
  // A later LC-style conn to the same server (same pairing, gap > 100 ms).
  capture::ConnRecord lc = b.ds.conns[first];
  lc.start = lc.start + SimDuration::sec(30);
  b.ds.conns.push_back(lc);
  const auto out = b.run();
  EXPECT_EQ(out.result.total_conns, 2u);
  EXPECT_EQ(out.result.sc_total, 1u);  // only the blocked one counts
}

TEST(WholeHouse, EmptyDataset) {
  const capture::Dataset ds;
  const auto pairing = analysis::pair_connections(ds);
  const auto classified = analysis::classify_connections(ds, pairing);
  const auto result = simulate_whole_house(ds, pairing, classified);
  EXPECT_EQ(result.moved(), 0u);
  EXPECT_EQ(result.moved_frac_of_all(), 0.0);
}

}  // namespace
}  // namespace dnsctx::cachesim
