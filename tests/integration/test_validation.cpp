// Validation of the paper's inference heuristics against simulation
// ground truth — the check the paper itself could never run.
#include <gtest/gtest.h>

#include "analysis/study.hpp"
#include "scenario/scenario.hpp"

namespace dnsctx::scenario {
namespace {

class ValidationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig cfg;
    cfg.seed = 123;
    cfg.houses = 12;
    cfg.duration = SimDuration::hours(3);
    cfg.zones.web_sites = 150;
    town = new Town{cfg};
    town->run();
    study = new analysis::Study{analysis::run_study(town->dataset())};
  }
  static void TearDownTestSuite() {
    delete study;
    delete town;
    town = nullptr;
    study = nullptr;
  }
  static Town* town;
  static analysis::Study* study;
};

Town* ValidationTest::town = nullptr;
analysis::Study* ValidationTest::study = nullptr;

TEST_F(ValidationTest, BlockedInferenceMatchesGroundTruth) {
  // The monitor's "blocked" classification (SC+R) should track the true
  // number of fetches that waited on a network lookup.
  const auto& truth = town->ground_truth();
  const double inferred = static_cast<double>(study->classified.counts.blocked());
  const double actual = static_cast<double>(truth.fetch_blocked);
  EXPECT_NEAR(inferred / actual, 1.0, 0.25);
}

TEST_F(ValidationTest, NoDnsInferenceMatchesGroundTruth) {
  const auto& truth = town->ground_truth();
  const double inferred = static_cast<double>(study->classified.counts.n);
  // UDP flows can be split by the monitor's 60 s timeout, so inferred N
  // is an overestimate bounded by a factor; it must never undercount by
  // much.
  EXPECT_GT(inferred, 0.5 * static_cast<double>(truth.no_dns_conns));
  EXPECT_LT(inferred, 3.0 * static_cast<double>(truth.no_dns_conns));
}

TEST_F(ValidationTest, LocalCacheInferenceTracksStubHits) {
  const auto& truth = town->ground_truth();
  // LC + P ≈ connections served by device caches (cache hits).
  const double inferred =
      static_cast<double>(study->classified.counts.lc + study->classified.counts.p);
  const double actual = static_cast<double>(truth.fetch_cache_hits);
  EXPECT_NEAR(inferred / actual, 1.0, 0.35);
}

TEST_F(ValidationTest, ExpiredUsageInferenceTracksTruth) {
  const auto& truth = town->ground_truth();
  const double inferred =
      static_cast<double>(study->classified.lc_expired + study->classified.p_expired);
  const double actual = static_cast<double>(truth.fetch_cache_expired);
  ASSERT_GT(actual, 0.0);
  EXPECT_NEAR(inferred / actual, 1.0, 0.45);
}

TEST_F(ValidationTest, BimodalGapStructureExists) {
  const auto& b = study->blocking;
  ASSERT_FALSE(b.gap_ms.empty());
  // Substantial mass both below 20 ms and above 1 s — the two regimes.
  EXPECT_GT(b.gap_ms.fraction_at_or_below(20.0), 0.15);
  EXPECT_GT(b.gap_ms.fraction_above(1'000.0), 0.25);
  // Valley exists: the knee lands between the modes.
  EXPECT_GT(b.knee_ms, 5.0);
  EXPECT_LT(b.knee_ms, 5'000.0);
}

TEST_F(ValidationTest, BlockedConnsAreOverwhelminglyFirstUsers) {
  EXPECT_GT(study->blocking.first_use_frac_below, 0.8);   // paper: 91%
  EXPECT_LT(study->blocking.first_use_frac_above, 0.45);  // paper: 21%
}

TEST_F(ValidationTest, ResolverThresholdsReflectPlatformRtts) {
  const auto& thresholds = study->classified.resolver_threshold_ms;
  using namespace resolver::well_known;
  ASSERT_TRUE(thresholds.contains(kIspResolver1));
  // ISP resolvers sit ~2 ms away; threshold must be single-digit ms.
  EXPECT_LT(thresholds.at(kIspResolver1), 10.0);
  if (thresholds.contains(kGoogle1)) {
    EXPECT_GT(thresholds.at(kGoogle1), thresholds.at(kIspResolver1));
  }
}

TEST_F(ValidationTest, SharedCacheHitRateMatchesPlatformTruth) {
  // The monitor-side SC/(SC+R) estimate should track the platforms' own
  // cache counters (aggregated, weighted by their blocked-lookup share).
  double truth_hits = 0, truth_queries = 0;
  for (const auto& p : town->platforms()) {
    truth_hits += static_cast<double>(p->stats().shard_hits + p->stats().ambient_hits);
    truth_queries += static_cast<double>(p->stats().queries);
  }
  ASSERT_GT(truth_queries, 0.0);
  const double truth_rate = truth_hits / truth_queries;
  const double inferred = study->classified.counts.shared_cache_hit_rate();
  EXPECT_NEAR(inferred, truth_rate, 0.15);
}

TEST_F(ValidationTest, PairingAmbiguityIsBounded) {
  // §4: the bulk of connections should have a unique live candidate.
  EXPECT_GT(study->pairing.unique_candidate_frac(), 0.6);
}

TEST_F(ValidationTest, RandomPairingPolicyPreservesHighLevelShares) {
  // The paper's robustness check: re-pair randomly and compare class
  // shares; the qualitative picture must not change.
  analysis::StudyConfig cfg;
  cfg.pairing_policy = analysis::PairingPolicy::kRandom;
  cfg.pairing_seed = 99;
  const auto alt = analysis::run_study(town->dataset(), cfg);
  const auto& a = study->classified.counts;
  const auto& b = alt.classified.counts;
  EXPECT_EQ(a.n, b.n);  // pairing policy cannot change N
  EXPECT_NEAR(a.share(a.lc), b.share(b.lc), 0.05);
  EXPECT_NEAR(a.share(a.sc + a.r), b.share(b.sc + b.r), 0.05);
}

}  // namespace
}  // namespace dnsctx::scenario
