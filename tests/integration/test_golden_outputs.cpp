// dnsctx — golden-output regression tests.
//
// The interned-name/flat-map analysis core is a REPRESENTATION change:
// every table, report, export and streaming result must stay
// byte-identical to the committed golden files, which were generated
// from the pre-change pipeline. The goldens cover seeds {1,7} × shards
// {1,4}: the full batch report text (Tables 1–2, Figures 1–3, §6
// quadrants, §7 platform rows), the CSV exports, the §8 cache
// simulations (whole-house + Table 3 refresh policies), and a full
// numeric dump of the streaming OnlineStudy result.
//
// Regenerate (only when an INTENTIONAL output change is made) with:
//
//   DNSCTX_GOLDEN_UPDATE=1 ./build/tests/test_integration \
//       --gtest_filter='Golden*'
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/report.hpp"
#include "analysis/study.hpp"
#include "analysis/export.hpp"
#include "cachesim/refresh.hpp"
#include "cachesim/whole_house.hpp"
#include "scenario/scenario.hpp"
#include "stream/online_study.hpp"
#include "stream/spool.hpp"
#include "util/strings.hpp"

#ifndef DNSCTX_GOLDEN_DIR
#error "DNSCTX_GOLDEN_DIR must be defined by the build"
#endif

namespace dnsctx {
namespace {

constexpr std::size_t kHouses = 12;
constexpr int kHours = 3;

[[nodiscard]] capture::Dataset simulate(std::uint64_t seed, std::size_t shards) {
  scenario::ScenarioConfig cfg;
  cfg.houses = kHouses;
  cfg.duration = SimDuration::hours(kHours);
  cfg.seed = seed;
  cfg.shards = shards;
  scenario::Town town{cfg};
  town.run();
  return town.harvest();
}

/// Full-precision double: the golden diff must catch a 1-ulp drift.
[[nodiscard]] std::string g(double v) { return strfmt("%.17g", v); }

[[nodiscard]] std::string render_batch(const capture::Dataset& ds,
                                       const analysis::Study& s) {
  std::string out;
  out += analysis::format_table1(s);
  out += analysis::format_table2(s, ds);
  out += analysis::format_fig1(s);
  out += analysis::format_fig2(s);
  out += analysis::format_fig3(s);

  const auto wh = cachesim::simulate_whole_house(ds, s.pairing, s.classified);
  out += strfmt("whole-house: sc_moved=%llu r_moved=%llu sc_total=%llu r_total=%llu\n",
                static_cast<unsigned long long>(wh.sc_moved),
                static_cast<unsigned long long>(wh.r_moved),
                static_cast<unsigned long long>(wh.sc_total),
                static_cast<unsigned long long>(wh.r_total));
  for (const auto policy :
       {cachesim::RefreshPolicy::kStandard, cachesim::RefreshPolicy::kRefreshAll}) {
    cachesim::RefreshConfig cfg;
    cfg.policy = policy;
    const auto r = cachesim::simulate_refresh(ds, s.pairing, cfg);
    out += strfmt("refresh[%s]: conns=%llu conn_hits=%llu upstream=%llu refresh=%llu\n",
                  std::string{to_string(policy)}.c_str(),
                  static_cast<unsigned long long>(r.conns),
                  static_cast<unsigned long long>(r.conn_hits),
                  static_cast<unsigned long long>(r.upstream_lookups),
                  static_cast<unsigned long long>(r.refresh_lookups));
  }
  return out;
}

[[nodiscard]] std::string render_exports(const analysis::Study& s) {
  const auto dir = std::filesystem::temp_directory_path() / "dnsctx_golden_csv";
  std::filesystem::create_directories(dir);
  const std::size_t written = analysis::export_study_csv(s, dir.string());
  std::string out = strfmt("csv files: %zu\n", written);
  std::vector<std::string> names;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    names.push_back(entry.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  for (const auto& name : names) {
    std::ifstream is{dir / name};
    std::stringstream ss;
    ss << is.rdbuf();
    out += "==== " + name + " ====\n" + ss.str();
  }
  std::filesystem::remove_all(dir);
  return out;
}

[[nodiscard]] std::string render_stream(const capture::Dataset& ds) {
  stream::OnlineStudy engine;
  stream::replay_dataset(ds, engine);
  const auto r = engine.finalize();

  std::string out;
  out += strfmt("conns=%llu dns=%llu\n", static_cast<unsigned long long>(r.conns),
                static_cast<unsigned long long>(r.dns));
  out += strfmt("pairing: paired=%llu unpaired=%llu expired=%llu unique=%llu multi=%llu\n",
                static_cast<unsigned long long>(r.pairing.paired),
                static_cast<unsigned long long>(r.pairing.unpaired),
                static_cast<unsigned long long>(r.pairing.paired_expired),
                static_cast<unsigned long long>(r.pairing.unique_candidate),
                static_cast<unsigned long long>(r.pairing.multiple_candidates));
  out += "unused_lookup_frac=" + g(r.unused_lookup_frac) + "\n";
  out += strfmt("classes: n=%llu lc=%llu p=%llu sc=%llu r=%llu lc_exp=%llu p_exp=%llu\n",
                static_cast<unsigned long long>(r.classes.n),
                static_cast<unsigned long long>(r.classes.lc),
                static_cast<unsigned long long>(r.classes.p),
                static_cast<unsigned long long>(r.classes.sc),
                static_cast<unsigned long long>(r.classes.r),
                static_cast<unsigned long long>(r.lc_expired),
                static_cast<unsigned long long>(r.p_expired));
  // Threshold map: iteration order is an implementation detail; print
  // sorted by resolver address.
  std::vector<std::pair<Ipv4Addr, double>> thresholds{r.resolver_threshold_ms.begin(),
                                                      r.resolver_threshold_ms.end()};
  std::sort(thresholds.begin(), thresholds.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [ip, ms] : thresholds) {
    out += "threshold " + ip.to_string() + " = " + g(ms) + "\n";
  }
  for (const auto& row : r.table1) {
    out += "table1 " + row.platform + " " + g(row.pct_houses) + " " + g(row.pct_lookups) +
           " " + g(row.pct_conns) + " " + g(row.pct_bytes) +
           strfmt(" %llu\n", static_cast<unsigned long long>(row.lookups));
  }
  out += "isp_only_houses=" + g(r.isp_only_houses) + "\n";
  out += "quadrants " + g(r.quadrants.insignificant_both) + " " +
         g(r.quadrants.relative_only) + " " + g(r.quadrants.absolute_only) + " " +
         g(r.quadrants.significant_both) + " " + g(r.quadrants.significant_overall) + "\n";
  for (const auto& p : r.platforms) {
    out += strfmt("platform %s sc=%llu r=%llu conncheck=%llu total=%llu\n",
                  p.platform.c_str(), static_cast<unsigned long long>(p.sc),
                  static_cast<unsigned long long>(p.r),
                  static_cast<unsigned long long>(p.conncheck_conns),
                  static_cast<unsigned long long>(p.total_conns));
  }
  return out;
}

void check_golden(const std::string& name, const std::string& actual) {
  const auto path = std::filesystem::path{DNSCTX_GOLDEN_DIR} / (name + ".golden");
  if (std::getenv("DNSCTX_GOLDEN_UPDATE") != nullptr) {
    std::filesystem::create_directories(path.parent_path());
    std::ofstream os{path, std::ios::binary};
    os << actual;
    ASSERT_TRUE(os.good()) << "failed to write " << path;
    GTEST_SKIP() << "golden updated: " << path;
  }
  std::ifstream is{path, std::ios::binary};
  ASSERT_TRUE(is.good()) << "missing golden file " << path
                         << " (run with DNSCTX_GOLDEN_UPDATE=1 to create)";
  std::stringstream ss;
  ss << is.rdbuf();
  const std::string expected = ss.str();
  // EXPECT_EQ on the whole blob would dump megabytes on failure; find
  // the first differing line instead.
  if (actual == expected) return;
  std::istringstream a{actual}, e{expected};
  std::string al, el;
  std::size_t line = 0;
  while (true) {
    ++line;
    const bool more_a = static_cast<bool>(std::getline(a, al));
    const bool more_e = static_cast<bool>(std::getline(e, el));
    if (!more_a && !more_e) break;
    ASSERT_EQ(el, al) << "first mismatch vs " << path << " at line " << line;
    ASSERT_EQ(more_e, more_a) << "length mismatch vs " << path << " after line " << line;
  }
  FAIL() << "golden mismatch vs " << path << " (no differing line found?)";
}

class Golden : public testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {};

TEST_P(Golden, BatchReportExportsAndStream) {
  const auto [seed, shards] = GetParam();
  const auto ds = simulate(seed, shards);
  const auto study = analysis::run_study(ds);
  const auto tag = strfmt("seed%llu_shards%zu", static_cast<unsigned long long>(seed), shards);
  check_golden("batch_" + tag, render_batch(ds, study));
  check_golden("export_" + tag, render_exports(study));
  check_golden("stream_" + tag, render_stream(ds));
}

INSTANTIATE_TEST_SUITE_P(SeedsAndShards, Golden,
                         testing::Combine(testing::Values(1ull, 7ull),
                                          testing::Values(std::size_t{1}, std::size_t{4})),
                         [](const auto& info) {
                           return strfmt("seed%llu_shards%zu",
                                         static_cast<unsigned long long>(std::get<0>(info.param)),
                                         std::get<1>(info.param));
                         });

}  // namespace
}  // namespace dnsctx
