// The parallel execution layer's core promise: for a fixed scenario
// (including its shard count), the captured dataset and every derived
// analysis result are identical for ANY thread count.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "analysis/study.hpp"
#include "capture/logio.hpp"
#include "scenario/scenario.hpp"

namespace dnsctx {
namespace {

[[nodiscard]] scenario::ScenarioConfig small_sharded_config(unsigned threads) {
  scenario::ScenarioConfig cfg;
  cfg.houses = 16;
  cfg.duration = SimDuration::hours(2);
  cfg.seed = 2020;
  cfg.shards = 4;
  cfg.threads = threads;
  return cfg;
}

/// Serialize a dataset to one string — byte equality of these strings is
/// the determinism criterion.
[[nodiscard]] std::string serialize(const capture::Dataset& ds) {
  std::stringstream ss;
  capture::write_conn_log(ss, ds.conns);
  capture::write_dns_log(ss, ds.dns);
  return ss.str();
}

void expect_same_cdf(const Cdf& a, const Cdf& b) {
  ASSERT_EQ(a.count(), b.count());
  if (a.empty()) return;
  EXPECT_EQ(a.median(), b.median());
  EXPECT_EQ(a.quantile(0.9), b.quantile(0.9));
}

void expect_same_study(const analysis::Study& a, const analysis::Study& b) {
  EXPECT_EQ(a.pairing.paired, b.pairing.paired);
  EXPECT_EQ(a.pairing.unpaired, b.pairing.unpaired);
  EXPECT_EQ(a.pairing.paired_expired, b.pairing.paired_expired);
  EXPECT_EQ(a.pairing.unique_candidate, b.pairing.unique_candidate);
  EXPECT_EQ(a.pairing.multiple_candidates, b.pairing.multiple_candidates);
  ASSERT_EQ(a.pairing.conns.size(), b.pairing.conns.size());
  for (std::size_t i = 0; i < a.pairing.conns.size(); ++i) {
    EXPECT_EQ(a.pairing.conns[i].dns_idx, b.pairing.conns[i].dns_idx);
  }

  EXPECT_EQ(a.classified.counts.n, b.classified.counts.n);
  EXPECT_EQ(a.classified.counts.lc, b.classified.counts.lc);
  EXPECT_EQ(a.classified.counts.p, b.classified.counts.p);
  EXPECT_EQ(a.classified.counts.sc, b.classified.counts.sc);
  EXPECT_EQ(a.classified.counts.r, b.classified.counts.r);
  EXPECT_EQ(a.classified.lc_expired, b.classified.lc_expired);
  EXPECT_EQ(a.classified.p_expired, b.classified.p_expired);
  EXPECT_EQ(a.classified.classes, b.classified.classes);
  expect_same_cdf(a.classified.lc_gap_sec, b.classified.lc_gap_sec);
  expect_same_cdf(a.classified.p_gap_sec, b.classified.p_gap_sec);

  EXPECT_EQ(a.blocking.knee_ms, b.blocking.knee_ms);
  expect_same_cdf(a.blocking.gap_ms, b.blocking.gap_ms);
  EXPECT_EQ(a.blocking.first_use_frac_below, b.blocking.first_use_frac_below);
  EXPECT_EQ(a.blocking.first_use_frac_above, b.blocking.first_use_frac_above);

  EXPECT_EQ(a.performance.insignificant_both, b.performance.insignificant_both);
  EXPECT_EQ(a.performance.significant_both, b.performance.significant_both);
  EXPECT_EQ(a.performance.significant_overall, b.performance.significant_overall);
  expect_same_cdf(a.performance.lookup_ms_all, b.performance.lookup_ms_all);
  expect_same_cdf(a.performance.contrib_all, b.performance.contrib_all);

  EXPECT_EQ(a.isp_only_houses, b.isp_only_houses);
  ASSERT_EQ(a.table1.size(), b.table1.size());
  for (std::size_t i = 0; i < a.table1.size(); ++i) {
    EXPECT_EQ(a.table1[i].platform, b.table1[i].platform);
    EXPECT_EQ(a.table1[i].lookups, b.table1[i].lookups);
    EXPECT_EQ(a.table1[i].pct_houses, b.table1[i].pct_houses);
    EXPECT_EQ(a.table1[i].pct_conns, b.table1[i].pct_conns);
    EXPECT_EQ(a.table1[i].pct_bytes, b.table1[i].pct_bytes);
  }

  ASSERT_EQ(a.platforms.size(), b.platforms.size());
  for (std::size_t i = 0; i < a.platforms.size(); ++i) {
    EXPECT_EQ(a.platforms[i].platform, b.platforms[i].platform);
    EXPECT_EQ(a.platforms[i].sc, b.platforms[i].sc);
    EXPECT_EQ(a.platforms[i].r, b.platforms[i].r);
    EXPECT_EQ(a.platforms[i].total_conns, b.platforms[i].total_conns);
    EXPECT_EQ(a.platforms[i].conncheck_conns, b.platforms[i].conncheck_conns);
    expect_same_cdf(a.platforms[i].r_lookup_ms, b.platforms[i].r_lookup_ms);
    expect_same_cdf(a.platforms[i].throughput_bps, b.platforms[i].throughput_bps);
  }
}

TEST(ParallelDeterminism, DatasetIsByteIdenticalForAnyThreadCount) {
  scenario::Town baseline{small_sharded_config(1)};
  baseline.run();
  const std::string expected = serialize(baseline.dataset());
  EXPECT_FALSE(baseline.dataset().conns.empty());
  EXPECT_FALSE(baseline.dataset().dns.empty());

  for (const unsigned threads : {2u, 4u, 8u}) {
    scenario::Town town{small_sharded_config(threads)};
    town.run();
    EXPECT_EQ(serialize(town.dataset()), expected) << "threads = " << threads;
    EXPECT_EQ(town.ground_truth().fetches, baseline.ground_truth().fetches);
    EXPECT_EQ(town.ground_truth().fetch_blocked, baseline.ground_truth().fetch_blocked);
    EXPECT_EQ(town.ground_truth().no_dns_conns, baseline.ground_truth().no_dns_conns);
  }
}

TEST(ParallelDeterminism, StudyIsIdenticalForAnyThreadCount) {
  scenario::Town town{small_sharded_config(4)};
  town.run();

  analysis::StudyConfig cfg1;
  cfg1.threads = 1;
  const analysis::Study base = analysis::run_study(town.dataset(), cfg1);

  for (const unsigned threads : {2u, 8u}) {
    analysis::StudyConfig cfgN;
    cfgN.threads = threads;
    const analysis::Study parallel = analysis::run_study(town.dataset(), cfgN);
    expect_same_study(base, parallel);
  }
}

TEST(ParallelDeterminism, RandomPairingPolicyIsThreadIndependent) {
  scenario::Town town{small_sharded_config(2)};
  town.run();
  const auto a = analysis::pair_connections(town.dataset(), analysis::PairingPolicy::kRandom,
                                            7, 1);
  const auto b = analysis::pair_connections(town.dataset(), analysis::PairingPolicy::kRandom,
                                            7, 8);
  ASSERT_EQ(a.conns.size(), b.conns.size());
  for (std::size_t i = 0; i < a.conns.size(); ++i) {
    EXPECT_EQ(a.conns[i].dns_idx, b.conns[i].dns_idx);
  }
  EXPECT_EQ(a.paired, b.paired);
}

TEST(ParallelDeterminism, DiskRoundTripMatchesInMemoryStudy) {
  scenario::Town town{small_sharded_config(4)};
  town.run();

  const std::string conn_path = "/tmp/dnsctx_det_conn.log";
  const std::string dns_path = "/tmp/dnsctx_det_dns.log";
  capture::save_dataset(town.dataset(), conn_path, dns_path);
  const capture::Dataset loaded = capture::load_dataset(conn_path, dns_path);
  EXPECT_EQ(serialize(loaded), serialize(town.dataset()));

  analysis::StudyConfig cfg;
  cfg.threads = 4;
  const analysis::Study mem = analysis::run_study(town.dataset(), cfg);
  const analysis::Study disk = analysis::run_study(loaded, cfg);
  expect_same_study(mem, disk);
  std::remove(conn_path.c_str());
  std::remove(dns_path.c_str());
}

TEST(ParallelDeterminism, SingleShardMatchesLegacySeedStream) {
  // shards = 1 must reproduce the pre-sharding byte stream for the same
  // seed: the shard-0 seed labels are the legacy ones.
  scenario::ScenarioConfig cfg;
  cfg.houses = 6;
  cfg.duration = SimDuration::hours(1);
  cfg.seed = 99;
  cfg.shards = 1;

  scenario::Town a{cfg};
  a.run();
  cfg.threads = 8;  // threads are irrelevant with one shard, but must not crash
  scenario::Town b{cfg};
  b.run();
  EXPECT_EQ(serialize(a.dataset()), serialize(b.dataset()));
}

}  // namespace
}  // namespace dnsctx
