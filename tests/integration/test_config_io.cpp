// Unit tests for scenario config files.
#include <gtest/gtest.h>

#include <sstream>

#include "scenario/config_io.hpp"

namespace dnsctx::scenario {
namespace {

TEST(ConfigIo, RoundTripPreservesEveryKnob) {
  ScenarioConfig cfg;
  cfg.seed = 1'234;
  cfg.houses = 77;
  cfg.duration = SimDuration::hours(36);
  cfg.start_hour = 9;
  cfg.shards = 3;
  cfg.threads = 5;
  cfg.activity_scale = 1.5;
  cfg.ttl_violation_prob = 0.33;
  cfg.dead_ntp_frac = 0.1;
  cfg.p2p_house_frac = 0.42;
  cfg.encrypted_dns_device_frac = 0.25;
  cfg.whole_house_cache_frac = 0.6;
  cfg.mix.isp_only = 0.2;
  cfg.mix.cloudflare = 0.07;
  cfg.mix.no_isp = 0.03;
  cfg.mix.opendns_in_mixed = 0.5;
  cfg.zones.web_sites = 999;
  cfg.zones.zipf_exponent = 1.1;
  cfg.zones.hosting_pool_ips = 321;

  std::stringstream ss;
  save_config(ss, cfg);
  const ScenarioConfig back = load_config(ss);

  EXPECT_EQ(back.seed, cfg.seed);
  EXPECT_EQ(back.houses, cfg.houses);
  EXPECT_EQ(back.duration, cfg.duration);
  EXPECT_EQ(back.start_hour, cfg.start_hour);
  EXPECT_EQ(back.shards, cfg.shards);
  EXPECT_EQ(back.threads, cfg.threads);
  EXPECT_DOUBLE_EQ(back.activity_scale, cfg.activity_scale);
  EXPECT_DOUBLE_EQ(back.ttl_violation_prob, cfg.ttl_violation_prob);
  EXPECT_DOUBLE_EQ(back.dead_ntp_frac, cfg.dead_ntp_frac);
  EXPECT_DOUBLE_EQ(back.p2p_house_frac, cfg.p2p_house_frac);
  EXPECT_DOUBLE_EQ(back.encrypted_dns_device_frac, cfg.encrypted_dns_device_frac);
  EXPECT_DOUBLE_EQ(back.whole_house_cache_frac, cfg.whole_house_cache_frac);
  EXPECT_DOUBLE_EQ(back.mix.isp_only, cfg.mix.isp_only);
  EXPECT_DOUBLE_EQ(back.mix.cloudflare, cfg.mix.cloudflare);
  EXPECT_DOUBLE_EQ(back.mix.no_isp, cfg.mix.no_isp);
  EXPECT_DOUBLE_EQ(back.mix.opendns_in_mixed, cfg.mix.opendns_in_mixed);
  EXPECT_EQ(back.zones.web_sites, cfg.zones.web_sites);
  EXPECT_DOUBLE_EQ(back.zones.zipf_exponent, cfg.zones.zipf_exponent);
  EXPECT_EQ(back.zones.hosting_pool_ips, cfg.zones.hosting_pool_ips);
}

TEST(ConfigIo, MissingKeysKeepDefaults) {
  std::stringstream ss{"houses = 5\n"};
  const ScenarioConfig cfg = load_config(ss);
  EXPECT_EQ(cfg.houses, 5u);
  EXPECT_EQ(cfg.seed, ScenarioConfig{}.seed);
  EXPECT_EQ(cfg.duration, ScenarioConfig{}.duration);
}

TEST(ConfigIo, CommentsAndBlanksIgnored) {
  std::stringstream ss{"# a comment\n\n  houses = 9  \n   # another\n"};
  EXPECT_EQ(load_config(ss).houses, 9u);
}

TEST(ConfigIo, UnknownKeyReportsLine) {
  std::stringstream ss{"houses = 5\nnot_a_knob = 1\n"};
  try {
    (void)load_config(ss);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("line 2"), std::string::npos);
    EXPECT_NE(std::string{e.what()}.find("not_a_knob"), std::string::npos);
  }
}

TEST(ConfigIo, MalformedValueReportsLine) {
  std::stringstream ss{"houses = lots\n"};
  EXPECT_THROW((void)load_config(ss), std::runtime_error);
}

TEST(ConfigIo, MissingEqualsRejected) {
  std::stringstream ss{"houses 5\n"};
  EXPECT_THROW((void)load_config(ss), std::runtime_error);
}

/// Rejection table: every malformed numeric value must be refused with
/// an error naming the source, the line, and the offending key — never
/// silently clamped, wrapped, or parsed as a prefix.
TEST(ConfigIo, NumericRejectionTable) {
  struct Row {
    const char* line;     ///< the config line under test
    const char* key;      ///< key expected in the error message
    const char* why;      ///< fragment expected in the error message
  };
  const Row rows[] = {
      {"houses = 1e999", "houses", "bad number"},  // ints take no exponent
      {"seed = 99999999999999999999999999", "seed", "out of range"},
      {"activity_scale = 1e999", "activity_scale", "out of range"},
      {"activity_scale = inf", "activity_scale", "finite"},
      {"activity_scale = -inf", "activity_scale", "finite"},
      {"ttl_violation_prob = nan", "ttl_violation_prob", "finite"},
      {"houses = 1.5x", "houses", "bad number"},
      {"houses = 12 extra", "houses", "bad number"},
      {"activity_scale = 0.5garbage", "activity_scale", "bad number"},
      {"duration_hours = 2h", "duration_hours", "bad number"},
      {"mix.cloudflare = 1.01", "mix.cloudflare", "[0, 1]"},
      {"activity_scale = 0", "activity_scale", "> 0"},
      {"seed = 0x10", "seed", "bad number"},
      {"houses = ", "houses", "bad number"},
      {"tuning.prefetch_prob = 1.5", "tuning.prefetch_prob", "[0, 1]"},
      {"tuning.junk_queries_per_hour = nan", "tuning.junk_queries_per_hour",
       "finite"},
      {"tuning.diurnal_hours = 1,2,3", "tuning.diurnal_hours", "24"},
  };
  for (const Row& row : rows) {
    std::stringstream ss{std::string{row.line} + "\n"};
    try {
      (void)load_config(ss, "knobs.conf");
      FAIL() << "accepted: " << row.line;
    } catch (const std::runtime_error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("knobs.conf line 1"), std::string::npos)
          << row.line << " → " << msg;
      EXPECT_NE(msg.find(row.key), std::string::npos) << row.line << " → " << msg;
      EXPECT_NE(msg.find(row.why), std::string::npos) << row.line << " → " << msg;
    }
  }
}

TEST(ConfigIo, TuningRoundTripPreservesOverrides) {
  ScenarioConfig cfg;
  cfg.tuning.iot_max = 7;
  cfg.tuning.background_poll_scale = 2.5;
  cfg.tuning.junk_queries_per_hour = 120.0;
  cfg.tuning.web.links_max = 15;
  cfg.tuning.diurnal_hours = traffic::kOfficeHours;
  cfg.pack = "custom_pack";

  std::stringstream ss;
  save_config(ss, cfg);
  const ScenarioConfig back = load_config(ss);
  EXPECT_EQ(back.tuning, cfg.tuning);
  EXPECT_EQ(back.pack, "custom_pack");

  // Default tuning writes no tuning.* keys at all, keeping snapshots of
  // pre-pack configs byte-stable.
  std::stringstream plain;
  save_config(plain, ScenarioConfig{});
  EXPECT_EQ(plain.str().find("tuning."), std::string::npos);
  EXPECT_EQ(plain.str().find("pack"), std::string::npos);
}

TEST(ConfigIo, FileRoundTrip) {
  ScenarioConfig cfg;
  cfg.houses = 13;
  const std::string path = "/tmp/dnsctx_config_test.conf";
  save_config_file(path, cfg);
  EXPECT_EQ(load_config_file(path).houses, 13u);
  EXPECT_THROW((void)load_config_file("/no/such/file.conf"), std::runtime_error);
}

}  // namespace
}  // namespace dnsctx::scenario
