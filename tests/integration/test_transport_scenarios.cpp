// Transport-scenario integration tests: the classic cleartext stream is
// byte-identical with and without the knob, encrypted transports are
// deterministic (including across shards), and the taxonomy-degradation
// harness reproduces its misclassification counts and confusion matrix
// exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "analysis/encdns.hpp"
#include "analysis/study.hpp"
#include "analysis/truth.hpp"
#include "capture/logio.hpp"
#include "scenario/config_io.hpp"
#include "scenario/scenario.hpp"

namespace dnsctx {
namespace {

[[nodiscard]] scenario::ScenarioConfig small_config(std::uint64_t seed,
                                                    std::size_t shards = 1) {
  scenario::ScenarioConfig cfg;
  cfg.houses = 8;
  cfg.duration = SimDuration::hours(1);
  cfg.seed = seed;
  cfg.shards = shards;
  return cfg;
}

/// Full-dataset byte serialization, encrypted-flow metadata included.
[[nodiscard]] std::string serialize(const capture::Dataset& ds) {
  std::stringstream ss;
  capture::write_conn_log(ss, ds.conns);
  capture::write_dns_log(ss, ds.dns);
  capture::write_encflow_log(ss, ds.encflows);
  return ss.str();
}

TEST(TransportScenario, ExplicitDo53IsByteIdenticalToNoKnob) {
  // The golden-invariance contract: setting --transport do53 must not
  // shift a single RNG draw, for several seeds and shard layouts.
  for (const std::uint64_t seed : {1ull, 7ull}) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
      scenario::Town plain{small_config(seed, shards)};
      plain.run();
      auto cfg = small_config(seed, shards);
      cfg.transport = netsim::Transport::kDo53;
      scenario::Town knobbed{cfg};
      knobbed.run();
      EXPECT_EQ(serialize(plain.dataset()), serialize(knobbed.dataset()))
          << "seed " << seed << " shards " << shards;
      EXPECT_TRUE(plain.dataset().encflows.empty());
      EXPECT_TRUE(plain.truth_flows().empty());  // truth is opt-in
    }
  }
}

TEST(TransportScenario, DotIsDeterministicAndGoesQuiet) {
  auto cfg = small_config(3);
  cfg.transport = netsim::Transport::kDoT;
  scenario::Town a{cfg};
  a.run();
  scenario::Town b{cfg};
  b.run();
  EXPECT_EQ(serialize(a.dataset()), serialize(b.dataset()));

  // Encrypted flows appear; the port-53 DNS log collapses to the
  // non-capable (IoT-style) devices that stay on Do53.
  EXPECT_FALSE(a.dataset().encflows.empty());
  scenario::Town clear{small_config(3)};
  clear.run();
  EXPECT_LT(a.dataset().dns.size(), clear.dataset().dns.size() / 4);
  // Every encrypted flow to a resolver rides the DoT port.
  for (const auto& e : a.dataset().encflows) {
    const auto& addrs = a.resolver_service_addrs();
    if (std::find(addrs.begin(), addrs.end(), e.server_ip) != addrs.end()) {
      EXPECT_EQ(e.server_port, 853);
    }
  }
}

TEST(TransportScenario, DohRidesPort443AndStaysDeterministicSharded) {
  auto cfg = small_config(5, 4);
  cfg.transport = netsim::Transport::kDoH;
  cfg.collect_truth = true;
  scenario::Town a{cfg};
  a.run();
  scenario::Town b{cfg};
  b.run();
  EXPECT_EQ(serialize(a.dataset()), serialize(b.dataset()));

  bool saw_resolver_443 = false;
  const auto& addrs = a.resolver_service_addrs();
  for (const auto& e : a.dataset().encflows) {
    if (std::find(addrs.begin(), addrs.end(), e.server_ip) != addrs.end()) {
      EXPECT_EQ(e.server_port, 443);
      saw_resolver_443 = true;
    }
  }
  EXPECT_TRUE(saw_resolver_443);

  // The encrypted-flow confusion matrix is part of the determinism
  // contract: identical across reruns of the same sharded scenario.
  const auto ca = analysis::evaluate_enc_classifier(a.dataset().encflows, addrs);
  const auto cb =
      analysis::evaluate_enc_classifier(b.dataset().encflows, b.resolver_service_addrs());
  EXPECT_EQ(ca.tp, cb.tp);
  EXPECT_EQ(ca.fp, cb.fp);
  EXPECT_EQ(ca.tn, cb.tn);
  EXPECT_EQ(ca.fn, cb.fn);
  EXPECT_GT(ca.tp, 0u);
}

TEST(TransportScenario, TruthHarnessReproducesMisclassificationExactly) {
  auto cfg = small_config(11);
  cfg.transport = netsim::Transport::kDoT;
  cfg.collect_truth = true;

  auto run_comparison = [&cfg] {
    scenario::Town town{cfg};
    town.run();
    const auto study = analysis::run_study(town.dataset());
    return analysis::compare_with_truth(town.dataset(), study.classified,
                                        town.truth_flows());
  };
  const auto tc1 = run_comparison();
  const auto tc2 = run_comparison();
  EXPECT_GT(tc1.total(), 0u);
  EXPECT_EQ(tc1.matrix, tc2.matrix);
  EXPECT_EQ(tc1.conns_without_truth, tc2.conns_without_truth);
  EXPECT_EQ(tc1.truth_without_conn, tc2.truth_without_conn);
  EXPECT_EQ(tc1.misclassified(), tc2.misclassified());
}

TEST(TransportScenario, TaxonomyDegradesUnderEncryptedTransport) {
  // The headline result: the same neighborhood misclassifies far more
  // of its connections once the stub encrypts — the DNS log the §5
  // classifier depends on has gone dark.
  auto run_frac = [](netsim::Transport t) {
    auto cfg = small_config(13);
    cfg.transport = t;
    cfg.collect_truth = true;
    scenario::Town town{cfg};
    town.run();
    const auto study = analysis::run_study(town.dataset());
    return analysis::compare_with_truth(town.dataset(), study.classified,
                                        town.truth_flows())
        .misclassified_frac();
  };
  const double clear = run_frac(netsim::Transport::kDo53);
  const double dot = run_frac(netsim::Transport::kDoT);
  EXPECT_GT(dot, clear + 0.2);
}

TEST(TransportScenario, ResolverlessPushesRecordsPastTheStub) {
  auto cfg = small_config(17);
  cfg.transport = netsim::Transport::kResolverless;
  cfg.collect_truth = true;
  scenario::Town town{cfg};
  town.run();

  // Pushed records serve fetches without any lookup...
  EXPECT_GT(town.ground_truth().fetch_pushed_hits, 0u);
  // ...and the ground truth labels those flows with a class the paper's
  // taxonomy cannot express.
  const auto& flows = town.truth_flows();
  EXPECT_TRUE(std::any_of(flows.begin(), flows.end(), [](const auto& f) {
    return f.cls == netsim::TrueClass::kPushed;
  }));
  // Resolver-less is a cleartext scenario: no encrypted metadata.
  EXPECT_TRUE(town.dataset().encflows.empty());
}

TEST(TransportScenario, KnobsDefaultOffEverywhere) {
  EXPECT_EQ(scenario::ScenarioConfig{}.transport, netsim::Transport::kDo53);
  EXPECT_FALSE(scenario::ScenarioConfig{}.collect_truth);
  EXPECT_EQ(resolver::StubConfig{}.transport, netsim::Transport::kDo53);
  EXPECT_FALSE(capture::MonitorConfig{}.observe_encrypted_metadata);
  EXPECT_FALSE(traffic::BrowserConfig{}.server_push);
}

TEST(TransportScenario, ConfigRoundTripAndClassicFileShape) {
  scenario::ScenarioConfig cfg;
  cfg.transport = netsim::Transport::kDoH;
  cfg.collect_truth = true;
  std::stringstream ss;
  scenario::save_config(ss, cfg);
  const auto back = scenario::load_config(ss);
  EXPECT_EQ(back.transport, netsim::Transport::kDoH);
  EXPECT_TRUE(back.collect_truth);

  // Classic configs keep their classic bytes: no transport keys at all.
  std::stringstream classic;
  scenario::save_config(classic, scenario::ScenarioConfig{});
  EXPECT_EQ(classic.str().find("transport"), std::string::npos);
  EXPECT_EQ(classic.str().find("collect_truth"), std::string::npos);
}

}  // namespace
}  // namespace dnsctx
