// Integration tests for the scenario knobs that extend the paper:
// encrypted DNS adoption, live whole-house forwarders, stratified
// profile assignment, dual-stack lookups and junk probes.
#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <stdexcept>

#include "analysis/study.hpp"
#include "scenario/scenario.hpp"

namespace dnsctx::scenario {
namespace {

[[nodiscard]] ScenarioConfig base_config(std::uint64_t seed = 77) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.houses = 10;
  cfg.duration = SimDuration::hours(2);
  cfg.zones.web_sites = 120;
  return cfg;
}

TEST(ScenarioKnobs, ProfileMixIsStratified) {
  ScenarioConfig cfg = base_config();
  cfg.houses = 40;
  Town town{cfg};
  std::map<std::string, int> counts;
  for (const auto& h : town.houses()) ++counts[h.profile];
  // Quotas hold exactly at any size (rounding aside).
  EXPECT_EQ(counts["isp_only"], 5);    // 0.12 * 40 ≈ 5
  EXPECT_EQ(counts["cloudflare"], 2);  // 0.045 * 40 ≈ 2
  EXPECT_EQ(counts["no_isp"], 2);      // 0.05 * 40 = 2
  EXPECT_EQ(counts["mixed"], 31);
}

TEST(ScenarioKnobs, AaaaLookupsAppearInTheDnsLog) {
  Town town{base_config()};
  town.run();
  std::size_t a = 0, aaaa = 0;
  for (const auto& d : town.dataset().dns) {
    if (d.qtype == dns::RrType::kA) ++a;
    if (d.qtype == dns::RrType::kAaaa) ++aaaa;
  }
  EXPECT_GT(aaaa, 0u);
  EXPECT_GT(a, aaaa);  // AAAA races only a fraction of fresh A queries
}

TEST(ScenarioKnobs, JunkProbesYieldNxDomain) {
  Town town{base_config()};
  town.run();
  std::size_t nxdomain = 0;
  for (const auto& d : town.dataset().dns) {
    if (d.answered && d.rcode == dns::Rcode::kNxDomain) ++nxdomain;
  }
  EXPECT_GT(nxdomain, 0u);  // Chromium-style interception probes
}

TEST(ScenarioKnobs, EncryptedDnsShrinksTheVisibleDnsLog) {
  Town plain{base_config(5)};
  plain.run();
  auto cfg = base_config(5);
  cfg.encrypted_dns_device_frac = 0.8;
  Town encrypted{cfg};
  encrypted.run();
  EXPECT_LT(encrypted.dataset().dns.size(), plain.dataset().dns.size() / 2);

  // The encrypted flows surface as port-853 connections instead.
  std::size_t port853 = 0;
  for (const auto& c : encrypted.dataset().conns) port853 += c.resp_port == 853 ? 1 : 0;
  EXPECT_GT(port853, 0u);
}

TEST(ScenarioKnobs, EncryptedDnsInflatesTheNClass) {
  auto cfg = base_config(5);
  cfg.encrypted_dns_device_frac = 0.8;
  Town town{cfg};
  town.run();
  const auto study = analysis::run_study(town.dataset());
  const auto& c = study.classified.counts;
  EXPECT_GT(c.share(c.n), 0.4);  // most conns lose their pairing
}

TEST(ScenarioKnobs, WholeHouseForwarderCollapsesDeviceLookups) {
  Town plain{base_config(9)};
  plain.run();
  auto cfg = base_config(9);
  cfg.whole_house_cache_frac = 1.0;
  Town cached{cfg};
  cached.run();
  // The router answers repeat lookups in-house: fewer visible DNS
  // transactions for the same traffic.
  EXPECT_LT(cached.dataset().dns.size(), plain.dataset().dns.size());
  // And resolution still works: the vast majority of lookups answered.
  std::size_t answered = 0;
  for (const auto& d : cached.dataset().dns) answered += d.answered ? 1 : 0;
  EXPECT_GT(static_cast<double>(answered) /
                static_cast<double>(cached.dataset().dns.size()),
            0.95);
}

TEST(ScenarioKnobs, ActivityScaleScalesTraffic) {
  Town slow{base_config(11)};
  slow.run();
  auto cfg = base_config(11);
  cfg.activity_scale = 2.0;
  Town fast{cfg};
  fast.run();
  EXPECT_GT(fast.dataset().conns.size(),
            static_cast<std::size_t>(1.3 * static_cast<double>(slow.dataset().conns.size())));
}

/// Seed-stability property: the headline shares must not be a lucky
/// seed. Across seeds the class shares stay within broad bands.
class SeedStabilityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedStabilityTest, Table2SharesStayInBand) {
  ScenarioConfig cfg = base_config(GetParam());
  cfg.houses = 15;
  cfg.duration = SimDuration::hours(3);
  Town town{cfg};
  town.run();
  const auto study = analysis::run_study(town.dataset());
  const auto& c = study.classified.counts;
  EXPECT_NEAR(c.share(c.n), 0.075, 0.06);
  EXPECT_NEAR(c.share(c.lc), 0.44, 0.10);
  EXPECT_NEAR(c.share(c.sc) + c.share(c.r), 0.42, 0.10);
  const double no_block = 1.0 - c.share(c.blocked());
  EXPECT_GT(no_block, 0.45);
  EXPECT_LT(no_block, 0.75);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedStabilityTest, ::testing::Values(101u, 202u, 303u));

TEST(ScenarioKnobs, BrokenProfileMixFailsAtBuildTime) {
  // Regression: probabilities that individually pass but jointly claim
  // more than the whole population used to produce a negative "mixed"
  // remainder and a nonsense stratification. The Town constructor must
  // refuse before building anything.
  ScenarioConfig cfg = base_config();
  cfg.mix.isp_only = 0.6;
  cfg.mix.cloudflare = 0.3;
  cfg.mix.no_isp = 0.2;  // sum 1.1 > 1.0
  EXPECT_THROW((Town{cfg}), std::runtime_error);

  cfg = base_config();
  cfg.mix.cloudflare = 1.2;  // single field out of [0, 1]
  EXPECT_THROW((Town{cfg}), std::runtime_error);

  cfg = base_config();
  cfg.mix.opendns_in_mixed = -0.1;
  EXPECT_THROW((Town{cfg}), std::runtime_error);

  // Exactly 1.0 is legal: a town with no mixed houses at all.
  cfg = base_config();
  cfg.houses = 4;
  cfg.mix.isp_only = 0.5;
  cfg.mix.cloudflare = 0.3;
  cfg.mix.no_isp = 0.2;
  EXPECT_NO_THROW((Town{cfg}));
}

TEST(ScenarioKnobs, BrokenTuningFailsAtBuildTime) {
  ScenarioConfig cfg = base_config();
  cfg.tuning.iot_min = 5;
  cfg.tuning.iot_max = 2;  // inverted range
  EXPECT_THROW((Town{cfg}), std::invalid_argument);

  cfg = base_config();
  cfg.tuning.computers_min = 0;  // every house needs a computer
  EXPECT_THROW((Town{cfg}), std::invalid_argument);

  cfg = base_config();
  cfg.tuning.background_poll_scale = 0.0;  // divides a poll period
  EXPECT_THROW((Town{cfg}), std::invalid_argument);

  cfg = base_config();
  cfg.tuning.prefetch_prob = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((Town{cfg}), std::invalid_argument);

  cfg = base_config();
  cfg.tuning.diurnal_hours.fill(0.0);  // would stall every app forever
  EXPECT_THROW((Town{cfg}), std::invalid_argument);
}

TEST(ScenarioKnobs, SingleDeviceHousesRun) {
  // The smallest legal population: one computer, nothing else. (Only
  // isp_only houses can be android-free, so pin the whole mix there.)
  // The traffic layer must not assume TVs/phones/IoT exist.
  ScenarioConfig cfg = base_config();
  cfg.houses = 3;
  cfg.duration = SimDuration::hours(1);
  cfg.mix.isp_only = 1.0;
  cfg.mix.cloudflare = 0.0;
  cfg.mix.no_isp = 0.0;
  cfg.tuning.computers_min = 1;
  cfg.tuning.computers_max = 1;
  cfg.tuning.computers_light = 1;
  cfg.tuning.android_extra_prob = 0.0;
  cfg.tuning.apple_prob = 0.0;
  cfg.tuning.apple_prob_light = 0.0;
  cfg.tuning.tv_prob = 0.0;
  cfg.tuning.tv_prob_light = 0.0;
  cfg.tuning.iot_min = 0;
  cfg.tuning.iot_max = 0;
  cfg.tuning.alarm_prob = 0.0;
  Town town{cfg};
  town.run();
  for (const auto& h : town.houses()) EXPECT_EQ(h.devices, 1u);
  EXPECT_FALSE(town.dataset().dns.empty());
}

}  // namespace
}  // namespace dnsctx::scenario
