// dnsctx — scenario-pack regression tests.
//
// Three contracts:
//   1. Packs are PRESETS, not a new pipeline: a pack that overrides
//      nothing must produce a byte-identical capture to the no-pack
//      default, across seeds {1,7} × shards {1,4}.
//   2. The four shipped packs (examples/packs/) parse, run end to end,
//      and actually shift query composition the way their names claim —
//      junk_storm drives the NXDOMAIN fraction up by an order of
//      magnitude, enterprise_fanout switches the transport default.
//   3. The parser is as strict as the CLI flag layer: every malformed
//      input is rejected with an error naming the source and line.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "capture/logio.hpp"
#include "capture/records.hpp"
#include "scenario/pack.hpp"
#include "scenario/scenario.hpp"
#include "traffic/diurnal.hpp"
#include "util/strings.hpp"

#ifndef DNSCTX_PACK_DIR
#error "DNSCTX_PACK_DIR must be defined by the build"
#endif

namespace dnsctx {
namespace {

[[nodiscard]] std::string pack_path(const std::string& name) {
  return std::string{DNSCTX_PACK_DIR} + "/" + name + ".pack";
}

[[nodiscard]] capture::Dataset simulate(const scenario::ScenarioConfig& cfg) {
  scenario::Town town{cfg};
  town.run();
  return town.harvest();
}

/// Full text serialization of a capture — the same Bro-flavoured logs
/// `dnsctx simulate` writes, so "byte-identical" here means what a user
/// diffing output directories would see.
[[nodiscard]] std::string render(const capture::Dataset& ds) {
  std::ostringstream os;
  capture::write_conn_log(os, ds.conns);
  capture::write_dns_log(os, ds.dns);
  capture::write_encflow_log(os, ds.encflows);
  return os.str();
}

[[nodiscard]] double nxdomain_frac(const capture::Dataset& ds) {
  if (ds.dns.empty()) return 0.0;
  const auto nx = std::count_if(ds.dns.begin(), ds.dns.end(), [](const auto& d) {
    return d.rcode == dns::Rcode::kNxDomain;
  });
  return static_cast<double>(nx) / static_cast<double>(ds.dns.size());
}

// --- contract 1: a defaults-equivalent pack is a no-op --------------------

class PackGolden
    : public testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {};

TEST_P(PackGolden, DefaultsEquivalentPackIsByteIdentical) {
  const auto [seed, shards] = GetParam();
  scenario::ScenarioConfig base;
  base.houses = 10;
  base.duration = SimDuration::hours(2);
  base.seed = seed;
  base.shards = shards;

  scenario::ScenarioConfig packed = base;
  const auto info = scenario::apply_pack(
      "[pack]\nname = noop\ndescription = \"overrides nothing\"\n", "noop.pack",
      &packed);
  EXPECT_EQ(info.name, "noop");
  EXPECT_EQ(packed.pack, "noop");

  const std::string a = render(simulate(base));
  const std::string b = render(simulate(packed));
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "pack with no overrides perturbed the capture (seed " << seed
                  << ", shards " << shards << ")";
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndShards, PackGolden,
    testing::Combine(testing::Values(1ull, 7ull),
                     testing::Values(std::size_t{1}, std::size_t{4})),
    [](const auto& info) {
      return strfmt("seed%llu_shards%zu",
                    static_cast<unsigned long long>(std::get<0>(info.param)),
                    std::get<1>(info.param));
    });

// --- contract 2: the shipped packs parse, run, and shift composition -----

TEST(ShippedPacks, AllParseAndRunEndToEnd) {
  for (const std::string name :
       {"iot_heavy", "mobile_streaming", "junk_storm", "enterprise_fanout"}) {
    scenario::ScenarioConfig cfg;
    cfg.houses = 4;
    cfg.duration = SimDuration::hours(1);
    cfg.seed = 3;
    const auto info = scenario::apply_pack_file(pack_path(name), &cfg);
    EXPECT_EQ(info.name, name);
    EXPECT_FALSE(info.description.empty()) << name;
    EXPECT_EQ(cfg.pack, name);
    const auto ds = simulate(cfg);
    EXPECT_FALSE(ds.conns.empty()) << name << " produced no connections";
    if (cfg.transport == netsim::Transport::kDo53) {
      EXPECT_FALSE(ds.dns.empty()) << name << " produced no DNS transactions";
    } else {
      // Encrypted transports hide queries from the tap: the capture
      // carries encrypted resolver flows instead of a DNS log.
      EXPECT_FALSE(ds.encflows.empty()) << name << " produced no encrypted flows";
    }
  }
}

TEST(ShippedPacks, JunkStormDrivesNxdomainFractionUp) {
  scenario::ScenarioConfig base;
  base.houses = 8;
  base.duration = SimDuration::hours(2);
  base.seed = 5;
  const double default_frac = nxdomain_frac(simulate(base));

  scenario::ScenarioConfig storm = base;
  scenario::apply_pack_file(pack_path("junk_storm"), &storm);
  const double storm_frac = nxdomain_frac(simulate(storm));

  // Junk names miss the ZoneDb, so the storm's NXDOMAIN share must be
  // both large in absolute terms and far above the default composition.
  EXPECT_GT(storm_frac, 0.05);
  EXPECT_GT(storm_frac, 3.0 * default_frac + 0.01)
      << "default=" << default_frac << " storm=" << storm_frac;
}

TEST(ShippedPacks, IotHeavySetsFlatDiurnalAndPopulation) {
  scenario::ScenarioConfig cfg;
  scenario::apply_pack_file(pack_path("iot_heavy"), &cfg);
  for (const double h : cfg.tuning.diurnal_hours) EXPECT_EQ(h, 1.0);
  EXPECT_EQ(cfg.tuning.iot_min, 3u);
  EXPECT_EQ(cfg.tuning.iot_max, 8u);
  EXPECT_EQ(cfg.tuning.computers_max, 1u);
  EXPECT_DOUBLE_EQ(cfg.tuning.background_poll_scale, 3.0);
}

TEST(ShippedPacks, MobileStreamingWidensCdnUniverse) {
  scenario::ScenarioConfig cfg;
  scenario::apply_pack_file(pack_path("mobile_streaming"), &cfg);
  EXPECT_EQ(cfg.zones.video_sites, 60u);
  EXPECT_EQ(cfg.zones.cdn_domains, 90u);
  EXPECT_EQ(cfg.zones.edges_per_cdn, 8u);
  EXPECT_EQ(cfg.tuning.web.cdn_min, 4u);
  EXPECT_EQ(cfg.tuning.web.cdn_max, 8u);
  EXPECT_DOUBLE_EQ(cfg.tuning.video_session_scale, 2.5);
}

TEST(ShippedPacks, EnterpriseFanoutSetsTransportMixAndOfficeHours) {
  scenario::ScenarioConfig cfg;
  scenario::apply_pack_file(pack_path("enterprise_fanout"), &cfg);
  EXPECT_EQ(cfg.transport, netsim::Transport::kDoT);
  EXPECT_DOUBLE_EQ(cfg.mix.isp_only, 0.7);
  EXPECT_EQ(cfg.tuning.web.links_min, 8u);
  EXPECT_EQ(cfg.tuning.web.links_max, 18u);
  EXPECT_EQ(cfg.tuning.iot_max, 0u);
  EXPECT_EQ(cfg.tuning.diurnal_hours, traffic::kOfficeHours);
  EXPECT_FALSE(cfg.faults.has_resolver_faults());
}

TEST(ShippedPacks, JunkStormCarriesAFaultPlanDefault) {
  scenario::ScenarioConfig cfg;
  scenario::apply_pack_file(pack_path("junk_storm"), &cfg);
  EXPECT_TRUE(cfg.faults.has_resolver_faults());
  EXPECT_DOUBLE_EQ(cfg.tuning.junk_queries_per_hour, 180.0);
  EXPECT_DOUBLE_EQ(cfg.dead_ntp_frac, 0.3);
}

// --- contract 3: strict rejection with source + line ----------------------

/// Applies `text` and asserts the thrown message contains every needle —
/// in particular the synthetic source name and a "line N" locator.
void expect_reject(const std::string& text,
                   const std::vector<std::string>& needles) {
  scenario::ScenarioConfig cfg;
  try {
    scenario::apply_pack(text, "bad.pack", &cfg);
    FAIL() << "expected rejection of:\n" << text;
  } catch (const std::exception& e) {
    const std::string msg = e.what();
    for (const auto& needle : needles) {
      EXPECT_NE(msg.find(needle), std::string::npos)
          << "message '" << msg << "' lacks '" << needle << "'";
    }
  }
}

TEST(PackParser, RejectsStructuralErrors) {
  expect_reject("[pack\nname = x\n", {"bad.pack line 1", "malformed section"});
  expect_reject("[nope]\n", {"bad.pack line 1", "unknown section '[nope]'"});
  expect_reject("name = x\n", {"bad.pack line 1", "before any [section]"});
  expect_reject("[pack]\nname = x\njust some words\n",
                {"bad.pack line 3", "expected key = value"});
  expect_reject("[pack]\nname = x\n[apps]\nbogus_knob = 1\n",
                {"bad.pack line 4", "unknown key 'bogus_knob'", "[apps]"});
  expect_reject("[apps]\nprefetch_prob = 0.5\n",
                {"bad.pack", "missing required [pack] name"});
  expect_reject("[pack]\nname = \"unterminated\n",
                {"bad.pack line 2", "key 'name'", "unterminated"});
  expect_reject("[pack]\nname = bad/name\n", {"bad.pack line 2", "[A-Za-z0-9._-]"});
}

TEST(PackParser, RejectsMalformedNumbersWithLocation) {
  const std::string head = "[pack]\nname = x\n[apps]\n";
  expect_reject(head + "conncheck_scale = 1.5x\n",
                {"bad.pack line 4", "key 'conncheck_scale'", "bad number '1.5x'"});
  expect_reject(head + "conncheck_scale = 1e999\n",
                {"bad.pack line 4", "out of range"});
  expect_reject(head + "conncheck_scale = inf\n", {"bad.pack line 4", "finite"});
  expect_reject(head + "junk_queries_per_hour = nan\n",
                {"bad.pack line 4", "finite"});
  expect_reject(head + "prefetch_prob = 1.2\n",
                {"bad.pack line 4", "must be in [0, 1]"});
  expect_reject(head + "background_poll_scale = 0\n",
                {"bad.pack line 4", "must be > 0"});
  expect_reject(head + "junk_queries_per_hour = -3\n",
                {"bad.pack line 4", "must be >= 0"});
  expect_reject("[pack]\nname = x\n[zones]\nweb_sites = 0\n",
                {"bad.pack line 4", "must be >= 1"});
  expect_reject("[pack]\nname = x\n[scenario]\nstart_hour = 24\n",
                {"bad.pack line 4", "start_hour must be in [0, 23]"});
}

TEST(PackParser, RejectsBadEnumsAndTables) {
  const std::string head = "[pack]\nname = x\n";
  expect_reject(head + "[diurnal]\nprofile = weekend\n",
                {"bad.pack line 4", "unknown diurnal profile 'weekend'"});
  expect_reject(head + "[diurnal]\nhours = 1,2,3\n",
                {"bad.pack line 4", "exactly 24 hour values"});
  expect_reject(head + "[transport]\ndefault = carrier-pigeon\n",
                {"bad.pack line 4", "unknown transport"});
  expect_reject(head + "[faults]\nplan = \"loss=2.0\"\n",
                {"bad.pack line 4", "key 'plan'"});
}

TEST(PackParser, RejectsCrossKeyViolationsAtEndOfFile) {
  // Mix probabilities individually valid but jointly claiming > 100%.
  expect_reject(
      "[pack]\nname = x\n[mix]\nisp_only = 0.6\ncloudflare = 0.3\nno_isp = 0.2\n",
      {"bad.pack", "remainder"});
  // Fanout min > max only detectable once both keys are read.
  expect_reject("[pack]\nname = x\n[web]\ncdn_min = 9\ncdn_max = 2\n",
                {"bad.pack"});
  expect_reject("[pack]\nname = x\n[devices]\niot_min = 5\niot_max = 1\n",
                {"bad.pack"});
}

TEST(PackParser, MissingFileNamesThePath) {
  scenario::ScenarioConfig cfg;
  try {
    scenario::apply_pack_file("/nonexistent/dir/nope.pack", &cfg);
    FAIL() << "expected missing-file error";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string{e.what()}.find("/nonexistent/dir/nope.pack"),
              std::string::npos);
  }
}

TEST(PackParser, AcceptsCommentsWhitespaceAndQuotedStrings) {
  scenario::ScenarioConfig cfg;
  const auto info = scenario::apply_pack(
      "# leading comment\n"
      "; alt comment style\n"
      "  [pack]  \n"
      "  name   =   tidy-1.0_x  \n"
      "description = \"spaces; and [brackets] = fine inside quotes\"\n"
      "\n"
      "[apps]\n"
      "prefetch_prob = 0.25  \n",
      "ok.pack", &cfg);
  EXPECT_EQ(info.name, "tidy-1.0_x");
  EXPECT_EQ(info.description, "spaces; and [brackets] = fine inside quotes");
  EXPECT_DOUBLE_EQ(cfg.tuning.prefetch_prob, 0.25);
}

}  // namespace
}  // namespace dnsctx
