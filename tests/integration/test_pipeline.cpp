// End-to-end pipeline tests: run_study over a calibrated simulation and
// check the paper's headline results hold in shape (loose bands — exact
// values are the benches' job; these guard against regressions that
// break the reproduction qualitatively).
#include <gtest/gtest.h>

#include "analysis/report.hpp"
#include "cachesim/refresh.hpp"
#include "cachesim/whole_house.hpp"
#include "scenario/scenario.hpp"

namespace dnsctx::scenario {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioConfig cfg;
    cfg.seed = 42;
    cfg.houses = 25;
    cfg.duration = SimDuration::hours(5);
    town = new Town{cfg};
    town->run();
    study = new analysis::Study{analysis::run_study(town->dataset())};
  }
  static void TearDownTestSuite() {
    delete study;
    delete town;
    town = nullptr;
    study = nullptr;
  }
  static Town* town;
  static analysis::Study* study;
};

Town* PipelineTest::town = nullptr;
analysis::Study* PipelineTest::study = nullptr;

TEST_F(PipelineTest, Table2SharesInPaperBands) {
  const auto& c = study->classified.counts;
  EXPECT_NEAR(c.share(c.n), 0.072, 0.05);    // paper 7.2%
  EXPECT_NEAR(c.share(c.lc), 0.429, 0.10);   // paper 42.9%
  EXPECT_NEAR(c.share(c.p), 0.078, 0.05);    // paper 7.8%
  EXPECT_NEAR(c.share(c.sc), 0.263, 0.10);   // paper 26.3%
  EXPECT_NEAR(c.share(c.r), 0.157, 0.08);    // paper 15.7%
}

TEST_F(PipelineTest, MajorityOfConnectionsDoNotBlock) {
  const auto& c = study->classified.counts;
  const double no_block = c.share(c.n) + c.share(c.lc) + c.share(c.p);
  EXPECT_GT(no_block, 0.5);  // the paper's headline: ~58%
  EXPECT_LT(no_block, 0.7);
}

TEST_F(PipelineTest, SharedCacheServesMajorityOfBlockedLookups) {
  EXPECT_GT(study->classified.counts.shared_cache_hit_rate(), 0.5);  // paper 62.6%
  EXPECT_LT(study->classified.counts.shared_cache_hit_rate(), 0.8);
}

TEST_F(PipelineTest, Table1LocalDominates) {
  ASSERT_FALSE(study->table1.empty());
  const auto* local = &study->table1[0];
  ASSERT_EQ(local->platform, "Local");
  EXPECT_GT(local->pct_lookups, 60.0);
  EXPECT_GT(local->pct_houses, 80.0);
  double total_lookup_share = 0;
  for (const auto& row : study->table1) total_lookup_share += row.pct_lookups;
  EXPECT_LE(total_lookup_share, 100.01);
}

TEST_F(PipelineTest, SignificantDelayShareIsSmall) {
  // Paper: only 3.6% of ALL connections pay a significant DNS cost.
  EXPECT_LT(study->performance.significant_overall, 0.10);
  EXPECT_GT(study->performance.significant_overall, 0.005);
}

TEST_F(PipelineTest, LookupDelaysAreModest) {
  const auto& p = study->performance;
  ASSERT_FALSE(p.lookup_ms_all.empty());
  EXPECT_LT(p.lookup_ms_all.median(), 25.0);          // paper 8.5 ms
  EXPECT_LT(p.frac_lookup_over_ms(100.0), 0.10);      // paper 3.3%
  EXPECT_LT(p.frac_contrib_over_pct(1.0), 0.45);      // paper 20%
  EXPECT_GT(p.frac_contrib_over_pct(1.0),
            p.frac_contrib_over_pct(10.0));           // monotone by construction
}

TEST_F(PipelineTest, RContributesMoreThanSC) {
  const auto& p = study->performance;
  ASSERT_FALSE(p.contrib_sc.empty());
  ASSERT_FALSE(p.contrib_r.empty());
  EXPECT_GT(p.contrib_r.fraction_above(1.0), p.contrib_sc.fraction_above(1.0));
  EXPECT_GT(p.lookup_ms_r.median(), p.lookup_ms_sc.median());
}

TEST_F(PipelineTest, PlatformHitRateOrderingMatchesPaper) {
  double local = -1, google = -1, opendns = -1, cloudflare = -1;
  for (const auto& p : study->platforms) {
    if (p.platform == "Local") local = p.hit_rate();
    if (p.platform == "Google") google = p.hit_rate();
    if (p.platform == "OpenDNS") opendns = p.hit_rate();
    if (p.platform == "Cloudflare") cloudflare = p.hit_rate();
  }
  ASSERT_GE(local, 0.0);
  ASSERT_GE(google, 0.0);
  // Paper order: Cloudflare 83.6 > Local 71.2 > OpenDNS 58.8 > Google 23.
  EXPECT_GT(cloudflare, local);
  EXPECT_GT(local, opendns);
  EXPECT_GT(opendns, google);
  EXPECT_LT(google, 0.45);
}

TEST_F(PipelineTest, GoogleConnCheckArtifactPresent) {
  for (const auto& p : study->platforms) {
    if (p.platform != "Google") continue;
    EXPECT_GT(p.conncheck_frac(), 0.08);  // paper: 23.5% of Google conns
    ASSERT_FALSE(p.throughput_bps.empty());
    ASSERT_FALSE(p.throughput_bps_filtered.empty());
    // Removing the artifact raises the low quartile.
    EXPECT_GE(p.throughput_bps_filtered.quantile(0.25), p.throughput_bps.quantile(0.25));
  }
}

TEST_F(PipelineTest, WholeHouseCacheHelpsBlockedClasses) {
  const auto result =
      cachesim::simulate_whole_house(town->dataset(), study->pairing, study->classified);
  EXPECT_GT(result.moved_frac_of_all(), 0.02);  // paper: 9.8%
  EXPECT_LT(result.moved_frac_of_all(), 0.25);
  EXPECT_GT(result.sc_moved_frac(), 0.05);      // paper: ~22%
  EXPECT_GT(result.r_moved_frac(), 0.05);       // paper: ~25%
}

TEST_F(PipelineTest, RefreshSimulatorReproducesTable3Shape) {
  cachesim::RefreshConfig standard;
  const auto std_result = cachesim::simulate_refresh(town->dataset(), study->pairing, standard);
  cachesim::RefreshConfig refresh;
  refresh.policy = cachesim::RefreshPolicy::kRefreshAll;
  const auto ref_result = cachesim::simulate_refresh(town->dataset(), study->pairing, refresh);

  EXPECT_GT(std_result.conn_hit_rate(), 0.4);   // paper: 61.0%
  EXPECT_LT(std_result.conn_hit_rate(), 0.8);
  // Paper: 96.6% over a week; shorter traces pay proportionally more
  // first-touch misses, so the band is wider here.
  EXPECT_GT(ref_result.conn_hit_rate(), 0.8);
  EXPECT_GT(ref_result.conn_hit_rate(), std_result.conn_hit_rate() + 0.2);
  // Refresh costs at least an order of magnitude more lookups (paper 144x).
  EXPECT_GT(static_cast<double>(ref_result.upstream_lookups),
            10.0 * static_cast<double>(std_result.upstream_lookups));
}

TEST_F(PipelineTest, ReportsRenderWithoutError) {
  const auto& ds = town->dataset();
  EXPECT_FALSE(analysis::format_table1(*study).empty());
  EXPECT_FALSE(analysis::format_table2(*study, ds).empty());
  EXPECT_FALSE(analysis::format_fig1(*study).empty());
  EXPECT_FALSE(analysis::format_fig2(*study).empty());
  EXPECT_FALSE(analysis::format_fig3(*study).empty());
}

}  // namespace
}  // namespace dnsctx::scenario
