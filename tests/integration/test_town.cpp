// Integration tests: the full simulated neighborhood end to end.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "capture/logio.hpp"
#include "scenario/scenario.hpp"

namespace dnsctx::scenario {
namespace {

[[nodiscard]] ScenarioConfig small_town(std::uint64_t seed = 42) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.houses = 8;
  cfg.duration = SimDuration::hours(2);
  cfg.zones.web_sites = 120;
  cfg.zones.cdn_domains = 15;
  cfg.zones.ad_domains = 20;
  cfg.zones.tracker_domains = 12;
  cfg.zones.api_domains = 25;
  cfg.zones.video_sites = 8;
  cfg.zones.other_names = 20;
  return cfg;
}

class TownTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    town = new Town{small_town()};
    town->run();
  }
  static void TearDownTestSuite() {
    delete town;
    town = nullptr;
  }
  static Town* town;
};

Town* TownTest::town = nullptr;

TEST_F(TownTest, ProducesSubstantialTraffic) {
  const auto& ds = town->dataset();
  EXPECT_GT(ds.conns.size(), 2'000u);
  EXPECT_GT(ds.dns.size(), 1'000u);
}

TEST_F(TownTest, ConnLogIsTimestampSorted) {
  const auto& ds = town->dataset();
  for (std::size_t i = 1; i < ds.conns.size(); ++i) {
    EXPECT_LE(ds.conns[i - 1].start, ds.conns[i].start);
  }
  for (std::size_t i = 1; i < ds.dns.size(); ++i) {
    EXPECT_LE(ds.dns[i - 1].ts, ds.dns[i].ts);
  }
}

TEST_F(TownTest, AllConnectionsOriginateFromHouses) {
  std::set<std::uint32_t> house_ips;
  for (const auto& h : town->houses()) house_ips.insert(h.external_ip.to_u32());
  for (const auto& c : town->dataset().conns) {
    EXPECT_TRUE(house_ips.contains(c.orig_ip.to_u32()))
        << "conn from non-house " << c.orig_ip.to_string();
    EXPECT_FALSE(house_ips.contains(c.resp_ip.to_u32()));
  }
  for (const auto& d : town->dataset().dns) {
    EXPECT_TRUE(house_ips.contains(d.client_ip.to_u32()));
  }
}

TEST_F(TownTest, NoPort53ConnRecords) {
  for (const auto& c : town->dataset().conns) {
    EXPECT_NE(c.resp_port, 53);
    EXPECT_NE(c.orig_port, 53);
  }
}

TEST_F(TownTest, NoDoTTraffic) {
  // §5.1's check: nothing on the DoT port in the N set (or anywhere).
  for (const auto& c : town->dataset().conns) {
    EXPECT_NE(c.resp_port, 853);
  }
}

TEST_F(TownTest, DnsDurationsArePhysical) {
  // Every answered lookup takes at least the resolver round trip
  // (≈2 ms for the ISP) and a bounded worst case.
  for (const auto& d : town->dataset().dns) {
    if (!d.answered) continue;
    EXPECT_GT(d.duration, SimDuration::from_ms(0.5));
    EXPECT_LT(d.duration, SimDuration::sec(30));
  }
}

TEST_F(TownTest, AnsweredLookupsCarryARecords) {
  std::size_t answered = 0;
  std::size_t aaaa = 0;
  for (const auto& d : town->dataset().dns) {
    if (!d.answered) continue;
    ++answered;
    if (d.qtype == dns::RrType::kAaaa) {
      ++aaaa;  // v6 rdata is not an A record; the log keeps A answers only
      continue;
    }
    if (d.rcode == dns::Rcode::kNoError) {
      EXPECT_FALSE(d.answers.empty()) << d.query;
      for (const auto& a : d.answers) EXPECT_FALSE(a.addr.is_unspecified());
    }
  }
  EXPECT_GT(answered, 0u);
  EXPECT_GT(aaaa, 0u);  // dual-stack hosts race AAAA lookups
}

TEST_F(TownTest, QueriesAreMostlyAnswered) {
  std::size_t answered = 0;
  const auto& ds = town->dataset();
  for (const auto& d : ds.dns) answered += d.answered ? 1 : 0;
  EXPECT_GT(static_cast<double>(answered) / static_cast<double>(ds.dns.size()), 0.98);
}

TEST_F(TownTest, TcpConnectionsMostlyCompleteNormally) {
  std::size_t sf = 0, tcp_total = 0;
  for (const auto& c : town->dataset().conns) {
    if (c.proto != Proto::kTcp) continue;
    ++tcp_total;
    sf += c.state == capture::ConnState::kSf ? 1 : 0;
  }
  ASSERT_GT(tcp_total, 0u);
  EXPECT_GT(static_cast<double>(sf) / static_cast<double>(tcp_total), 0.7);
}

TEST_F(TownTest, DeadNtpProducesFailedConns) {
  std::size_t dead_ntp = 0;
  for (const auto& c : town->dataset().conns) {
    if (c.resp_port == 123 && c.resp_bytes == 0) ++dead_ntp;
  }
  EXPECT_GT(dead_ntp, 0u);  // the §5.1 hard-coded dead server story
}

TEST_F(TownTest, HouseInventoryMatchesConfig) {
  EXPECT_EQ(town->houses().size(), town->config().houses);
  for (const auto& h : town->houses()) {
    EXPECT_GE(h.devices, 1u);
    EXPECT_FALSE(h.profile.empty());
  }
}

TEST_F(TownTest, GroundTruthCountersPopulated) {
  const auto& t = town->ground_truth();
  EXPECT_GT(t.fetches, 0u);
  EXPECT_GT(t.fetch_cache_hits, 0u);
  EXPECT_GT(t.fetch_blocked, 0u);
  EXPECT_GT(t.prefetches, 0u);
  EXPECT_GT(t.no_dns_conns, 0u);
  EXPECT_LE(t.fetch_cache_hits + t.fetch_blocked, t.fetches);
}

TEST_F(TownTest, DatasetSurvivesLogRoundTrip) {
  const auto& ds = town->dataset();
  std::stringstream conn_ss, dns_ss;
  capture::write_conn_log(conn_ss, ds.conns);
  capture::write_dns_log(dns_ss, ds.dns);
  const auto conns = capture::read_conn_log(conn_ss);
  const auto dns = capture::read_dns_log(dns_ss);
  ASSERT_EQ(conns.size(), ds.conns.size());
  ASSERT_EQ(dns.size(), ds.dns.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(500, conns.size()); ++i) {
    EXPECT_EQ(conns[i].start, ds.conns[i].start);
    EXPECT_EQ(conns[i].orig_bytes, ds.conns[i].orig_bytes);
  }
}

TEST(TownDeterminism, SameSeedSameDataset) {
  Town a{small_town(7)};
  a.run();
  Town b{small_town(7)};
  b.run();
  ASSERT_EQ(a.dataset().conns.size(), b.dataset().conns.size());
  ASSERT_EQ(a.dataset().dns.size(), b.dataset().dns.size());
  for (std::size_t i = 0; i < a.dataset().conns.size(); ++i) {
    const auto& ca = a.dataset().conns[i];
    const auto& cb = b.dataset().conns[i];
    EXPECT_EQ(ca.start, cb.start);
    EXPECT_EQ(ca.orig_ip, cb.orig_ip);
    EXPECT_EQ(ca.resp_ip, cb.resp_ip);
    EXPECT_EQ(ca.orig_bytes, cb.orig_bytes);
    EXPECT_EQ(ca.resp_bytes, cb.resp_bytes);
  }
}

TEST(TownDeterminism, DifferentSeedsDiffer) {
  Town a{small_town(1)};
  a.run();
  Town b{small_town(2)};
  b.run();
  EXPECT_NE(a.dataset().conns.size(), b.dataset().conns.size());
}

TEST(TownIncremental, RunForAndHarvest) {
  Town t{small_town(9)};
  t.run_for(SimDuration::min(30));
  t.run_for(SimDuration::min(30));
  const auto ds = t.harvest();
  EXPECT_GT(ds.conns.size(), 100u);
  EXPECT_EQ(t.sim().now(), SimTime::origin() + SimDuration::hours(1));
}

}  // namespace
}  // namespace dnsctx::scenario
