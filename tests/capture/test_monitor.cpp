// Unit tests for the Bro-style passive monitor, fed hand-crafted packet
// observations.
#include <gtest/gtest.h>

#include "capture/monitor.hpp"
#include "dns/codec.hpp"

namespace dnsctx::capture {
namespace {

constexpr Ipv4Addr kHouse{100, 66, 1, 1};
constexpr Ipv4Addr kServer{34, 1, 1, 1};
constexpr Ipv4Addr kResolver{100, 66, 250, 1};

[[nodiscard]] netsim::Packet tcp(Ipv4Addr src, std::uint16_t sport, Ipv4Addr dst,
                                 std::uint16_t dport, netsim::TcpFlags flags,
                                 std::uint64_t payload = 0) {
  netsim::Packet p;
  p.src_ip = src;
  p.src_port = sport;
  p.dst_ip = dst;
  p.dst_port = dport;
  p.proto = Proto::kTcp;
  p.tcp = flags;
  p.payload_bytes = payload;
  return p;
}

[[nodiscard]] netsim::Packet udp(Ipv4Addr src, std::uint16_t sport, Ipv4Addr dst,
                                 std::uint16_t dport, std::uint64_t payload = 0) {
  netsim::Packet p;
  p.src_ip = src;
  p.src_port = sport;
  p.dst_ip = dst;
  p.dst_port = dport;
  p.proto = Proto::kUdp;
  p.payload_bytes = payload;
  return p;
}

[[nodiscard]] SimTime at_ms(std::int64_t ms) { return SimTime::origin() + SimDuration::ms(ms); }

class MonitorTest : public ::testing::Test {
 protected:
  Monitor monitor;

  void play_handshake_and_close(std::int64_t t0_ms, std::uint64_t up = 500,
                                std::uint64_t down = 10'000, std::int64_t close_ms = 1'000) {
    monitor.observe(at_ms(t0_ms), tcp(kHouse, 10'000, kServer, 443, {.syn = true}));
    monitor.observe(at_ms(t0_ms + 10), tcp(kServer, 443, kHouse, 10'000, {.syn = true, .ack = true}));
    monitor.observe(at_ms(t0_ms + 20), tcp(kHouse, 10'000, kServer, 443, {.ack = true}, up));
    monitor.observe(at_ms(t0_ms + 100), tcp(kServer, 443, kHouse, 10'000, {.ack = true}, down));
    monitor.observe(at_ms(t0_ms + close_ms),
                    tcp(kServer, 443, kHouse, 10'000, {.ack = true, .fin = true}));
    monitor.observe(at_ms(t0_ms + close_ms + 10),
                    tcp(kHouse, 10'000, kServer, 443, {.ack = true, .fin = true}));
  }
};

TEST_F(MonitorTest, NormalTcpConnectionSummarised) {
  play_handshake_and_close(0);
  const Dataset ds = monitor.harvest(at_ms(5'000));
  ASSERT_EQ(ds.conns.size(), 1u);
  const ConnRecord& c = ds.conns[0];
  EXPECT_EQ(c.orig_ip, kHouse);
  EXPECT_EQ(c.resp_ip, kServer);
  EXPECT_EQ(c.orig_port, 10'000);
  EXPECT_EQ(c.resp_port, 443);
  EXPECT_EQ(c.state, ConnState::kSf);
  EXPECT_EQ(c.orig_bytes, 500u);
  EXPECT_EQ(c.resp_bytes, 10'000u);
  EXPECT_EQ(c.start, at_ms(0));
  EXPECT_EQ(c.duration, SimDuration::ms(1'010));
}

TEST_F(MonitorTest, SynOnlyBecomesS0AfterTimeout) {
  monitor.observe(at_ms(0), tcp(kHouse, 10'000, kServer, 123, {.syn = true}));
  monitor.observe(at_ms(3'000), tcp(kHouse, 10'000, kServer, 123, {.syn = true}));  // retx
  const Dataset ds = monitor.harvest(at_ms(120'000));
  ASSERT_EQ(ds.conns.size(), 1u);
  EXPECT_EQ(ds.conns[0].state, ConnState::kS0);
  EXPECT_EQ(ds.conns[0].resp_bytes, 0u);
}

TEST_F(MonitorTest, SynRstIsRejected) {
  monitor.observe(at_ms(0), tcp(kHouse, 10'000, kServer, 443, {.syn = true}));
  monitor.observe(at_ms(10), tcp(kServer, 443, kHouse, 10'000, {.rst = true}));
  const Dataset ds = monitor.harvest(at_ms(1'000));
  ASSERT_EQ(ds.conns.size(), 1u);
  EXPECT_EQ(ds.conns[0].state, ConnState::kRej);
}

TEST_F(MonitorTest, EstablishedThenRst) {
  monitor.observe(at_ms(0), tcp(kHouse, 10'000, kServer, 443, {.syn = true}));
  monitor.observe(at_ms(10), tcp(kServer, 443, kHouse, 10'000, {.syn = true, .ack = true}));
  monitor.observe(at_ms(500), tcp(kHouse, 10'000, kServer, 443, {.rst = true}));
  const Dataset ds = monitor.harvest(at_ms(1'000));
  ASSERT_EQ(ds.conns.size(), 1u);
  EXPECT_EQ(ds.conns[0].state, ConnState::kRst);
}

TEST_F(MonitorTest, HalfCloseAloneDoesNotFinalise) {
  monitor.observe(at_ms(0), tcp(kHouse, 10'000, kServer, 443, {.syn = true}));
  monitor.observe(at_ms(10), tcp(kServer, 443, kHouse, 10'000, {.syn = true, .ack = true}));
  monitor.observe(at_ms(100), tcp(kServer, 443, kHouse, 10'000, {.ack = true, .fin = true}));
  // Harvest before any timeout: the flow is still open and flushed as OTH.
  const Dataset ds = monitor.harvest(at_ms(200));
  ASSERT_EQ(ds.conns.size(), 1u);
  EXPECT_EQ(ds.conns[0].state, ConnState::kOth);
}

TEST_F(MonitorTest, ConcurrentConnectionsTrackedSeparately) {
  monitor.observe(at_ms(0), tcp(kHouse, 10'000, kServer, 443, {.syn = true}));
  monitor.observe(at_ms(1), tcp(kHouse, 10'001, kServer, 443, {.syn = true}));
  monitor.observe(at_ms(10), tcp(kServer, 443, kHouse, 10'000, {.syn = true, .ack = true}));
  monitor.observe(at_ms(11), tcp(kServer, 443, kHouse, 10'001, {.syn = true, .ack = true}));
  const Dataset ds = monitor.harvest(at_ms(2'000));
  EXPECT_EQ(ds.conns.size(), 2u);
}

TEST_F(MonitorTest, UdpFlowClosesAfterInactivity) {
  monitor.observe(at_ms(0), udp(kHouse, 50'000, kServer, 9'999, 100));
  monitor.observe(at_ms(30'000), udp(kServer, 9'999, kHouse, 50'000, 400));
  monitor.observe(at_ms(59'000), udp(kHouse, 50'000, kServer, 9'999, 100));
  // 60 s of silence, then more packets: a NEW flow.
  monitor.observe(at_ms(200'000), udp(kHouse, 50'000, kServer, 9'999, 50));
  const Dataset ds = monitor.harvest(at_ms(400'000));
  ASSERT_EQ(ds.conns.size(), 2u);
  EXPECT_EQ(ds.conns[0].orig_bytes, 200u);
  EXPECT_EQ(ds.conns[0].resp_bytes, 400u);
  EXPECT_EQ(ds.conns[0].duration, SimDuration::ms(59'000));
  EXPECT_EQ(ds.conns[1].orig_bytes, 50u);
}

TEST_F(MonitorTest, DnsTransactionMatched) {
  const auto query = dns::DnsMessage::query(0xbeef, dns::DomainName::must("www.example.com"));
  auto qp = udp(kHouse, 40'000, kResolver, 53);
  qp.dns = dns::DnsPayload::from_message(query);
  monitor.observe(at_ms(100), qp);

  auto resp = dns::DnsMessage::response(
      query, {dns::ResourceRecord::a(dns::DomainName::must("www.example.com"),
                                     Ipv4Addr{93, 184, 216, 34}, 300)});
  auto rp = udp(kResolver, 53, kHouse, 40'000);
  rp.dns = dns::DnsPayload::from_message(resp);
  monitor.observe(at_ms(108), rp);

  const Dataset ds = monitor.harvest(at_ms(1'000));
  EXPECT_TRUE(ds.conns.empty());  // port-53 flows are not conn records
  ASSERT_EQ(ds.dns.size(), 1u);
  const DnsRecord& d = ds.dns[0];
  EXPECT_EQ(d.query, "www.example.com");
  EXPECT_EQ(d.client_ip, kHouse);
  EXPECT_EQ(d.resolver_ip, kResolver);
  EXPECT_TRUE(d.answered);
  EXPECT_EQ(d.duration, SimDuration::ms(8));
  ASSERT_EQ(d.answers.size(), 1u);
  EXPECT_EQ(d.answers[0].ttl, 300u);
  EXPECT_EQ(d.min_ttl(), 300u);
  EXPECT_EQ(d.expires_at(), at_ms(108) + SimDuration::sec(300));
}

TEST_F(MonitorTest, UnansweredDnsFlushedAsUnanswered) {
  const auto query = dns::DnsMessage::query(1, dns::DomainName::must("lost.example.com"));
  auto qp = udp(kHouse, 40'000, kResolver, 53);
  qp.dns = dns::DnsPayload::from_message(query);
  monitor.observe(at_ms(0), qp);
  const Dataset ds = monitor.harvest(at_ms(60'000));
  ASSERT_EQ(ds.dns.size(), 1u);
  EXPECT_FALSE(ds.dns[0].answered);
  EXPECT_TRUE(ds.dns[0].answers.empty());
}

TEST_F(MonitorTest, DnsRetransmissionKeepsFirstTimestamp) {
  const auto query = dns::DnsMessage::query(7, dns::DomainName::must("slow.example.com"));
  auto qp = udp(kHouse, 40'000, kResolver, 53);
  qp.dns = dns::DnsPayload::from_wire(dns::encode(query));
  monitor.observe(at_ms(0), qp);
  monitor.observe(at_ms(3'000), qp);  // retransmission

  auto resp = dns::DnsMessage::response(
      query, {dns::ResourceRecord::a(dns::DomainName::must("slow.example.com"),
                                     Ipv4Addr{1, 1, 1, 1}, 60)});
  auto rp = udp(kResolver, 53, kHouse, 40'000);
  rp.dns = dns::DnsPayload::from_message(resp);
  monitor.observe(at_ms(3'050), rp);

  const Dataset ds = monitor.harvest(at_ms(60'000));
  ASSERT_EQ(ds.dns.size(), 1u);
  EXPECT_EQ(ds.dns[0].ts, at_ms(0));
  EXPECT_EQ(ds.dns[0].duration, SimDuration::ms(3'050));  // includes the retry wait
}

TEST_F(MonitorTest, MalformedDnsCounted) {
  auto qp = udp(kHouse, 40'000, kResolver, 53);
  qp.dns = dns::DnsPayload::from_wire({1, 2, 3});
  monitor.observe(at_ms(0), qp);
  EXPECT_EQ(monitor.malformed_dns(), 1u);
  const Dataset ds = monitor.harvest(at_ms(1'000));
  EXPECT_TRUE(ds.dns.empty());
}

TEST_F(MonitorTest, UnsolicitedDnsResponseIgnored) {
  const auto query = dns::DnsMessage::query(9, dns::DomainName::must("x.example.com"));
  auto resp = dns::DnsMessage::response(query, {});
  auto rp = udp(kResolver, 53, kHouse, 40'000);
  rp.dns = dns::DnsPayload::from_message(resp);
  monitor.observe(at_ms(0), rp);
  const Dataset ds = monitor.harvest(at_ms(1'000));
  EXPECT_TRUE(ds.dns.empty());
}

TEST_F(MonitorTest, HarvestSortsByTimestamp) {
  // Second conn starts first but closes later; order in log must be by start.
  monitor.observe(at_ms(50), tcp(kHouse, 10'001, kServer, 443, {.syn = true}));
  monitor.observe(at_ms(60), tcp(kServer, 443, kHouse, 10'001, {.syn = true, .ack = true}));
  play_handshake_and_close(100, 1, 1, 200);  // starts later, closes at 400
  monitor.observe(at_ms(5'000), tcp(kServer, 443, kHouse, 10'001, {.ack = true, .fin = true}));
  monitor.observe(at_ms(5'010), tcp(kHouse, 10'001, kServer, 443, {.ack = true, .fin = true}));
  const Dataset ds = monitor.harvest(at_ms(10'000));
  ASSERT_EQ(ds.conns.size(), 2u);
  EXPECT_LT(ds.conns[0].start, ds.conns[1].start);
}

TEST_F(MonitorTest, HarvestResetsState) {
  play_handshake_and_close(0);
  (void)monitor.harvest(at_ms(5'000));
  const Dataset ds2 = monitor.harvest(at_ms(6'000));
  EXPECT_TRUE(ds2.conns.empty());
  EXPECT_TRUE(ds2.dns.empty());
}

TEST_F(MonitorTest, BothHighPortsHeuristic) {
  ConnRecord c;
  c.orig_port = 51'413;
  c.resp_port = 38'112;
  EXPECT_TRUE(c.both_high_ports());
  c.resp_port = 443;
  EXPECT_FALSE(c.both_high_ports());
}

TEST_F(MonitorTest, StatsCountersTrackWeirdness) {
  // Retransmitted DNS query.
  const auto query = dns::DnsMessage::query(5, dns::DomainName::must("x.example.com"));
  auto qp = udp(kHouse, 40'000, kResolver, 53);
  qp.dns = dns::DnsPayload::from_message(query);
  monitor.observe(at_ms(0), qp);
  monitor.observe(at_ms(1'000), qp);
  EXPECT_EQ(monitor.stats().dns_retransmissions, 1u);

  // Unsolicited DNS response.
  auto resp = dns::DnsMessage::response(query, {});
  auto rp = udp(kResolver, 53, kHouse, 41'111);
  rp.dns = dns::DnsPayload::from_message(resp);
  monitor.observe(at_ms(2'000), rp);
  EXPECT_EQ(monitor.stats().unsolicited_dns, 1u);

  // Mid-stream TCP for an unknown flow.
  monitor.observe(at_ms(3'000), tcp(kHouse, 12'000, kServer, 443, {.ack = true}, 100));
  EXPECT_EQ(monitor.stats().midstream_tcp, 1u);

  // A normal close and an idle timeout.
  play_handshake_and_close(4'000);
  EXPECT_EQ(monitor.stats().conns_closed, 1u);
  monitor.observe(at_ms(10'000), udp(kHouse, 50'000, kServer, 9'999, 10));
  (void)monitor.harvest(at_ms(500'000));
  EXPECT_EQ(monitor.stats().conns_timed_out, 1u);   // the UDP flow
  EXPECT_EQ(monitor.stats().dns_unanswered, 1u);    // the retransmitted query
  EXPECT_GT(monitor.stats().packets, 5u);
}

TEST_F(MonitorTest, NonLocalOriginatorsFilteredAtHarvest) {
  // A server-originated flow (e.g. UDP probe toward the house) would
  // carry a non-local originator; the paper's corpus keeps only
  // locally-originated connections.
  monitor.observe(at_ms(0), udp(kServer, 9'999, kHouse, 50'000, 64));
  const Dataset ds = monitor.harvest(at_ms(200'000));
  EXPECT_TRUE(ds.conns.empty());
}

TEST_F(MonitorTest, ThroughputComputation) {
  ConnRecord c;
  c.resp_bytes = 1'000'000;
  c.duration = SimDuration::sec(10);
  EXPECT_DOUBLE_EQ(c.throughput_bps(), 100'000.0);
  c.duration = SimDuration::zero();
  EXPECT_DOUBLE_EQ(c.throughput_bps(), 0.0);
}

}  // namespace
}  // namespace dnsctx::capture
