// dnsctx — encrypted-flow metadata capture tests: the monitor's
// EncFlowRecord accumulator (honest vantage point — sizes and timing
// only), the TruthTap ground-truth collector, and the encflow.log text
// round-trip.
#include <gtest/gtest.h>

#include <sstream>

#include "capture/logio.hpp"
#include "capture/monitor.hpp"
#include "capture/truth_tap.hpp"
#include "netsim/transport.hpp"

namespace dnsctx::capture {
namespace {

constexpr Ipv4Addr kClient{100, 66, 3, 7};    // inside the monitored net
constexpr Ipv4Addr kResolver{100, 66, 250, 1};
constexpr Ipv4Addr kWebServer{93, 184, 216, 34};

[[nodiscard]] netsim::Packet tcp_packet(Ipv4Addr src, Ipv4Addr dst, std::uint16_t sport,
                                        std::uint16_t dport, netsim::TcpFlags flags,
                                        std::uint64_t payload = 0) {
  netsim::Packet p;
  p.src_ip = src;
  p.dst_ip = dst;
  p.src_port = sport;
  p.dst_port = dport;
  p.proto = Proto::kTcp;
  p.tcp = flags;
  p.payload_bytes = payload;
  return p;
}

/// Play one complete DoT-shaped TCP/853 flow through a tap: handshake,
/// hello exchange, one padded query/response, FIN close.
template <typename Tap>
void play_dot_flow(Tap& tap, std::uint16_t client_port = 30'000) {
  const auto& traits = netsim::traits_for(netsim::Transport::kDoT);
  SimTime t = SimTime::from_us(1'000'000);
  const auto step = [&t] {
    t = t + SimDuration::ms(10);
    return t;
  };
  const auto up = [&](netsim::TcpFlags f, std::uint64_t bytes) {
    tap.observe(step(), tcp_packet(kClient, kResolver, client_port, 853, f, bytes));
  };
  const auto down = [&](netsim::TcpFlags f, std::uint64_t bytes) {
    tap.observe(step(), tcp_packet(kResolver, kClient, 853, client_port, f, bytes));
  };
  up({.syn = true}, 0);
  down({.syn = true, .ack = true}, 0);
  up({.ack = true}, traits.client_hello_bytes);
  down({.ack = true}, traits.server_hello_bytes);
  // One RFC 8467-padded query and response (sizes include framing).
  up({.ack = true}, 128 + traits.per_message_overhead);
  down({.ack = true}, 468 + traits.per_message_overhead);
  up({.ack = true, .fin = true}, 0);
  down({.ack = true, .fin = true}, 0);
}

TEST(MonitorEncFlow, MetadataCaptureIsOffByDefault) {
  EXPECT_FALSE(MonitorConfig{}.observe_encrypted_metadata);
  Monitor monitor;
  play_dot_flow(monitor);
  const Dataset ds = monitor.harvest(SimTime::from_us(10'000'000));
  EXPECT_EQ(ds.conns.size(), 1u);  // the flow still logs as a connection
  EXPECT_TRUE(ds.encflows.empty());
}

TEST(MonitorEncFlow, DotFlowYieldsOneMetadataRecord) {
  MonitorConfig cfg;
  cfg.observe_encrypted_metadata = true;
  Monitor monitor{cfg};
  play_dot_flow(monitor);
  const Dataset ds = monitor.harvest(SimTime::from_us(10'000'000));
  ASSERT_EQ(ds.encflows.size(), 1u);
  const auto& traits = netsim::traits_for(netsim::Transport::kDoT);
  const EncFlowRecord& e = ds.encflows[0];
  EXPECT_EQ(e.client_ip, kClient);
  EXPECT_EQ(e.server_ip, kResolver);
  EXPECT_EQ(e.server_port, 853);
  EXPECT_EQ(e.up_msgs, 2u);    // hello + query (control segments don't count)
  EXPECT_EQ(e.down_msgs, 2u);
  EXPECT_EQ(e.first_up_bytes, traits.client_hello_bytes);
  EXPECT_EQ(e.first_down_bytes, traits.server_hello_bytes);
  // Every post-hello message sat exactly on a padding block.
  EXPECT_EQ(e.pad_aligned_up, 1u);
  EXPECT_EQ(e.pad_aligned_down, 1u);
}

TEST(MonitorEncFlow, OrdinaryWebFlowIsRecordedButUnpadded) {
  MonitorConfig cfg;
  cfg.observe_encrypted_metadata = true;
  Monitor monitor{cfg};
  SimTime t = SimTime::from_us(500'000);
  const auto step = [&t] {
    t = t + SimDuration::ms(5);
    return t;
  };
  monitor.observe(step(), tcp_packet(kClient, kWebServer, 40'000, 443, {.syn = true}));
  monitor.observe(step(), tcp_packet(kWebServer, kClient, 443, 40'000,
                                     {.syn = true, .ack = true}));
  monitor.observe(step(), tcp_packet(kClient, kWebServer, 40'000, 443, {.ack = true}, 517));
  monitor.observe(step(), tcp_packet(kWebServer, kClient, 443, 40'000, {.ack = true}, 4'133));
  monitor.observe(step(),
                  tcp_packet(kClient, kWebServer, 40'000, 443, {.ack = true}, 777));
  monitor.observe(step(),
                  tcp_packet(kWebServer, kClient, 443, 40'000, {.ack = true}, 31'337));
  monitor.observe(step(),
                  tcp_packet(kClient, kWebServer, 40'000, 443, {.ack = true, .fin = true}));
  monitor.observe(step(),
                  tcp_packet(kWebServer, kClient, 443, 40'000, {.ack = true, .fin = true}));
  const Dataset ds = monitor.harvest(SimTime::from_us(10'000'000));
  ASSERT_EQ(ds.encflows.size(), 1u);
  EXPECT_EQ(ds.encflows[0].server_port, 443);
  EXPECT_EQ(ds.encflows[0].pad_aligned_up, 0u);   // 777 is on no DNS block
  EXPECT_EQ(ds.encflows[0].pad_aligned_down, 0u);
}

TEST(MonitorEncFlow, NonTlsPortsProduceNoMetadata) {
  MonitorConfig cfg;
  cfg.observe_encrypted_metadata = true;
  Monitor monitor{cfg};
  SimTime t = SimTime::from_us(500'000);
  monitor.observe(t, tcp_packet(kClient, kWebServer, 40'000, 8'080, {.syn = true}));
  t = t + SimDuration::ms(5);
  monitor.observe(t, tcp_packet(kClient, kWebServer, 40'000, 8'080, {.ack = true}, 999));
  const Dataset ds = monitor.harvest(SimTime::from_us(10'000'000));
  EXPECT_EQ(ds.conns.size(), 1u);
  EXPECT_TRUE(ds.encflows.empty());
}

TEST(TruthTap, ReadsIntentAndDedupesByTuple) {
  TruthTap tap{{kResolver}};
  auto syn = tcp_packet(kClient, kWebServer, 41'000, 443, {.syn = true});
  syn.intent = netsim::TransferIntent{};
  syn.intent->true_class = netsim::TrueClass::kLocalCache;
  tap.observe(SimTime::from_us(100), syn);
  tap.observe(SimTime::from_us(200), syn);  // retransmission: same tuple
  ASSERT_EQ(tap.flows().size(), 1u);
  EXPECT_EQ(tap.flows()[0].cls, netsim::TrueClass::kLocalCache);
  EXPECT_EQ(tap.flows()[0].start, SimTime::from_us(100));
  EXPECT_EQ(tap.flows()[0].tuple, syn.tuple());
}

TEST(TruthTap, ClassifiesResolverChannelsAsDnsTransport) {
  TruthTap tap{{kResolver}};
  // Stub channel to a resolver on 853: no intent, but it IS the DNS.
  tap.observe(SimTime::from_us(100),
              tcp_packet(kClient, kResolver, 41'001, 853, {.syn = true}));
  // Same shape to a non-resolver address: just intent-less traffic.
  tap.observe(SimTime::from_us(200),
              tcp_packet(kClient, kWebServer, 41'002, 443, {.syn = true}));
  ASSERT_EQ(tap.flows().size(), 2u);
  EXPECT_EQ(tap.flows()[0].cls, netsim::TrueClass::kDnsTransport);
  EXPECT_EQ(tap.flows()[1].cls, netsim::TrueClass::kNoDns);
}

TEST(TruthTap, IgnoresPort53AndMidstreamTcp) {
  TruthTap tap{{kResolver}};
  netsim::Packet udp;
  udp.src_ip = kClient;
  udp.dst_ip = kResolver;
  udp.src_port = 30'001;
  udp.dst_port = 53;
  udp.proto = Proto::kUdp;
  tap.observe(SimTime::from_us(100), udp);  // DNS-log traffic, not a conn
  tap.observe(SimTime::from_us(200),
              tcp_packet(kClient, kWebServer, 41'003, 443, {.ack = true}, 100));
  EXPECT_TRUE(tap.flows().empty());
}

TEST(EncFlowLog, TextRoundTrip) {
  std::vector<EncFlowRecord> flows(2);
  flows[0].start = SimTime::from_us(1'234'567);
  flows[0].duration = SimDuration::ms(890);
  flows[0].client_ip = kClient;
  flows[0].server_ip = kResolver;
  flows[0].client_port = 30'000;
  flows[0].server_port = 853;
  flows[0].up_msgs = 5;
  flows[0].down_msgs = 6;
  flows[0].up_bytes = 1'111;
  flows[0].down_bytes = 22'222;
  flows[0].first_up_bytes = 289;
  flows[0].first_down_bytes = 3'295;
  flows[0].pad_aligned_up = 4;
  flows[0].pad_aligned_down = 5;
  flows[1].start = SimTime::from_us(2'000'000);
  flows[1].client_ip = kClient;
  flows[1].server_ip = kWebServer;
  flows[1].server_port = 443;

  std::stringstream ss;
  write_encflow_log(ss, flows);
  const auto back = read_encflow_log(ss, "test");
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].start, flows[0].start);
  EXPECT_EQ(back[0].duration, flows[0].duration);
  EXPECT_EQ(back[0].client_ip, flows[0].client_ip);
  EXPECT_EQ(back[0].server_ip, flows[0].server_ip);
  EXPECT_EQ(back[0].client_port, flows[0].client_port);
  EXPECT_EQ(back[0].server_port, flows[0].server_port);
  EXPECT_EQ(back[0].up_msgs, flows[0].up_msgs);
  EXPECT_EQ(back[0].down_msgs, flows[0].down_msgs);
  EXPECT_EQ(back[0].up_bytes, flows[0].up_bytes);
  EXPECT_EQ(back[0].down_bytes, flows[0].down_bytes);
  EXPECT_EQ(back[0].first_up_bytes, flows[0].first_up_bytes);
  EXPECT_EQ(back[0].first_down_bytes, flows[0].first_down_bytes);
  EXPECT_EQ(back[0].pad_aligned_up, flows[0].pad_aligned_up);
  EXPECT_EQ(back[0].pad_aligned_down, flows[0].pad_aligned_down);
  EXPECT_EQ(back[1].server_port, 443);
}

TEST(EncFlowLog, MalformedLineNamesTheSource) {
  std::stringstream ss{"not a record\n"};
  try {
    (void)read_encflow_log(ss, "enc.log");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("enc.log"), std::string::npos);
  }
}

}  // namespace
}  // namespace dnsctx::capture
