// dnsctx — DnsRecord/ConnRecord unit tests: min_ttl edges, expiry
// arithmetic, and the enum stringifiers.
#include "capture/records.hpp"

#include <gtest/gtest.h>

namespace dnsctx::capture {
namespace {

TEST(DnsRecordMinTtl, NoAnswersIsZero) {
  DnsRecord d;
  EXPECT_EQ(d.min_ttl(), 0u);
  EXPECT_EQ(d.expires_at(), d.response_time());
}

TEST(DnsRecordMinTtl, SingleAnswer) {
  DnsRecord d;
  d.answers.push_back({Ipv4Addr::from_u32(1), 300});
  EXPECT_EQ(d.min_ttl(), 300u);
}

TEST(DnsRecordMinTtl, MinimumAcrossAnswersAnyPosition) {
  DnsRecord d;
  d.answers.push_back({Ipv4Addr::from_u32(1), 300});
  d.answers.push_back({Ipv4Addr::from_u32(2), 60});
  d.answers.push_back({Ipv4Addr::from_u32(3), 600});
  EXPECT_EQ(d.min_ttl(), 60u);  // minimum is in the middle, not first
}

TEST(DnsRecordMinTtl, EqualTtls) {
  DnsRecord d;
  d.answers.push_back({Ipv4Addr::from_u32(1), 120});
  d.answers.push_back({Ipv4Addr::from_u32(2), 120});
  EXPECT_EQ(d.min_ttl(), 120u);
}

TEST(DnsRecordMinTtl, ZeroTtlAnswerWins) {
  DnsRecord d;
  d.answers.push_back({Ipv4Addr::from_u32(1), 300});
  d.answers.push_back({Ipv4Addr::from_u32(2), 0});
  EXPECT_EQ(d.min_ttl(), 0u);
}

TEST(DnsRecord, ExpiresAtUsesMinTtl) {
  DnsRecord d;
  d.ts = SimTime::from_us(1'000'000);
  d.duration = SimDuration::ms(20);
  d.answers.push_back({Ipv4Addr::from_u32(1), 60});
  d.answers.push_back({Ipv4Addr::from_u32(2), 30});
  EXPECT_EQ(d.expires_at(), d.response_time() + SimDuration::sec(30));
}

TEST(DnsRecord, ContainsChecksAnswerSet) {
  DnsRecord d;
  d.answers.push_back({Ipv4Addr::from_u32(42), 60});
  EXPECT_TRUE(d.contains(Ipv4Addr::from_u32(42)));
  EXPECT_FALSE(d.contains(Ipv4Addr::from_u32(43)));
}

TEST(ConnState, ToStringCoversAllStates) {
  EXPECT_EQ(to_string(ConnState::kS0), "S0");
  EXPECT_EQ(to_string(ConnState::kSf), "SF");
  EXPECT_EQ(to_string(ConnState::kRej), "REJ");
  EXPECT_EQ(to_string(ConnState::kRst), "RST");
  EXPECT_EQ(to_string(ConnState::kOth), "OTH");
}

}  // namespace
}  // namespace dnsctx::capture
