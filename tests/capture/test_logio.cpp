// Unit tests for TSV log persistence.
#include <gtest/gtest.h>

#include <sstream>

#include "capture/logio.hpp"

namespace dnsctx::capture {
namespace {

[[nodiscard]] ConnRecord sample_conn() {
  ConnRecord c;
  c.start = SimTime::from_us(1'234'567);
  c.duration = SimDuration::us(987'654);
  c.orig_ip = Ipv4Addr{100, 66, 1, 7};
  c.orig_port = 23'456;
  c.resp_ip = Ipv4Addr{34, 2, 3, 4};
  c.resp_port = 443;
  c.proto = Proto::kTcp;
  c.orig_bytes = 512;
  c.resp_bytes = 1'048'576;
  c.state = ConnState::kSf;
  return c;
}

[[nodiscard]] DnsRecord sample_dns() {
  DnsRecord d;
  d.ts = SimTime::from_us(55);
  d.duration = SimDuration::us(2'100);
  d.client_ip = Ipv4Addr{100, 66, 1, 7};
  d.client_port = 40'001;
  d.resolver_ip = Ipv4Addr{8, 8, 8, 8};
  d.query = "www.example.com";
  d.qtype = dns::RrType::kA;
  d.rcode = dns::Rcode::kNoError;
  d.answered = true;
  d.answers = {{Ipv4Addr{93, 184, 216, 34}, 300}, {Ipv4Addr{93, 184, 216, 35}, 60}};
  return d;
}

TEST(LogIo, ConnRoundTrip) {
  std::stringstream ss;
  write_conn_log(ss, {sample_conn()});
  const auto back = read_conn_log(ss);
  ASSERT_EQ(back.size(), 1u);
  const auto& c = back[0];
  const auto& ref = sample_conn();
  EXPECT_EQ(c.start, ref.start);
  EXPECT_EQ(c.duration, ref.duration);
  EXPECT_EQ(c.orig_ip, ref.orig_ip);
  EXPECT_EQ(c.resp_port, ref.resp_port);
  EXPECT_EQ(c.orig_bytes, ref.orig_bytes);
  EXPECT_EQ(c.resp_bytes, ref.resp_bytes);
  EXPECT_EQ(c.state, ref.state);
}

TEST(LogIo, DnsRoundTrip) {
  std::stringstream ss;
  write_dns_log(ss, {sample_dns()});
  const auto back = read_dns_log(ss);
  ASSERT_EQ(back.size(), 1u);
  const auto& d = back[0];
  const auto ref = sample_dns();
  EXPECT_EQ(d.ts, ref.ts);
  EXPECT_EQ(d.duration, ref.duration);
  EXPECT_EQ(d.query, ref.query);
  EXPECT_EQ(d.qtype, ref.qtype);
  EXPECT_TRUE(d.answered);
  EXPECT_EQ(d.answers, ref.answers);
}

TEST(LogIo, UnansweredAndEmptyQueryRoundTrip) {
  DnsRecord d = sample_dns();
  d.answered = false;
  d.answers.clear();
  d.query.clear();
  std::stringstream ss;
  write_dns_log(ss, {d});
  const auto back = read_dns_log(ss);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_FALSE(back[0].answered);
  EXPECT_TRUE(back[0].answers.empty());
  EXPECT_TRUE(back[0].query.empty());
}

TEST(LogIo, AllConnStatesRoundTrip) {
  std::vector<ConnRecord> conns;
  for (const auto s :
       {ConnState::kS0, ConnState::kSf, ConnState::kRej, ConnState::kRst, ConnState::kOth}) {
    auto c = sample_conn();
    c.state = s;
    conns.push_back(c);
  }
  std::stringstream ss;
  write_conn_log(ss, conns);
  const auto back = read_conn_log(ss);
  ASSERT_EQ(back.size(), conns.size());
  for (std::size_t i = 0; i < conns.size(); ++i) EXPECT_EQ(back[i].state, conns[i].state);
}

TEST(LogIo, UdpProtoRoundTrip) {
  auto c = sample_conn();
  c.proto = Proto::kUdp;
  std::stringstream ss;
  write_conn_log(ss, {c});
  EXPECT_EQ(read_conn_log(ss)[0].proto, Proto::kUdp);
}

TEST(LogIo, EmptyLogsAreJustHeaders) {
  std::stringstream ss;
  write_conn_log(ss, {});
  EXPECT_TRUE(read_conn_log(ss).empty());
  std::stringstream ss2;
  write_dns_log(ss2, {});
  EXPECT_TRUE(read_dns_log(ss2).empty());
}

TEST(LogIo, MalformedConnLineReportsLineNumber) {
  std::stringstream ss{"#header\nnot\tenough\tfields\n"};
  try {
    (void)read_conn_log(ss);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("line 2"), std::string::npos);
  }
}

TEST(LogIo, MalformedNumberRejected) {
  auto c = sample_conn();
  std::stringstream ss;
  write_conn_log(ss, {c});
  std::string text = ss.str();
  const auto pos = text.find("512");
  text.replace(pos, 3, "xyz");
  std::stringstream bad{text};
  EXPECT_THROW((void)read_conn_log(bad), std::runtime_error);
}

TEST(LogIo, MalformedAnswerRejected) {
  std::stringstream ss;
  write_dns_log(ss, {sample_dns()});
  std::string text = ss.str();
  const auto pos = text.find("93.184.216.34:300");
  text.replace(pos, 17, "93.184.216.34#300");
  std::stringstream bad{text};
  EXPECT_THROW((void)read_dns_log(bad), std::runtime_error);
}

TEST(LogIo, SaveAndLoadDatasetFiles) {
  Dataset ds;
  ds.conns = {sample_conn()};
  ds.dns = {sample_dns()};
  const std::string conn_path = "/tmp/dnsctx_test_conn.log";
  const std::string dns_path = "/tmp/dnsctx_test_dns.log";
  save_dataset(ds, conn_path, dns_path);
  const Dataset back = load_dataset(conn_path, dns_path);
  EXPECT_EQ(back.conns.size(), 1u);
  EXPECT_EQ(back.dns.size(), 1u);
  EXPECT_EQ(back.dns[0].answers, ds.dns[0].answers);
}

TEST(LogIo, MissingFileThrows) {
  EXPECT_THROW((void)load_dataset("/nonexistent/a.log", "/nonexistent/b.log"),
               std::runtime_error);
}

TEST(LogIo, LargeDatasetRoundTripsExactly) {
  std::vector<DnsRecord> dns;
  for (int i = 0; i < 500; ++i) {
    auto d = sample_dns();
    d.ts = SimTime::from_us(i * 1'000);
    d.query = "host" + std::to_string(i) + ".example.com";
    d.answers[0].ttl = static_cast<std::uint32_t>(i);
    dns.push_back(std::move(d));
  }
  std::stringstream ss;
  write_dns_log(ss, dns);
  const auto back = read_dns_log(ss);
  ASSERT_EQ(back.size(), dns.size());
  for (std::size_t i = 0; i < dns.size(); ++i) {
    EXPECT_EQ(back[i].query, dns[i].query);
    EXPECT_EQ(back[i].answers[0].ttl, dns[i].answers[0].ttl);
  }
}

// Exercise the buffered readers at a size where reserve() and the
// fixed-field splitter matter, and verify byte-exactness by
// re-serializing what was read back.
TEST(LogIo, HugeRoundTripIsByteExact) {
  std::vector<ConnRecord> conns;
  std::vector<DnsRecord> dns;
  for (int i = 0; i < 20'000; ++i) {
    auto c = sample_conn();
    c.start = SimTime::from_us(i * 997);
    c.orig_port = static_cast<std::uint16_t>(1'024 + (i % 60'000));
    c.orig_bytes = static_cast<std::uint64_t>(i) * 31;
    c.proto = (i % 3) ? Proto::kTcp : Proto::kUdp;
    conns.push_back(c);

    auto d = sample_dns();
    d.ts = SimTime::from_us(i * 1'009);
    d.query = (i % 7) ? "host" + std::to_string(i) + ".example.com" : std::string{};
    d.answers.clear();
    for (int a = 0; a < i % 5; ++a) {
      d.answers.push_back({Ipv4Addr{93, 184, static_cast<std::uint8_t>(a), 34},
                           static_cast<std::uint32_t>(60 * (a + 1))});
    }
    d.answered = !d.answers.empty();
    dns.push_back(std::move(d));
  }

  std::stringstream conn_ss, dns_ss;
  write_conn_log(conn_ss, conns);
  write_dns_log(dns_ss, dns);

  const auto conns_back = read_conn_log(conn_ss);
  const auto dns_back = read_dns_log(dns_ss);
  ASSERT_EQ(conns_back.size(), conns.size());
  ASSERT_EQ(dns_back.size(), dns.size());

  std::stringstream conn_ss2, dns_ss2;
  write_conn_log(conn_ss2, conns_back);
  write_dns_log(dns_ss2, dns_back);
  EXPECT_EQ(conn_ss.str(), conn_ss2.str());
  EXPECT_EQ(dns_ss.str(), dns_ss2.str());
}

TEST(LogIo, MissingTrailingNewlineStillParses) {
  std::stringstream ss;
  write_conn_log(ss, {sample_conn(), sample_conn()});
  std::string text = ss.str();
  ASSERT_EQ(text.back(), '\n');
  text.pop_back();
  std::stringstream trimmed{text};
  EXPECT_EQ(read_conn_log(trimmed).size(), 2u);
}

}  // namespace
}  // namespace dnsctx::capture
