// Property tests for the transfer-intent sampler: the distributions the
// §6/§7 analyses depend on.
#include <gtest/gtest.h>

#include "traffic/apps.hpp"

namespace dnsctx::traffic {
namespace {

using resolver::ServiceClass;

class IntentTest : public ::testing::TestWithParam<ServiceClass> {};

TEST_P(IntentTest, IntentsAreWellFormed) {
  Rng rng{17};
  for (int i = 0; i < 2'000; ++i) {
    const auto intent = sample_intent(GetParam(), 1.0, rng);
    EXPECT_GT(intent.request_bytes, 0u);
    EXPECT_GT(intent.response_bytes, 0u);
    EXPECT_GT(intent.server_delay, SimDuration::zero());
    EXPECT_GE(intent.transfer_time, intent.server_delay);
    EXPECT_LT(intent.transfer_time, SimDuration::min(30));
  }
}

INSTANTIATE_TEST_SUITE_P(Services, IntentTest,
                         ::testing::Values(ServiceClass::kWebOrigin, ServiceClass::kCdnAsset,
                                           ServiceClass::kAdNetwork, ServiceClass::kTracker,
                                           ServiceClass::kApi, ServiceClass::kVideo,
                                           ServiceClass::kConnCheck, ServiceClass::kOther));

TEST(IntentShapes, ThroughputFactorSlowsTransfers) {
  Rng rng_fast{5}, rng_slow{5};  // identical streams: paired comparison
  double fast_sum = 0.0, slow_sum = 0.0;
  for (int i = 0; i < 1'000; ++i) {
    fast_sum += sample_intent(ServiceClass::kCdnAsset, 1.0, rng_fast).transfer_time.to_sec();
    slow_sum += sample_intent(ServiceClass::kCdnAsset, 0.2, rng_slow).transfer_time.to_sec();
  }
  EXPECT_GT(slow_sum, fast_sum);
}

TEST(IntentShapes, VideoMovesTheMostBytes) {
  Rng rng{7};
  auto mean_bytes = [&rng](ServiceClass s) {
    double sum = 0.0;
    for (int i = 0; i < 500; ++i) {
      sum += static_cast<double>(sample_intent(s, 1.0, rng).response_bytes);
    }
    return sum / 500.0;
  };
  const double video = mean_bytes(ServiceClass::kVideo);
  EXPECT_GT(video, 10.0 * mean_bytes(ServiceClass::kCdnAsset));
  EXPECT_GT(video, 100.0 * mean_bytes(ServiceClass::kTracker));
}

TEST(IntentShapes, ConnCheckIsTinyButLingers) {
  Rng rng{9};
  for (int i = 0; i < 200; ++i) {
    const auto intent = sample_intent(ServiceClass::kConnCheck, 1.0, rng);
    EXPECT_LE(intent.response_bytes, 200u);
    // The lingering socket is what drags Google's Fig 3 throughput down.
    EXPECT_GT(intent.transfer_time, SimDuration::sec(1));
  }
}

TEST(IntentShapes, TrackersAreShortLivedOftenEnough) {
  Rng rng{11};
  int short_lived = 0;
  const int n = 2'000;
  for (int i = 0; i < n; ++i) {
    if (sample_intent(ServiceClass::kTracker, 1.0, rng).transfer_time < SimDuration::sec(2)) {
      ++short_lived;
    }
  }
  // A meaningful share of beacons must be short — they are the §6
  // "DNS contributes >10%" population.
  EXPECT_GT(short_lived, n / 5);
}

TEST(IntentShapes, KeepAliveTailExists) {
  Rng rng{13};
  int long_lived = 0;
  const int n = 2'000;
  for (int i = 0; i < n; ++i) {
    if (sample_intent(ServiceClass::kWebOrigin, 1.0, rng).transfer_time >
        SimDuration::sec(20)) {
      ++long_lived;
    }
  }
  // Keep-alive idle keeps most web conns open for tens of seconds —
  // which keeps DNS' relative contribution small (§6).
  EXPECT_GT(long_lived, n / 2);
}

}  // namespace
}  // namespace dnsctx::traffic
