// Unit tests for the generic server farm.
#include <gtest/gtest.h>

#include "traffic/farm.hpp"

namespace dnsctx::traffic {
namespace {

constexpr Ipv4Addr kClient{100, 66, 1, 1};
constexpr Ipv4Addr kServer{34, 1, 1, 1};
constexpr Ipv4Addr kDeadServer{128, 138, 141, 172};

struct ClientProbe : netsim::Host {
  std::vector<std::pair<SimTime, netsim::Packet>> received;
  netsim::Simulator* sim = nullptr;
  void receive(const netsim::Packet& p) override { received.emplace_back(sim->now(), p); }
};

class FarmTest : public ::testing::Test {
 protected:
  FarmTest() : net{sim, make_latency(), 1}, farm{sim, net, 2} {
    probe.sim = &sim;
    net.attach(kClient, &probe);
  }

  static netsim::LatencyModel make_latency() {
    netsim::LatencyModel lat;
    lat.set_site(kClient, {SimDuration::ms(1), 0.0});
    lat.set_site(kServer, {SimDuration::ms(1), 0.0});
    lat.set_site(kDeadServer, {SimDuration::ms(1), 0.0});
    return lat;
  }

  [[nodiscard]] static netsim::Packet syn(Ipv4Addr dst, netsim::TransferIntent intent) {
    netsim::Packet p;
    p.src_ip = kClient;
    p.dst_ip = dst;
    p.src_port = 10'000;
    p.dst_port = 443;
    p.proto = Proto::kTcp;
    p.tcp = netsim::TcpFlags{.syn = true};
    p.intent = intent;
    return p;
  }

  [[nodiscard]] static netsim::Packet request(std::uint64_t bytes) {
    netsim::Packet p;
    p.src_ip = kClient;
    p.dst_ip = kServer;
    p.src_port = 10'000;
    p.dst_port = 443;
    p.proto = Proto::kTcp;
    p.tcp = netsim::TcpFlags{.ack = true};
    p.payload_bytes = bytes;
    return p;
  }

  netsim::Simulator sim;
  netsim::Network net;
  ServerFarm farm;
  ClientProbe probe;
};

TEST_F(FarmTest, AnswersSynWithSynAck) {
  netsim::TransferIntent intent;
  net.send(syn(kServer, intent));
  sim.run_to_completion();
  ASSERT_EQ(probe.received.size(), 1u);
  EXPECT_TRUE(probe.received[0].second.tcp.syn);
  EXPECT_TRUE(probe.received[0].second.tcp.ack);
  EXPECT_EQ(farm.tcp_conns_served(), 1u);
}

TEST_F(FarmTest, PlaysBackTransferIntent) {
  netsim::TransferIntent intent;
  intent.response_bytes = 50'000;
  intent.server_delay = SimDuration::ms(100);
  intent.transfer_time = SimDuration::sec(2);
  net.send(syn(kServer, intent));
  sim.run_until(sim.now() + SimDuration::ms(10));
  net.send(request(500));
  sim.run_to_completion();
  // SYN-ACK + first response data + FIN with the remaining bytes.
  ASSERT_EQ(probe.received.size(), 3u);
  const auto& data = probe.received[1];
  const auto& fin = probe.received[2];
  EXPECT_EQ(data.second.payload_bytes, 16'384u);
  EXPECT_TRUE(fin.second.tcp.fin);
  EXPECT_EQ(fin.second.payload_bytes, 50'000u - 16'384u);
  // FIN lands ~transfer_time after the request arrived.
  EXPECT_GT(fin.first, SimTime::origin() + SimDuration::sec(2));
  EXPECT_LT(fin.first, SimTime::origin() + SimDuration::from_sec(2.3));
}

TEST_F(FarmTest, DeadAddressesNeverAnswer) {
  farm.add_dead_ip(kDeadServer);
  net.send(syn(kDeadServer, netsim::TransferIntent{}));
  sim.run_to_completion();
  EXPECT_TRUE(probe.received.empty());
  EXPECT_EQ(farm.tcp_conns_served(), 0u);
}

TEST_F(FarmTest, RejectAddressesSendRst) {
  farm.add_reject_ip(kServer);
  net.send(syn(kServer, netsim::TransferIntent{}));
  sim.run_to_completion();
  ASSERT_EQ(probe.received.size(), 1u);
  EXPECT_TRUE(probe.received[0].second.tcp.rst);
}

TEST_F(FarmTest, StraySegmentGetsRst) {
  net.send(request(100));  // no SYN ever happened
  sim.run_to_completion();
  ASSERT_EQ(probe.received.size(), 1u);
  EXPECT_TRUE(probe.received[0].second.tcp.rst);
}

TEST_F(FarmTest, ClientFinTearsDownState) {
  net.send(syn(kServer, netsim::TransferIntent{}));
  sim.run_to_completion();
  netsim::Packet fin = request(0);
  fin.tcp = netsim::TcpFlags{.ack = true, .fin = true};
  net.send(fin);
  sim.run_to_completion();
  // SYN-ACK then the FIN-ACK completing the close.
  ASSERT_EQ(probe.received.size(), 2u);
  EXPECT_TRUE(probe.received[1].second.tcp.fin);
}

TEST_F(FarmTest, UdpIntentAnsweredOnce) {
  netsim::Packet dgram;
  dgram.src_ip = kClient;
  dgram.dst_ip = kServer;
  dgram.src_port = 123;
  dgram.dst_port = 123;
  dgram.proto = Proto::kUdp;
  dgram.payload_bytes = 48;
  netsim::TransferIntent intent;
  intent.response_bytes = 48;
  intent.server_delay = SimDuration::ms(3);
  intent.transfer_time = intent.server_delay;
  dgram.intent = intent;
  net.send(dgram);
  sim.run_to_completion();
  ASSERT_EQ(probe.received.size(), 1u);
  EXPECT_EQ(probe.received[0].second.payload_bytes, 48u);
  EXPECT_EQ(farm.udp_flows_served(), 1u);
}

TEST_F(FarmTest, UdpStreamingSpreadsChunksUnderMonitorTimeout) {
  netsim::Packet dgram;
  dgram.src_ip = kClient;
  dgram.dst_ip = kServer;
  dgram.src_port = 50'000;
  dgram.dst_port = 51'413;
  dgram.proto = Proto::kUdp;
  netsim::TransferIntent intent;
  intent.response_bytes = 1'000'000;
  intent.server_delay = SimDuration::ms(10);
  intent.transfer_time = SimDuration::sec(300);
  dgram.intent = intent;
  net.send(dgram);
  sim.run_to_completion();
  ASSERT_GT(probe.received.size(), 2u);
  // Gaps between chunks must stay below Bro's 60 s UDP flow timeout.
  for (std::size_t i = 1; i < probe.received.size(); ++i) {
    EXPECT_LT(probe.received[i].first - probe.received[i - 1].first, SimDuration::sec(60));
  }
  std::uint64_t total = 0;
  for (const auto& [t, p] : probe.received) total += p.payload_bytes;
  EXPECT_GE(total, intent.response_bytes * 9 / 10);
}

TEST_F(FarmTest, IntentLessUdpIsIgnored) {
  netsim::Packet dgram;
  dgram.src_ip = kClient;
  dgram.dst_ip = kServer;
  dgram.src_port = 50'000;
  dgram.dst_port = 51'413;
  dgram.proto = Proto::kUdp;
  dgram.payload_bytes = 200;
  net.send(dgram);
  sim.run_to_completion();
  EXPECT_TRUE(probe.received.empty());
}

}  // namespace
}  // namespace dnsctx::traffic
