// Unit tests for the web page structure model and diurnal profile.
#include <gtest/gtest.h>

#include <set>

#include "traffic/diurnal.hpp"
#include "traffic/webmodel.hpp"

namespace dnsctx::traffic {
namespace {

[[nodiscard]] resolver::ZoneDbConfig zone_config() {
  resolver::ZoneDbConfig cfg;
  cfg.seed = 6;
  cfg.web_sites = 40;
  cfg.cdn_domains = 8;
  cfg.ad_domains = 8;
  cfg.tracker_domains = 6;
  cfg.api_domains = 8;
  cfg.video_sites = 4;
  cfg.other_names = 5;
  return cfg;
}

TEST(WebModel, EveryOriginHasAProfile) {
  const resolver::ZoneDb zones{zone_config()};
  const WebModel web{zones, 3};
  for (const auto origin : zones.ids_of(resolver::ServiceClass::kWebOrigin)) {
    const PageProfile& prof = web.page(origin);
    EXPECT_EQ(prof.origin, origin);
    EXPECT_GE(prof.asset_hosts.size(), 3u);   // ≥2 CDN + ≥1 ad/tracker
    EXPECT_LE(prof.asset_hosts.size(), 12u);
    EXPECT_GE(prof.links.size(), 2u);
  }
}

TEST(WebModel, AssetHostsAreInfrastructureNames) {
  const resolver::ZoneDb zones{zone_config()};
  const WebModel web{zones, 3};
  for (const auto origin : zones.ids_of(resolver::ServiceClass::kWebOrigin)) {
    for (const auto asset : web.page(origin).asset_hosts) {
      const auto service = zones.record(asset).service;
      EXPECT_TRUE(service == resolver::ServiceClass::kCdnAsset ||
                  service == resolver::ServiceClass::kAdNetwork ||
                  service == resolver::ServiceClass::kTracker ||
                  service == resolver::ServiceClass::kApi);
    }
  }
}

TEST(WebModel, LinksAreOtherWebOrigins) {
  const resolver::ZoneDb zones{zone_config()};
  const WebModel web{zones, 3};
  for (const auto origin : zones.ids_of(resolver::ServiceClass::kWebOrigin)) {
    for (const auto link : web.page(origin).links) {
      EXPECT_NE(link, origin);
      EXPECT_EQ(zones.record(link).service, resolver::ServiceClass::kWebOrigin);
    }
  }
}

TEST(WebModel, AssetHostsAreUniquePerPage) {
  const resolver::ZoneDb zones{zone_config()};
  const WebModel web{zones, 3};
  for (const auto origin : zones.ids_of(resolver::ServiceClass::kWebOrigin)) {
    const auto& assets = web.page(origin).asset_hosts;
    const std::set<resolver::NameId> uniq{assets.begin(), assets.end()};
    EXPECT_EQ(uniq.size(), assets.size());
  }
}

TEST(WebModel, PopularInfrastructureIsShared) {
  const resolver::ZoneDb zones{zone_config()};
  const WebModel web{zones, 3};
  // Some asset host must appear on many sites (the single tag manager
  // effect), driving cross-site cache hits.
  std::map<resolver::NameId, int> embed_counts;
  for (const auto origin : zones.ids_of(resolver::ServiceClass::kWebOrigin)) {
    for (const auto asset : web.page(origin).asset_hosts) ++embed_counts[asset];
  }
  int max_count = 0;
  for (const auto& [id, count] : embed_counts) max_count = std::max(max_count, count);
  EXPECT_GE(max_count, 10);
}

TEST(WebModel, DeterministicForSeed) {
  const resolver::ZoneDb zones{zone_config()};
  const WebModel a{zones, 5};
  const WebModel b{zones, 5};
  for (const auto origin : zones.ids_of(resolver::ServiceClass::kWebOrigin)) {
    EXPECT_EQ(a.page(origin).asset_hosts, b.page(origin).asset_hosts);
    EXPECT_EQ(a.page(origin).links, b.page(origin).links);
  }
}

TEST(WebModel, NonOriginLookupThrows) {
  const resolver::ZoneDb zones{zone_config()};
  const WebModel web{zones, 3};
  const auto cdn = zones.ids_of(resolver::ServiceClass::kCdnAsset)[0];
  EXPECT_THROW((void)web.page(cdn), std::invalid_argument);
}

TEST(Diurnal, ResidentialPeaksInTheEvening) {
  const auto prof = DiurnalProfile::residential();
  const auto at_hour = [&](int h) {
    return prof.factor(SimTime::origin() + SimDuration::hours(h));
  };
  EXPECT_GT(at_hour(20), at_hour(4));  // evening >> overnight
  EXPECT_GT(at_hour(20), at_hour(10));
  EXPECT_LT(at_hour(3), 0.5);
  EXPECT_GT(at_hour(19), 1.4);
}

TEST(Diurnal, WrapsAfterMidnight) {
  const auto prof = DiurnalProfile::residential();
  EXPECT_DOUBLE_EQ(prof.factor(SimTime::origin()),
                   prof.factor(SimTime::origin() + SimDuration::hours(24)));
  EXPECT_DOUBLE_EQ(prof.factor(SimTime::origin() + SimDuration::hours(3)),
                   prof.factor(SimTime::origin() + SimDuration::hours(27)));
}

TEST(Diurnal, StartHourShiftsPhase) {
  const auto base = DiurnalProfile::residential();
  const auto shifted = base.with_start_hour(20);
  EXPECT_DOUBLE_EQ(shifted.factor(SimTime::origin()),
                   base.factor(SimTime::origin() + SimDuration::hours(20)));
}

TEST(Diurnal, FlatIsFlat) {
  const auto flat = DiurnalProfile::flat();
  for (int h = 0; h < 24; ++h) {
    EXPECT_DOUBLE_EQ(flat.factor(SimTime::origin() + SimDuration::hours(h)), 1.0);
  }
}

}  // namespace
}  // namespace dnsctx::traffic
