// Unit tests for the web page structure model and diurnal profile.
#include <gtest/gtest.h>

#include <array>
#include <limits>
#include <set>
#include <stdexcept>

#include "traffic/diurnal.hpp"
#include "traffic/webmodel.hpp"

namespace dnsctx::traffic {
namespace {

[[nodiscard]] resolver::ZoneDbConfig zone_config() {
  resolver::ZoneDbConfig cfg;
  cfg.seed = 6;
  cfg.web_sites = 40;
  cfg.cdn_domains = 8;
  cfg.ad_domains = 8;
  cfg.tracker_domains = 6;
  cfg.api_domains = 8;
  cfg.video_sites = 4;
  cfg.other_names = 5;
  return cfg;
}

TEST(WebModel, EveryOriginHasAProfile) {
  const resolver::ZoneDb zones{zone_config()};
  const WebModel web{zones, 3};
  for (const auto origin : zones.ids_of(resolver::ServiceClass::kWebOrigin)) {
    const PageProfile& prof = web.page(origin);
    EXPECT_EQ(prof.origin, origin);
    EXPECT_GE(prof.asset_hosts.size(), 3u);   // ≥2 CDN + ≥1 ad/tracker
    EXPECT_LE(prof.asset_hosts.size(), 12u);
    EXPECT_GE(prof.links.size(), 2u);
  }
}

TEST(WebModel, AssetHostsAreInfrastructureNames) {
  const resolver::ZoneDb zones{zone_config()};
  const WebModel web{zones, 3};
  for (const auto origin : zones.ids_of(resolver::ServiceClass::kWebOrigin)) {
    for (const auto asset : web.page(origin).asset_hosts) {
      const auto service = zones.record(asset).service;
      EXPECT_TRUE(service == resolver::ServiceClass::kCdnAsset ||
                  service == resolver::ServiceClass::kAdNetwork ||
                  service == resolver::ServiceClass::kTracker ||
                  service == resolver::ServiceClass::kApi);
    }
  }
}

TEST(WebModel, LinksAreOtherWebOrigins) {
  const resolver::ZoneDb zones{zone_config()};
  const WebModel web{zones, 3};
  for (const auto origin : zones.ids_of(resolver::ServiceClass::kWebOrigin)) {
    for (const auto link : web.page(origin).links) {
      EXPECT_NE(link, origin);
      EXPECT_EQ(zones.record(link).service, resolver::ServiceClass::kWebOrigin);
    }
  }
}

TEST(WebModel, AssetHostsAreUniquePerPage) {
  const resolver::ZoneDb zones{zone_config()};
  const WebModel web{zones, 3};
  for (const auto origin : zones.ids_of(resolver::ServiceClass::kWebOrigin)) {
    const auto& assets = web.page(origin).asset_hosts;
    const std::set<resolver::NameId> uniq{assets.begin(), assets.end()};
    EXPECT_EQ(uniq.size(), assets.size());
  }
}

TEST(WebModel, PopularInfrastructureIsShared) {
  const resolver::ZoneDb zones{zone_config()};
  const WebModel web{zones, 3};
  // Some asset host must appear on many sites (the single tag manager
  // effect), driving cross-site cache hits.
  std::map<resolver::NameId, int> embed_counts;
  for (const auto origin : zones.ids_of(resolver::ServiceClass::kWebOrigin)) {
    for (const auto asset : web.page(origin).asset_hosts) ++embed_counts[asset];
  }
  int max_count = 0;
  for (const auto& [id, count] : embed_counts) max_count = std::max(max_count, count);
  EXPECT_GE(max_count, 10);
}

TEST(WebModel, DeterministicForSeed) {
  const resolver::ZoneDb zones{zone_config()};
  const WebModel a{zones, 5};
  const WebModel b{zones, 5};
  for (const auto origin : zones.ids_of(resolver::ServiceClass::kWebOrigin)) {
    EXPECT_EQ(a.page(origin).asset_hosts, b.page(origin).asset_hosts);
    EXPECT_EQ(a.page(origin).links, b.page(origin).links);
  }
}

TEST(WebModel, NonOriginLookupThrows) {
  const resolver::ZoneDb zones{zone_config()};
  const WebModel web{zones, 3};
  const auto cdn = zones.ids_of(resolver::ServiceClass::kCdnAsset)[0];
  EXPECT_THROW((void)web.page(cdn), std::invalid_argument);
}

TEST(Diurnal, ResidentialPeaksInTheEvening) {
  const auto prof = DiurnalProfile::residential();
  const auto at_hour = [&](int h) {
    return prof.factor(SimTime::origin() + SimDuration::hours(h));
  };
  EXPECT_GT(at_hour(20), at_hour(4));  // evening >> overnight
  EXPECT_GT(at_hour(20), at_hour(10));
  EXPECT_LT(at_hour(3), 0.5);
  EXPECT_GT(at_hour(19), 1.4);
}

TEST(Diurnal, WrapsAfterMidnight) {
  const auto prof = DiurnalProfile::residential();
  EXPECT_DOUBLE_EQ(prof.factor(SimTime::origin()),
                   prof.factor(SimTime::origin() + SimDuration::hours(24)));
  EXPECT_DOUBLE_EQ(prof.factor(SimTime::origin() + SimDuration::hours(3)),
                   prof.factor(SimTime::origin() + SimDuration::hours(27)));
}

TEST(Diurnal, StartHourShiftsPhase) {
  const auto base = DiurnalProfile::residential();
  const auto shifted = base.with_start_hour(20);
  EXPECT_DOUBLE_EQ(shifted.factor(SimTime::origin()),
                   base.factor(SimTime::origin() + SimDuration::hours(20)));
}

TEST(Diurnal, FlatIsFlat) {
  const auto flat = DiurnalProfile::flat();
  for (int h = 0; h < 24; ++h) {
    EXPECT_DOUBLE_EQ(flat.factor(SimTime::origin() + SimDuration::hours(h)), 1.0);
  }
}

TEST(Diurnal, HourBoundariesAreExact) {
  const auto prof = DiurnalProfile::residential();
  // One microsecond before an hour boundary still reads the old hour;
  // the boundary itself reads the new one — including the 23 → 0 wrap.
  for (int h = 1; h <= 24; ++h) {
    const SimTime boundary = SimTime::origin() + SimDuration::hours(h);
    EXPECT_DOUBLE_EQ(prof.factor(boundary - SimDuration::us(1)),
                     prof.factor(SimTime::origin() + SimDuration::hours(h - 1)))
        << "hour " << h;
    EXPECT_DOUBLE_EQ(prof.factor(boundary),
                     prof.factor(SimTime::origin() + SimDuration::hours(h % 24)))
        << "hour " << h;
  }
}

TEST(Diurnal, LateStartHoursWrapForDaysOnEnd) {
  // start_hour 23 + long runs: the lookup index must stay in [0, 24)
  // no matter how far the clock advances (floored, not truncated, mod).
  const auto prof = DiurnalProfile::residential().with_start_hour(23);
  const auto base = DiurnalProfile::residential();
  for (int h = 0; h < 24 * 8; ++h) {
    EXPECT_DOUBLE_EQ(prof.factor(SimTime::origin() + SimDuration::hours(h)),
                     base.factor(SimTime::origin() + SimDuration::hours((h + 23) % 24)))
        << "hour " << h;
  }
}

TEST(Diurnal, OfficePeaksMiddayNotEvening) {
  const auto prof = DiurnalProfile::office();
  const auto at_hour = [&](int h) {
    return prof.factor(SimTime::origin() + SimDuration::hours(h));
  };
  EXPECT_GT(at_hour(10), at_hour(20));  // work hours >> evening
  EXPECT_GT(at_hour(10), at_hour(3));
  EXPECT_LT(at_hour(23), 0.2);
}

TEST(Diurnal, CustomValidatesTheTable) {
  std::array<double, 24> hours{};
  hours.fill(1.0);
  EXPECT_NO_THROW(DiurnalProfile::custom(hours));

  // Zero-weight hours are legitimate (quiet periods) as long as some
  // hour carries load...
  hours[3] = 0.0;
  hours[4] = 0.0;
  EXPECT_NO_THROW(DiurnalProfile::custom(hours));
  const auto prof = DiurnalProfile::custom(hours);
  EXPECT_DOUBLE_EQ(prof.factor(SimTime::origin() + SimDuration::hours(3)), 0.0);

  // ...but an all-zero table would stall every app forever.
  std::array<double, 24> dead{};
  EXPECT_THROW(DiurnalProfile::custom(dead), std::invalid_argument);

  std::array<double, 24> negative{};
  negative.fill(1.0);
  negative[7] = -0.1;
  EXPECT_THROW(DiurnalProfile::custom(negative), std::invalid_argument);

  std::array<double, 24> infinite{};
  infinite.fill(1.0);
  infinite[12] = std::numeric_limits<double>::infinity();
  EXPECT_THROW(DiurnalProfile::custom(infinite), std::invalid_argument);

  std::array<double, 24> notanumber{};
  notanumber.fill(1.0);
  notanumber[0] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(DiurnalProfile::custom(notanumber), std::invalid_argument);
}

TEST(WebModel, CustomFanoutBoundsAreRespected) {
  const resolver::ZoneDb zones{zone_config()};
  WebFanout fanout;
  fanout.cdn_min = fanout.cdn_max = 1;   // degenerate min == max draws
  fanout.ad_min = fanout.ad_max = 0;     // a category can be absent
  fanout.tracker_min = fanout.tracker_max = 0;
  fanout.api_min = fanout.api_max = 0;
  fanout.links_min = 2;
  fanout.links_max = 3;
  const WebModel model{zones, 11, fanout};
  for (std::size_t id = 0; id < zones.size(); ++id) {
    const auto nid = static_cast<resolver::NameId>(id);
    if (zones.record(nid).service != resolver::ServiceClass::kWebOrigin) continue;
    const PageProfile& page = model.page(nid);
    // Exactly one CDN asset, nothing else (duplicates collapse, so "at
    // most" for the upper bound and the single-CDN case is exact).
    EXPECT_EQ(page.asset_hosts.size(), 1u);
    EXPECT_LE(page.links.size(), 3u);  // self-links are dropped: no lower bound
  }
}

TEST(WebModel, InvertedFanoutIsRejected) {
  const resolver::ZoneDb zones{zone_config()};
  WebFanout bad;
  bad.cdn_min = 5;
  bad.cdn_max = 2;
  EXPECT_THROW((WebModel{zones, 11, bad}), std::invalid_argument);
}

TEST(WebModel, DefaultFanoutMatchesDefaultConstructedArgument) {
  // The default argument must reproduce the historical literals: same
  // seed + explicit default fanout ⇒ identical pages.
  const resolver::ZoneDb zones{zone_config()};
  const WebModel a{zones, 6};
  const WebModel b{zones, 6, WebFanout{}};
  for (std::size_t id = 0; id < zones.size(); ++id) {
    const auto nid = static_cast<resolver::NameId>(id);
    if (zones.record(nid).service != resolver::ServiceClass::kWebOrigin) continue;
    EXPECT_EQ(a.page(nid).asset_hosts, b.page(nid).asset_hosts);
    EXPECT_EQ(a.page(nid).links, b.page(nid).links);
  }
}

}  // namespace
}  // namespace dnsctx::traffic
