// Unit tests for the client device: TCP state machine, fetch plumbing,
// ground-truth accounting — against a live farm + resolver.
#include <gtest/gtest.h>

#include "resolver/recursive.hpp"
#include "traffic/device.hpp"
#include "traffic/farm.hpp"

namespace dnsctx::traffic {
namespace {

constexpr Ipv4Addr kHouse{100, 66, 1, 1};
constexpr Ipv4Addr kDeviceIp{192, 168, 1, 10};
constexpr Ipv4Addr kResolver{100, 66, 250, 1};
constexpr Ipv4Addr kServer{34, 1, 1, 1};
constexpr Ipv4Addr kDeadServer{127, 9, 9, 9};

class DeviceTest : public ::testing::Test {
 protected:
  DeviceTest()
      : net{sim, make_latency(), 3},
        gateway{sim, net, kHouse, 5, SimDuration::from_ms(0.2)},
        zones{make_zone_config()},
        platform{sim, net, zones, platform_config(), 7},
        farm{sim, net, 9},
        device{sim, gateway, kDeviceIp, stub_config(), 11} {
    farm.add_dead_ip(kDeadServer);
    device.set_ground_truth(&truth);
  }

  static netsim::LatencyModel make_latency() {
    netsim::LatencyModel lat;
    lat.set_site(kHouse, {SimDuration::from_ms(0.5), 0.0});
    lat.set_site(kResolver, {SimDuration::from_ms(0.5), 0.0});
    lat.set_site(kServer, {SimDuration::ms(5), 0.0});
    lat.set_site(kDeadServer, {SimDuration::ms(5), 0.0});
    return lat;
  }
  static resolver::ZoneDbConfig make_zone_config() {
    resolver::ZoneDbConfig cfg;
    cfg.seed = 4;
    cfg.web_sites = 10;
    cfg.cdn_domains = 2;
    cfg.ad_domains = 2;
    cfg.tracker_domains = 2;
    cfg.api_domains = 2;
    cfg.video_sites = 2;
    cfg.other_names = 2;
    return cfg;
  }
  static resolver::PlatformConfig platform_config() {
    resolver::PlatformConfig cfg;
    cfg.addrs = {kResolver};
    cfg.site = {SimDuration::from_ms(0.5), 0.0};
    cfg.slow_tail_prob = 0.0;
    return cfg;
  }
  static resolver::StubConfig stub_config() {
    resolver::StubConfig cfg;
    cfg.resolver_addrs = {kResolver};
    cfg.ttl_violation_prob = 0.0;
    return cfg;
  }

  [[nodiscard]] const dns::DomainName& a_name() {
    return zones.record(zones.ids_of(resolver::ServiceClass::kWebOrigin)[0]).name;
  }

  netsim::Simulator sim;
  netsim::Network net;
  netsim::HouseGateway gateway;
  resolver::ZoneDb zones;
  resolver::RecursiveResolverPlatform platform;
  ServerFarm farm;
  GroundTruth truth;
  Device device;
};

TEST_F(DeviceTest, OpenTcpEstablishes) {
  bool established = false;
  netsim::TransferIntent intent;
  device.open_tcp(kServer, 443, intent, [&](bool ok) { established = ok; });
  sim.run_until(sim.now() + SimDuration::sec(1));
  EXPECT_TRUE(established);
  EXPECT_EQ(device.tcp_opened(), 1u);
  EXPECT_EQ(device.tcp_failed(), 0u);
  EXPECT_EQ(truth.no_dns_conns, 1u);  // direct open = no DNS
}

TEST_F(DeviceTest, SynRetransmitsThenGivesUpOnDeadServer) {
  bool result = true;
  device.open_tcp(kDeadServer, 443, netsim::TransferIntent{}, [&](bool ok) { result = ok; });
  sim.run_until(sim.now() + SimDuration::sec(15));
  EXPECT_FALSE(result);
  EXPECT_EQ(device.tcp_failed(), 1u);
}

TEST_F(DeviceTest, FetchResolvesThenConnects) {
  FetchResult out;
  device.fetch(a_name(), 443, netsim::TransferIntent{},
               [&](const FetchResult& r) { out = r; });
  sim.run_until(sim.now() + SimDuration::sec(2));
  EXPECT_TRUE(out.connected);
  EXPECT_TRUE(out.dns.success);
  EXPECT_FALSE(out.dns.from_cache);
  EXPECT_EQ(truth.fetches, 1u);
  EXPECT_EQ(truth.fetch_blocked, 1u);
  EXPECT_EQ(truth.no_dns_conns, 0u);  // name-driven connect is not "no DNS"
}

TEST_F(DeviceTest, SecondFetchUsesDeviceCache) {
  device.fetch(a_name(), 443, netsim::TransferIntent{});
  sim.run_until(sim.now() + SimDuration::sec(2));
  FetchResult out;
  device.fetch(a_name(), 443, netsim::TransferIntent{},
               [&](const FetchResult& r) { out = r; });
  sim.run_until(sim.now() + SimDuration::sec(2));
  EXPECT_TRUE(out.connected);
  EXPECT_TRUE(out.dns.from_cache);
  EXPECT_EQ(truth.fetch_cache_hits, 1u);
}

TEST_F(DeviceTest, FetchWithConnectDelayWaits) {
  FetchResult out;
  const SimTime t0 = sim.now();
  SimTime connected_at;
  device.fetch(a_name(), 443, netsim::TransferIntent{},
               [&](const FetchResult& r) {
                 out = r;
                 connected_at = sim.now();
               },
               SimDuration::sec(5));
  sim.run_until(sim.now() + SimDuration::sec(10));
  EXPECT_TRUE(out.connected);
  EXPECT_GT(connected_at - t0, SimDuration::sec(5));
}

TEST_F(DeviceTest, FetchOfUnknownNameFails) {
  FetchResult out;
  out.connected = true;
  device.fetch(dns::DomainName::must("no.such.name.example"), 443, netsim::TransferIntent{},
               [&](const FetchResult& r) { out = r; });
  sim.run_until(sim.now() + SimDuration::sec(2));
  EXPECT_FALSE(out.connected);
  EXPECT_FALSE(out.dns.success);
}

TEST_F(DeviceTest, PrefetchCountsAndWarmsCache) {
  device.prefetch(a_name());
  sim.run_until(sim.now() + SimDuration::sec(2));
  EXPECT_EQ(truth.prefetches, 1u);
  FetchResult out;
  device.fetch(a_name(), 443, netsim::TransferIntent{},
               [&](const FetchResult& r) { out = r; });
  sim.run_until(sim.now() + SimDuration::sec(2));
  EXPECT_TRUE(out.dns.from_cache);
}

TEST_F(DeviceTest, ConcurrentConnectionsUseDistinctPorts) {
  for (int i = 0; i < 5; ++i) device.open_tcp(kServer, 443, netsim::TransferIntent{});
  sim.run_until(sim.now() + SimDuration::sec(1));
  EXPECT_EQ(device.tcp_opened(), 5u);
  EXPECT_EQ(farm.tcp_conns_served(), 5u);
}

TEST_F(DeviceTest, ServerCloseCompletesLifecycle) {
  netsim::TransferIntent intent;
  intent.transfer_time = SimDuration::ms(200);
  device.open_tcp(kServer, 443, intent);
  // The device responds to the farm's FIN with its own FIN; run long
  // enough for the whole exchange and assert the farm forgot the conn
  // (a second stray segment would elicit an RST, not crash).
  sim.run_until(sim.now() + SimDuration::sec(5));
  EXPECT_EQ(farm.tcp_conns_served(), 1u);
}

}  // namespace
}  // namespace dnsctx::traffic
