// dnsctx — FlatMap / FlatSet unit tests: probe-length bounds across
// growth, backward-shift deletion (no tombstones), and randomized
// parity against std::unordered_map.
#include "util/flat_map.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace dnsctx::util {
namespace {

TEST(FlatMap, EmptyMapBasics) {
  FlatMap<std::uint32_t, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.find(7), m.end());
  EXPECT_FALSE(m.contains(7));
  EXPECT_EQ(m.erase(7), 0u);
  EXPECT_EQ(m.begin(), m.end());
}

TEST(FlatMap, InsertFindUpdate) {
  FlatMap<std::uint32_t, std::string> m;
  m[1] = "one";
  m[2] = "two";
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.at(1), "one");
  m[1] = "uno";
  EXPECT_EQ(m.at(1), "uno");
  EXPECT_EQ(m.size(), 2u);
  const auto [it, inserted] = m.try_emplace(2, "zwei");
  EXPECT_FALSE(inserted);
  EXPECT_EQ(it->second, "two");
  EXPECT_THROW((void)m.at(3), std::out_of_range);
}

TEST(FlatMap, EraseBackwardShiftKeepsProbeRunsReachable) {
  // Sequential integer keys through the splitmix hash land in pseudo-
  // random slots, forming wrapping probe runs. Erasing from the middle
  // of a run must backward-shift the followers so every remaining key
  // stays findable (the no-tombstone invariant).
  FlatMap<std::uint32_t, std::uint32_t> m;
  constexpr std::uint32_t kN = 4096;
  for (std::uint32_t k = 0; k < kN; ++k) m[k] = k * 3;
  for (std::uint32_t k = 0; k < kN; k += 2) EXPECT_EQ(m.erase(k), 1u);
  EXPECT_EQ(m.size(), kN / 2);
  for (std::uint32_t k = 0; k < kN; ++k) {
    if (k % 2 == 0) {
      EXPECT_FALSE(m.contains(k));
    } else {
      ASSERT_TRUE(m.contains(k)) << "key " << k << " lost after interleaved erase";
      EXPECT_EQ(m.at(k), k * 3);
    }
  }
}

TEST(FlatMap, ProbeLengthsStayBoundedAfterChurn) {
  // Tombstone-based deletion degrades probe lengths as churn accumulates;
  // backward-shift keeps them a function of the CURRENT load only. After
  // heavy insert/erase cycles at steady-state size, the max probe length
  // must stay small (far below the churn count).
  FlatMap<std::uint32_t, std::uint32_t> m;
  constexpr std::uint32_t kLive = 1024;
  for (std::uint32_t k = 0; k < kLive; ++k) m[k] = k;
  for (std::uint32_t round = 0; round < 64; ++round) {
    for (std::uint32_t i = 0; i < kLive; ++i) {
      m.erase(round * kLive + i);
      m[(round + 1) * kLive + i] = i;
    }
    EXPECT_EQ(m.size(), kLive);
  }
  // With ≤ 0.8 load and a well-mixed hash, expected max probe length is
  // O(log n); 64 is a generous ceiling that tombstones would blow past.
  EXPECT_LE(m.max_probe_length(), 64u);
}

TEST(FlatMap, GrowthPreservesContents) {
  FlatMap<std::uint64_t, std::uint64_t> m;
  for (std::uint64_t k = 1; k <= 100000; ++k) m[k * 0x9e3779b9ULL] = k;
  EXPECT_EQ(m.size(), 100000u);
  for (std::uint64_t k = 1; k <= 100000; ++k) {
    ASSERT_TRUE(m.contains(k * 0x9e3779b9ULL));
    EXPECT_EQ(m.at(k * 0x9e3779b9ULL), k);
  }
}

TEST(FlatMap, IterationVisitsEveryElementOnce) {
  FlatMap<std::uint32_t, std::uint32_t> m;
  for (std::uint32_t k = 0; k < 257; ++k) m[k] = k + 1;
  std::vector<std::uint32_t> seen;
  for (const auto& [k, v] : m) {
    EXPECT_EQ(v, k + 1);
    seen.push_back(k);
  }
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), 257u);
  for (std::uint32_t k = 0; k < 257; ++k) EXPECT_EQ(seen[k], k);
}

TEST(FlatMap, RandomizedParityWithUnorderedMap) {
  // Drive both maps with the same random operation stream; they must
  // agree on size, membership, and values at every step.
  FlatMap<std::uint32_t, std::uint64_t> flat;
  std::unordered_map<std::uint32_t, std::uint64_t> ref;
  Rng rng{0xf1a7f1a7};
  for (int step = 0; step < 200000; ++step) {
    const auto key = static_cast<std::uint32_t>(rng.bounded(512));  // dense → collisions
    switch (rng.bounded(4)) {
      case 0:
      case 1: {  // insert/overwrite
        const std::uint64_t val = rng();
        flat[key] = val;
        ref[key] = val;
        break;
      }
      case 2: {  // erase
        EXPECT_EQ(flat.erase(key), ref.erase(key));
        break;
      }
      default: {  // lookup
        const auto fit = flat.find(key);
        const auto rit = ref.find(key);
        ASSERT_EQ(fit == flat.end(), rit == ref.end());
        if (rit != ref.end()) ASSERT_EQ(fit->second, rit->second);
        break;
      }
    }
    ASSERT_EQ(flat.size(), ref.size());
  }
  // Final full sweep both directions.
  for (const auto& [k, v] : ref) {
    ASSERT_TRUE(flat.contains(k));
    ASSERT_EQ(flat.at(k), v);
  }
  for (const auto& [k, v] : flat) {
    const auto it = ref.find(k);
    ASSERT_NE(it, ref.end());
    ASSERT_EQ(it->second, v);
  }
}

TEST(FlatMap, Ipv4AddrKeys) {
  FlatMap<Ipv4Addr, int> m;
  const Ipv4Addr a = Ipv4Addr::from_u32(0x0a000001);
  const Ipv4Addr b = Ipv4Addr::from_u32(0x0a000002);
  m[a] = 1;
  m[b] = 2;
  EXPECT_EQ(m.at(a), 1);
  EXPECT_EQ(m.at(b), 2);
  EXPECT_EQ(m.erase(a), 1u);
  EXPECT_FALSE(m.contains(a));
  EXPECT_TRUE(m.contains(b));
}

TEST(FlatMap, ClearAndReuse) {
  FlatMap<std::uint32_t, int> m;
  for (std::uint32_t k = 0; k < 100; ++k) m[k] = 1;
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_FALSE(m.contains(5));
  m[5] = 7;
  EXPECT_EQ(m.at(5), 7);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatSet, InsertContainsEraseForEach) {
  FlatSet<std::uint32_t> s;
  for (std::uint32_t k = 0; k < 100; ++k) s.insert(k);
  s.insert(50);  // duplicate
  EXPECT_EQ(s.size(), 100u);
  EXPECT_TRUE(s.contains(99));
  EXPECT_EQ(s.erase(99), 1u);
  EXPECT_FALSE(s.contains(99));
  std::uint64_t sum = 0;
  s.for_each([&](std::uint32_t k) { sum += k; });
  EXPECT_EQ(sum, 99u * 100u / 2u - 99u);
}

}  // namespace
}  // namespace dnsctx::util
