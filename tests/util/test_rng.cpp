// Unit + statistical tests for the deterministic RNG and distributions.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/rng.hpp"

namespace dnsctx {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng{7};
  for (int i = 0; i < 1'000; ++i) {
    const double u = rng.uniform(5.0, 6.5);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 6.5);
  }
}

TEST(Rng, BoundedCoversRangeUniformly) {
  Rng rng{11};
  std::array<int, 8> counts{};
  const int n = 80'000;
  for (int i = 0; i < n; ++i) ++counts[rng.bounded(8)];
  for (const int c : counts) {
    EXPECT_NEAR(c, n / 8, n / 8 / 5);  // within 20%
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng{13};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1'000; ++i) {
    const auto v = rng.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values reachable
}

TEST(Rng, BernoulliFrequency) {
  Rng rng{17};
  int hits = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng{19};
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, NormalMoments) {
  Rng rng{23};
  double sum = 0.0, sq = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, LognormalMedian) {
  Rng rng{29};
  std::vector<double> xs;
  for (int i = 0; i < 20'001; ++i) xs.push_back(rng.lognormal(2.0, 0.5));
  std::nth_element(xs.begin(), xs.begin() + 10'000, xs.end());
  EXPECT_NEAR(xs[10'000], std::exp(2.0), 0.3);
}

TEST(Rng, ParetoWithinBounds) {
  Rng rng{31};
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.pareto(1.2, 10.0, 1'000.0);
    EXPECT_GE(x, 10.0 * 0.999);
    EXPECT_LE(x, 1'000.0 * 1.001);
  }
}

TEST(Rng, ParetoIsHeavyTailed) {
  Rng rng{37};
  int small = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    if (rng.pareto(1.2, 1.0, 1e6) < 10.0) ++small;
  }
  // Most mass near the low end is the defining property.
  EXPECT_GT(small, n / 2);
}

TEST(Rng, PickWeightedRespectsWeights) {
  Rng rng{41};
  const double weights[] = {1.0, 3.0, 6.0};
  std::array<int, 3> counts{};
  const int n = 60'000;
  for (int i = 0; i < n; ++i) ++counts[rng.pick_weighted(weights)];
  EXPECT_NEAR(counts[0], n / 10, n / 50);
  EXPECT_NEAR(counts[1], 3 * n / 10, n / 50);
  EXPECT_NEAR(counts[2], 6 * n / 10, n / 50);
}

TEST(Rng, PickWeightedRejectsEmpty) {
  Rng rng{43};
  EXPECT_THROW((void)rng.pick_weighted({}), std::invalid_argument);
  const double zeros[] = {0.0, 0.0};
  EXPECT_THROW((void)rng.pick_weighted(zeros), std::invalid_argument);
}

TEST(DeriveSeed, LabelsAreIndependent) {
  const auto a = derive_seed(42, "alpha");
  const auto b = derive_seed(42, "beta");
  const auto c = derive_seed(43, "alpha");
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a, derive_seed(42, "alpha"));  // stable
}

TEST(DeriveSeed, IndexedVariantsDiffer) {
  const auto a = derive_seed(42, "house", 0);
  const auto b = derive_seed(42, "house", 1);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, derive_seed(42, "house", 0));
}

class ZipfParamTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfParamTest, PmfSumsToOneAndDecreases) {
  const ZipfSampler z{100, GetParam()};
  double sum = 0.0;
  for (std::size_t r = 0; r < 100; ++r) {
    sum += z.pmf(r);
    if (r > 0) {
      EXPECT_LE(z.pmf(r), z.pmf(r - 1) + 1e-12);
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_P(ZipfParamTest, SampleFrequencyTracksPmf) {
  const ZipfSampler z{50, GetParam()};
  Rng rng{47};
  std::array<int, 50> counts{};
  const int n = 200'000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(rng)];
  // Head rank should match its pmf closely.
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, z.pmf(0), 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, z.pmf(1), 0.01);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfParamTest, ::testing::Values(0.5, 0.8, 1.0, 1.2));

TEST(Zipf, RejectsEmpty) { EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument); }

TEST(Zipf, PmfOutOfRangeIsZero) {
  const ZipfSampler z{10, 1.0};
  EXPECT_EQ(z.pmf(10), 0.0);
}

}  // namespace
}  // namespace dnsctx
