// Unit tests for the deterministic parallel execution helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/parallel.hpp"

namespace dnsctx::util {
namespace {

TEST(Parallel, ResolveThreadCount) {
  EXPECT_EQ(resolve_thread_count(1), 1u);
  EXPECT_EQ(resolve_thread_count(7), 7u);
  EXPECT_GE(resolve_thread_count(0), 1u);  // hardware concurrency, at least one
}

TEST(Parallel, ChunkCountIsThreadIndependent) {
  EXPECT_EQ(chunk_count(0, 100), 0u);
  EXPECT_EQ(chunk_count(1, 100), 1u);
  EXPECT_EQ(chunk_count(100, 100), 1u);
  EXPECT_EQ(chunk_count(101, 100), 2u);
  EXPECT_EQ(chunk_count(250, 100), 3u);
}

TEST(Parallel, ForEachCoversEveryIndexOnce) {
  for (const unsigned threads : {1u, 2u, 5u}) {
    std::vector<std::atomic<int>> hits(1'000);
    parallel_for_each(threads, hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(Parallel, ForChunksPartitionIsExact) {
  for (const unsigned threads : {1u, 3u, 8u}) {
    std::vector<std::atomic<int>> hits(10'000);
    parallel_for_chunks(threads, hits.size(), 256, [&](std::size_t begin, std::size_t end) {
      EXPECT_LE(end - begin, 256u);
      for (std::size_t i = begin; i < end; ++i) ++hits[i];
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(Parallel, MapReduceMatchesSerialForAnyThreadCount) {
  std::vector<std::uint64_t> xs(100'000);
  std::iota(xs.begin(), xs.end(), 1);
  const std::uint64_t expected = std::accumulate(xs.begin(), xs.end(), std::uint64_t{0});

  for (const unsigned threads : {1u, 2u, 4u, 16u}) {
    const std::uint64_t sum = parallel_map_reduce<std::uint64_t>(
        threads, xs.size(), 1'024,
        [&](std::size_t begin, std::size_t end) {
          std::uint64_t part = 0;
          for (std::size_t i = begin; i < end; ++i) part += xs[i];
          return part;
        },
        [](std::uint64_t& into, std::uint64_t&& part) { into += part; });
    EXPECT_EQ(sum, expected);
  }
}

TEST(Parallel, MapReduceReducesInChunkOrder) {
  // Record the chunk-begin order seen by the reducer: it must be
  // ascending regardless of which thread finished first.
  for (const unsigned threads : {1u, 4u}) {
    const auto order = parallel_map_reduce<std::vector<std::size_t>>(
        threads, 5'000, 100,
        [](std::size_t begin, std::size_t) { return std::vector<std::size_t>{begin}; },
        [](std::vector<std::size_t>& into, std::vector<std::size_t>&& part) {
          into.insert(into.end(), part.begin(), part.end());
        });
    ASSERT_EQ(order.size(), 50u);
    for (std::size_t i = 0; i + 1 < order.size(); ++i) EXPECT_LT(order[i], order[i + 1]);
  }
}

TEST(Parallel, ExceptionsPropagateFromWorkers) {
  EXPECT_THROW(parallel_for_each(4, 1'000,
                                 [](std::size_t i) {
                                   if (i == 613) throw std::runtime_error{"boom"};
                                 }),
               std::runtime_error);
}

TEST(Parallel, PoolIsReusableAcrossDispatches) {
  ThreadPool pool{4};
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.dispatch(37, [&](std::size_t) { ++sum; });
    EXPECT_EQ(sum.load(), 37);
  }
}

TEST(Parallel, ZeroItemsIsANoOp) {
  parallel_for_each(8, 0, [](std::size_t) { FAIL() << "no work expected"; });
  const int acc = parallel_map_reduce<int>(
      8, 0, 16, [](std::size_t, std::size_t) { return 1; },
      [](int& into, int&& part) { into += part; });
  EXPECT_EQ(acc, 0);
}

}  // namespace
}  // namespace dnsctx::util
