// Unit tests for the statistics toolkit.
#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace dnsctx {
namespace {

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StreamingStats, MatchesDirectComputation) {
  StreamingStats s;
  const double xs[] = {1.0, 2.0, 4.0, 8.0};
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.75);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
  // Population variance of {1,2,4,8}.
  EXPECT_NEAR(s.variance(), 7.1875, 1e-12);
}

TEST(StreamingStats, SingleValue) {
  StreamingStats s;
  s.add(-3.5);
  EXPECT_DOUBLE_EQ(s.mean(), -3.5);
  EXPECT_DOUBLE_EQ(s.min(), -3.5);
  EXPECT_DOUBLE_EQ(s.max(), -3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Cdf, QuantilesInterpolate) {
  Cdf c;
  for (int i = 1; i <= 5; ++i) c.add(i);  // 1..5
  EXPECT_DOUBLE_EQ(c.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(c.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(c.median(), 3.0);
  EXPECT_DOUBLE_EQ(c.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(c.quantile(0.125), 1.5);  // interpolated
}

TEST(Cdf, QuantileOnEmptyThrows) {
  const Cdf c;
  EXPECT_THROW((void)c.quantile(0.5), std::logic_error);
}

TEST(Cdf, FractionAtOrBelow) {
  Cdf c;
  for (int i = 1; i <= 10; ++i) c.add(i);
  EXPECT_DOUBLE_EQ(c.fraction_at_or_below(5.0), 0.5);
  EXPECT_DOUBLE_EQ(c.fraction_at_or_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(c.fraction_at_or_below(10.0), 1.0);
  EXPECT_DOUBLE_EQ(c.fraction_above(5.0), 0.5);
}

TEST(Cdf, EmptyFractions) {
  const Cdf c;
  EXPECT_EQ(c.fraction_at_or_below(1.0), 0.0);
  EXPECT_EQ(c.fraction_above(1.0), 0.0);
}

TEST(Cdf, AddAfterQueryResorts) {
  Cdf c;
  c.add(10.0);
  c.add(1.0);
  EXPECT_DOUBLE_EQ(c.min(), 1.0);
  c.add(0.5);  // after a query
  EXPECT_DOUBLE_EQ(c.min(), 0.5);
  EXPECT_DOUBLE_EQ(c.max(), 10.0);
}

TEST(Cdf, AddAllAndSortedView) {
  Cdf c;
  const double xs[] = {3.0, 1.0, 2.0};
  c.add_all(xs);
  const auto sorted = c.sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_DOUBLE_EQ(sorted[0], 1.0);
  EXPECT_DOUBLE_EQ(sorted[2], 3.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h{0.0, 10.0, 10};
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 9
  h.add(-5.0);  // clamps to bin 0
  h.add(42.0);  // clamps to bin 9
  EXPECT_EQ(h.count_in(0), 2u);
  EXPECT_EQ(h.count_in(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, ModeBin) {
  Histogram h{0.0, 3.0, 3};
  h.add(1.5);
  h.add(1.6);
  h.add(0.2);
  EXPECT_EQ(h.mode_bin(), 1u);
  EXPECT_DOUBLE_EQ(h.bin_low(1), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_width(), 1.0);
}

TEST(Histogram, RejectsBadConfig) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
}

TEST(SampleCdf, ProducesMonotoneSeries) {
  Cdf c;
  for (int i = 0; i < 100; ++i) c.add(i * i);
  const auto pts = sample_cdf(c, 10);
  ASSERT_EQ(pts.size(), 11u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].x, pts[i - 1].x);
    EXPECT_GT(pts[i].f, pts[i - 1].f);
  }
  EXPECT_DOUBLE_EQ(pts.front().f, 0.0);
  EXPECT_DOUBLE_EQ(pts.back().f, 1.0);
}

TEST(SampleCdf, EmptyInputs) {
  const Cdf c;
  EXPECT_TRUE(sample_cdf(c, 10).empty());
  Cdf c2;
  c2.add(1.0);
  EXPECT_TRUE(sample_cdf(c2, 0).empty());
}

TEST(RenderAsciiCdf, ContainsLabelAndRows) {
  Cdf c;
  for (int i = 0; i < 50; ++i) c.add(i);
  const auto out = render_ascii_cdf(c, "delay", "ms", 4);
  EXPECT_NE(out.find("delay"), std::string::npos);
  EXPECT_NE(out.find("p100"), std::string::npos);
}

}  // namespace
}  // namespace dnsctx
