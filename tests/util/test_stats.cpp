// Unit tests for the statistics toolkit.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "util/stats.hpp"

namespace dnsctx {
namespace {

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StreamingStats, MatchesDirectComputation) {
  StreamingStats s;
  const double xs[] = {1.0, 2.0, 4.0, 8.0};
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.75);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
  // Population variance of {1,2,4,8}.
  EXPECT_NEAR(s.variance(), 7.1875, 1e-12);
}

TEST(StreamingStats, SingleValue) {
  StreamingStats s;
  s.add(-3.5);
  EXPECT_DOUBLE_EQ(s.mean(), -3.5);
  EXPECT_DOUBLE_EQ(s.min(), -3.5);
  EXPECT_DOUBLE_EQ(s.max(), -3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Cdf, QuantilesInterpolate) {
  Cdf c;
  for (int i = 1; i <= 5; ++i) c.add(i);  // 1..5
  EXPECT_DOUBLE_EQ(c.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(c.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(c.median(), 3.0);
  EXPECT_DOUBLE_EQ(c.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(c.quantile(0.125), 1.5);  // interpolated
}

TEST(Cdf, QuantileOnEmptyThrows) {
  const Cdf c;
  EXPECT_THROW((void)c.quantile(0.5), std::logic_error);
}

TEST(Cdf, FractionAtOrBelow) {
  Cdf c;
  for (int i = 1; i <= 10; ++i) c.add(i);
  EXPECT_DOUBLE_EQ(c.fraction_at_or_below(5.0), 0.5);
  EXPECT_DOUBLE_EQ(c.fraction_at_or_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(c.fraction_at_or_below(10.0), 1.0);
  EXPECT_DOUBLE_EQ(c.fraction_above(5.0), 0.5);
}

TEST(Cdf, EmptyFractions) {
  const Cdf c;
  EXPECT_EQ(c.fraction_at_or_below(1.0), 0.0);
  EXPECT_EQ(c.fraction_above(1.0), 0.0);
}

TEST(Cdf, AddAfterQueryResorts) {
  Cdf c;
  c.add(10.0);
  c.add(1.0);
  EXPECT_DOUBLE_EQ(c.min(), 1.0);
  c.add(0.5);  // after a query
  EXPECT_DOUBLE_EQ(c.min(), 0.5);
  EXPECT_DOUBLE_EQ(c.max(), 10.0);
}

TEST(Cdf, AddAllAndSortedView) {
  Cdf c;
  const double xs[] = {3.0, 1.0, 2.0};
  c.add_all(xs);
  const auto sorted = c.sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_DOUBLE_EQ(sorted[0], 1.0);
  EXPECT_DOUBLE_EQ(sorted[2], 3.0);
}

TEST(Cdf, QuantileExactBoundaries) {
  Cdf c;
  c.add(7.0);
  // A single sample: every quantile is that sample.
  EXPECT_DOUBLE_EQ(c.quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(c.quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(c.quantile(1.0), 7.0);

  Cdf d;
  d.add(1.0);
  d.add(2.0);
  // Two samples: q=0.5 sits exactly between the order statistics.
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 1.5);
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 2.0);
}

TEST(Cdf, FractionAtOrBelowWithTies) {
  Cdf c;
  // {1, 2, 2, 2, 3}: ties must all count at their value.
  c.add(1.0);
  c.add(2.0);
  c.add(2.0);
  c.add(2.0);
  c.add(3.0);
  EXPECT_DOUBLE_EQ(c.fraction_at_or_below(2.0), 0.8);
  EXPECT_DOUBLE_EQ(c.fraction_at_or_below(1.9999), 0.2);
  EXPECT_DOUBLE_EQ(c.fraction_above(2.0), 1.0 - 0.8);
}

TEST(Cdf, AbsorbEmptyAndIntoEmpty) {
  Cdf filled;
  filled.add(1.0);
  filled.add(2.0);
  const Cdf empty;

  Cdf a = filled;       // absorb empty into filled: unchanged
  a.absorb(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.median(), 1.5);

  Cdf b;                // absorb filled into empty: becomes filled
  b.absorb(filled);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.median(), 1.5);

  Cdf c;                // empty into empty: still empty and queryable-safe
  c.absorb(empty);
  EXPECT_TRUE(c.empty());
}

TEST(Cdf, SealMakesQueriesPureReads) {
  Cdf c;
  c.add(3.0);
  c.add(1.0);
  EXPECT_FALSE(c.sealed());
  c.seal();
  EXPECT_TRUE(c.sealed());
  EXPECT_DOUBLE_EQ(c.min(), 1.0);
  c.add(0.5);  // mutation unseals
  EXPECT_FALSE(c.sealed());
  c.seal();
  EXPECT_DOUBLE_EQ(c.min(), 0.5);
}

TEST(Cdf, CopyAndMovePreserveSamples) {
  Cdf src;
  src.add(2.0);
  src.add(1.0);
  const Cdf copied = src;  // copy of an unsealed Cdf
  EXPECT_DOUBLE_EQ(copied.median(), 1.5);

  Cdf moved = std::move(src);
  EXPECT_DOUBLE_EQ(moved.median(), 1.5);

  Cdf assigned;
  assigned = copied;
  EXPECT_DOUBLE_EQ(assigned.median(), 1.5);
  assigned = std::move(moved);
  EXPECT_DOUBLE_EQ(assigned.median(), 1.5);
}

// Regression for the const-query data race: many threads issuing the
// FIRST queries against a shared, unsealed Cdf all race into the lazy
// sort, which must be internally synchronized. Run under TSan.
TEST(Cdf, ConcurrentFirstQueriesOnUnsealedCdf) {
  Cdf c;
  for (int i = 999; i >= 0; --i) c.add(i);
  ASSERT_FALSE(c.sealed());
  constexpr int kThreads = 8;
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  std::vector<double> medians(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&c, &medians, t] {
      medians[static_cast<std::size_t>(t)] =
          c.quantile(0.5) + c.fraction_at_or_below(500.0) + c.sorted().front();
    });
  }
  for (auto& r : readers) r.join();
  for (double m : medians) EXPECT_DOUBLE_EQ(m, medians[0]);
}

// And the sealed contract: ≥4 threads reading a sealed Cdf concurrently
// never touch the lock (lock-free read side). Run under TSan.
TEST(Cdf, ConcurrentReadsOfSealedCdf) {
  Cdf c;
  for (int i = 0; i < 1000; ++i) c.add(static_cast<double>(i % 97));
  c.seal();
  ASSERT_TRUE(c.sealed());
  constexpr int kThreads = 4;
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&c] {
      for (int i = 0; i < 100; ++i) {
        EXPECT_DOUBLE_EQ(c.quantile(1.0), 96.0);
        EXPECT_GT(c.fraction_at_or_below(50.0), 0.0);
      }
    });
  }
  for (auto& r : readers) r.join();
}

TEST(Histogram, BinningAndClamping) {
  Histogram h{0.0, 10.0, 10};
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 9
  h.add(-5.0);  // clamps to bin 0
  h.add(42.0);  // clamps to bin 9
  EXPECT_EQ(h.count_in(0), 2u);
  EXPECT_EQ(h.count_in(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, ModeBin) {
  Histogram h{0.0, 3.0, 3};
  h.add(1.5);
  h.add(1.6);
  h.add(0.2);
  EXPECT_EQ(h.mode_bin(), 1u);
  EXPECT_DOUBLE_EQ(h.bin_low(1), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_width(), 1.0);
}

TEST(Histogram, RejectsBadConfig) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
}

// Regression for the UB in Histogram::add: the bin index used to be
// computed as an integral cast of an unclamped double, so ±inf and
// values beyond ±2^63 were undefined behaviour. They must clamp to the
// edge bins; NaN must be tallied as invalid, never binned.
TEST(Histogram, ExtremeValuesClampInFloatingPoint) {
  Histogram h{0.0, 10.0, 10};
  const double inf = std::numeric_limits<double>::infinity();
  h.add(inf);        // +inf -> top bin
  h.add(-inf);       // -inf -> bottom bin
  h.add(1e300);      // far beyond 2^63 -> top bin
  h.add(-1e300);     // far below -2^63 -> bottom bin
  EXPECT_EQ(h.count_in(9), 2u);
  EXPECT_EQ(h.count_in(0), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.invalid(), 0u);
}

TEST(Histogram, NanIsCountedInvalidNotBinned) {
  Histogram h{0.0, 10.0, 10};
  h.add(std::nan(""));
  h.add(5.0);
  h.add(std::numeric_limits<double>::quiet_NaN(), 3);  // weighted NaN
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.invalid(), 4u);
  EXPECT_EQ(h.count_in(5), 1u);
}

TEST(Histogram, WeightedAddReachesTheSameBins) {
  Histogram h{0.0, 4.0, 4};
  h.add(1.5, 10);
  h.add(99.0, 2);  // clamps into the top bin, weight preserved
  EXPECT_EQ(h.count_in(1), 10u);
  EXPECT_EQ(h.count_in(3), 2u);
  EXPECT_EQ(h.total(), 12u);
}

TEST(SampleCdf, ProducesMonotoneSeries) {
  Cdf c;
  for (int i = 0; i < 100; ++i) c.add(i * i);
  const auto pts = sample_cdf(c, 10);
  ASSERT_EQ(pts.size(), 11u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].x, pts[i - 1].x);
    EXPECT_GT(pts[i].f, pts[i - 1].f);
  }
  EXPECT_DOUBLE_EQ(pts.front().f, 0.0);
  EXPECT_DOUBLE_EQ(pts.back().f, 1.0);
}

TEST(SampleCdf, EmptyInputs) {
  const Cdf c;
  EXPECT_TRUE(sample_cdf(c, 10).empty());
  Cdf c2;
  c2.add(1.0);
  EXPECT_TRUE(sample_cdf(c2, 0).empty());
}

TEST(SampleCdf, SinglePointSpansMinToMax) {
  Cdf c;
  c.add(1.0);
  c.add(9.0);
  const auto pts = sample_cdf(c, 1);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_DOUBLE_EQ(pts.front().x, 1.0);
  EXPECT_DOUBLE_EQ(pts.front().f, 0.0);
  EXPECT_DOUBLE_EQ(pts.back().x, 9.0);
  EXPECT_DOUBLE_EQ(pts.back().f, 1.0);
}

TEST(RenderAsciiCdf, ContainsLabelAndRows) {
  Cdf c;
  for (int i = 0; i < 50; ++i) c.add(i);
  const auto out = render_ascii_cdf(c, "delay", "ms", 4);
  EXPECT_NE(out.find("delay"), std::string::npos);
  EXPECT_NE(out.find("p100"), std::string::npos);
}

}  // namespace
}  // namespace dnsctx
