// Unit tests for IPv4 addressing and five-tuples.
#include <gtest/gtest.h>

#include "util/ip.hpp"

namespace dnsctx {
namespace {

TEST(Ipv4Addr, OctetConstruction) {
  const Ipv4Addr a{8, 8, 4, 4};
  EXPECT_EQ(a.to_u32(), 0x08080404u);
  EXPECT_EQ(a.to_string(), "8.8.4.4");
}

TEST(Ipv4Addr, DefaultIsUnspecified) {
  EXPECT_TRUE(Ipv4Addr{}.is_unspecified());
  EXPECT_FALSE(Ipv4Addr(1, 2, 3, 4).is_unspecified());
}

struct ParseCase {
  const char* text;
  bool ok;
};

class Ipv4ParseTest : public ::testing::TestWithParam<ParseCase> {};

TEST_P(Ipv4ParseTest, ParseValidation) {
  const auto& c = GetParam();
  const auto parsed = Ipv4Addr::parse(c.text);
  EXPECT_EQ(parsed.has_value(), c.ok) << c.text;
  if (parsed) {
    EXPECT_EQ(parsed->to_string(), c.text);
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, Ipv4ParseTest,
                         ::testing::Values(ParseCase{"0.0.0.0", true},
                                           ParseCase{"255.255.255.255", true},
                                           ParseCase{"192.168.1.10", true},
                                           ParseCase{"1.2.3", false},
                                           ParseCase{"1.2.3.4.5", false},
                                           ParseCase{"256.1.1.1", false},
                                           ParseCase{"1..2.3", false},
                                           ParseCase{"a.b.c.d", false},
                                           ParseCase{"", false},
                                           ParseCase{"1.2.3.4 ", false}));

TEST(Ipv4Addr, RoundTripAllOctetEdges) {
  for (const auto v : {0u, 1u, 0x7f000001u, 0xffffffffu, 0x08080808u}) {
    const auto a = Ipv4Addr::from_u32(v);
    const auto parsed = Ipv4Addr::parse(a.to_string());
    ASSERT_TRUE(parsed);
    EXPECT_EQ(*parsed, a);
  }
}

TEST(Ipv4Addr, Ordering) {
  EXPECT_LT(Ipv4Addr(1, 0, 0, 0), Ipv4Addr(2, 0, 0, 0));
  EXPECT_EQ(Ipv4Addr(1, 2, 3, 4), Ipv4Addr(1, 2, 3, 4));
}

TEST(FiveTuple, ReversedSwapsEndpoints) {
  const FiveTuple t{Ipv4Addr{1, 1, 1, 1}, Ipv4Addr{2, 2, 2, 2}, 1'234, 443, Proto::kTcp};
  const FiveTuple r = t.reversed();
  EXPECT_EQ(r.orig_ip, t.resp_ip);
  EXPECT_EQ(r.resp_port, t.orig_port);
  EXPECT_EQ(r.proto, t.proto);
  EXPECT_EQ(r.reversed(), t);
}

TEST(FiveTuple, HashDistinguishesDirections) {
  const FiveTuple t{Ipv4Addr{1, 1, 1, 1}, Ipv4Addr{2, 2, 2, 2}, 1'234, 443, Proto::kTcp};
  EXPECT_NE(FiveTupleHash{}(t), FiveTupleHash{}(t.reversed()));
}

TEST(FiveTuple, HashDistinguishesProto) {
  FiveTuple t{Ipv4Addr{1, 1, 1, 1}, Ipv4Addr{2, 2, 2, 2}, 1'234, 443, Proto::kTcp};
  FiveTuple u = t;
  u.proto = Proto::kUdp;
  EXPECT_NE(t, u);
  EXPECT_NE(FiveTupleHash{}(t), FiveTupleHash{}(u));
}

TEST(Proto, Names) {
  EXPECT_EQ(to_string(Proto::kTcp), "tcp");
  EXPECT_EQ(to_string(Proto::kUdp), "udp");
}

}  // namespace
}  // namespace dnsctx
