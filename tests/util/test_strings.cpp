// Unit tests for string helpers.
#include <gtest/gtest.h>

#include <cwchar>

#include "util/strings.hpp"

namespace dnsctx {
namespace {

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(to_lower("AbC-123"), "abc-123");
  EXPECT_EQ(to_lower(""), "");
}

TEST(Split, KeepsEmptyFields) {
  const auto parts = split("a\t\tb", '\t');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Split, TrailingDelimiterYieldsEmptyTail) {
  const auto parts = split("x,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "");
}

TEST(Split, EmptyStringIsOneEmptyField) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(IsSubdomainOf, LabelBoundaries) {
  EXPECT_TRUE(is_subdomain_of("a.b.example.com", "example.com"));
  EXPECT_TRUE(is_subdomain_of("example.com", "example.com"));
  EXPECT_FALSE(is_subdomain_of("notexample.com", "example.com"));
  EXPECT_FALSE(is_subdomain_of("example.com", "a.example.com"));
  EXPECT_FALSE(is_subdomain_of("example.com", ""));
}

TEST(Strfmt, FormatsLikePrintf) {
  EXPECT_EQ(strfmt("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strfmt("%.2f", 1.005), "1.00");
  EXPECT_EQ(strfmt("plain"), "plain");
}

TEST(Strfmt, LongOutput) {
  const std::string long_str(500, 'z');
  EXPECT_EQ(strfmt("%s", long_str.c_str()).size(), 500u);
}

TEST(Strfmt, EncodingErrorYieldsEmptyString) {
  // %lc with a value no valid wide character encodes to makes vsnprintf
  // report an encoding error (negative return). strfmt must degrade to
  // an empty string instead of resizing by a negative count.
  EXPECT_EQ(strfmt("%lc", static_cast<wint_t>(0x110000)), "");
  EXPECT_EQ(strfmt("pre %lc post", static_cast<wint_t>(0xD800)), "");
}

TEST(Strfmt, EmptyFormat) { EXPECT_EQ(strfmt("%s", ""), ""); }

}  // namespace
}  // namespace dnsctx
