// Unit tests for SimTime / SimDuration.
#include <gtest/gtest.h>

#include "util/time.hpp"

namespace dnsctx {
namespace {

TEST(SimDuration, FactoriesAgree) {
  EXPECT_EQ(SimDuration::ms(1).count_us(), 1'000);
  EXPECT_EQ(SimDuration::sec(1).count_us(), 1'000'000);
  EXPECT_EQ(SimDuration::min(2).count_us(), 120'000'000);
  EXPECT_EQ(SimDuration::hours(1), SimDuration::min(60));
  EXPECT_EQ(SimDuration::days(1), SimDuration::hours(24));
}

TEST(SimDuration, FractionalFactories) {
  EXPECT_EQ(SimDuration::from_ms(1.5).count_us(), 1'500);
  EXPECT_EQ(SimDuration::from_sec(0.25).count_us(), 250'000);
  EXPECT_EQ(SimDuration::from_ms(0.001).count_us(), 1);
}

TEST(SimDuration, Arithmetic) {
  const auto a = SimDuration::ms(10);
  const auto b = SimDuration::ms(3);
  EXPECT_EQ((a + b).count_us(), 13'000);
  EXPECT_EQ((a - b).count_us(), 7'000);
  EXPECT_EQ((a * 3).count_us(), 30'000);
  EXPECT_EQ((a / 2).count_us(), 5'000);
  auto c = a;
  c += b;
  EXPECT_EQ(c, SimDuration::ms(13));
  c -= b;
  EXPECT_EQ(c, a);
}

TEST(SimDuration, Comparisons) {
  EXPECT_LT(SimDuration::ms(1), SimDuration::ms(2));
  EXPECT_GE(SimDuration::sec(1), SimDuration::ms(1'000));
  EXPECT_EQ(SimDuration::zero().count_us(), 0);
  EXPECT_GT(SimDuration::max(), SimDuration::days(10'000));
}

TEST(SimDuration, Conversions) {
  EXPECT_DOUBLE_EQ(SimDuration::ms(1'500).to_sec(), 1.5);
  EXPECT_DOUBLE_EQ(SimDuration::us(1'500).to_ms(), 1.5);
}

TEST(SimDuration, NegativeValuesSupported) {
  const auto d = SimDuration::ms(1) - SimDuration::ms(5);
  EXPECT_EQ(d.count_us(), -4'000);
  EXPECT_LT(d, SimDuration::zero());
}

TEST(SimTime, OriginAndOffsets) {
  const auto t0 = SimTime::origin();
  EXPECT_EQ(t0.count_us(), 0);
  const auto t1 = t0 + SimDuration::sec(5);
  EXPECT_EQ(t1.count_us(), 5'000'000);
  EXPECT_EQ(t1 - t0, SimDuration::sec(5));
  EXPECT_EQ(t1 - SimDuration::sec(5), t0);
}

TEST(SimTime, CompoundAssignment) {
  auto t = SimTime::from_us(100);
  t += SimDuration::us(23);
  EXPECT_EQ(t.count_us(), 123);
}

TEST(SimTime, Ordering) {
  EXPECT_LT(SimTime::origin(), SimTime::from_us(1));
  EXPECT_LT(SimTime::from_us(1), SimTime::max());
}

TEST(TimeFormatting, HumanReadable) {
  EXPECT_EQ(to_string(SimDuration::us(500)), "500us");
  EXPECT_EQ(to_string(SimDuration::ms(12)), "12ms");
  EXPECT_EQ(to_string(SimDuration::sec(3)), "3s");
  EXPECT_NE(to_string(SimTime::from_us(1'500'000)).find("1.5"), std::string::npos);
}

// Regression: the unit used to be picked by the SIGNED millisecond value,
// so every negative duration fell through to the microsecond branch
// ("-2500us" instead of "-2.5ms"). Units must mirror the positive case.
TEST(TimeFormatting, NegativeDurationsMirrorPositive) {
  EXPECT_EQ(to_string(SimDuration::us(-500)), "-500us");
  EXPECT_EQ(to_string(SimDuration::us(-2500)), "-2.5ms");
  EXPECT_EQ(to_string(SimDuration::ms(-12)), "-12ms");
  EXPECT_EQ(to_string(SimDuration::sec(-3)), "-3s");
  EXPECT_EQ(to_string(SimDuration::zero()), "0us");
}

}  // namespace
}  // namespace dnsctx
