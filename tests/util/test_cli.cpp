// Unit tests for the CLI argument parser.
#include <gtest/gtest.h>

#include "util/cli.hpp"

namespace dnsctx {
namespace {

[[nodiscard]] CliArgs parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> v{tokens};
  return parse_cli(std::span<const char* const>{v.data(), v.size()});
}

TEST(Cli, PositionalsKeptInOrder) {
  const auto args = parse({"simulate", "extra"});
  ASSERT_EQ(args.positionals.size(), 2u);
  EXPECT_EQ(args.positionals[0], "simulate");
  EXPECT_EQ(args.positionals[1], "extra");
}

TEST(Cli, OptionWithSeparateValue) {
  const auto args = parse({"--houses", "40"});
  EXPECT_EQ(args.option("houses"), "40");
  EXPECT_TRUE(args.positionals.empty());
}

TEST(Cli, OptionWithEqualsValue) {
  const auto args = parse({"--seed=99"});
  EXPECT_EQ(args.option("seed"), "99");
}

TEST(Cli, BareFlagAndTrailingFlag) {
  const auto args = parse({"--verbose", "--csv", "--quiet"});
  EXPECT_TRUE(args.has_flag("verbose"));  // next token is an option → flag
  EXPECT_TRUE(args.has_flag("csv"));
  EXPECT_TRUE(args.has_flag("quiet"));    // nothing after → flag
}

TEST(Cli, FlagFollowedByPositionalConsumesIt) {
  const auto args = parse({"--out", "/tmp/x", "analyze"});
  EXPECT_EQ(args.option("out"), "/tmp/x");
  ASSERT_EQ(args.positionals.size(), 1u);
  EXPECT_EQ(args.positionals[0], "analyze");
}

TEST(Cli, EmptyValueViaEquals) {
  const auto args = parse({"--name="});
  EXPECT_EQ(args.option("name"), "");
}

TEST(Cli, DoubleDashAloneIsPositional) {
  const auto args = parse({"--"});
  ASSERT_EQ(args.positionals.size(), 1u);
  EXPECT_EQ(args.positionals[0], "--");
}

TEST(Cli, IntOptionParsing) {
  const auto args = parse({"--houses", "40"});
  EXPECT_EQ(args.int_option_or("houses", 7), 40);
  EXPECT_EQ(args.int_option_or("missing", 7), 7);
  const auto bad = parse({"--houses", "many"});
  EXPECT_THROW((void)bad.int_option_or("houses", 0), std::runtime_error);
}

TEST(Cli, DoubleOptionParsing) {
  const auto args = parse({"--scale", "1.5"});
  EXPECT_DOUBLE_EQ(args.double_option_or("scale", 1.0), 1.5);
  EXPECT_DOUBLE_EQ(args.double_option_or("missing", 2.0), 2.0);
}

TEST(Cli, UnknownKeyDetection) {
  const auto args = parse({"--houses", "40", "--tpyo", "--out=x"});
  const auto unknown = args.unknown_keys({"houses", "out"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "tpyo");
}

TEST(Cli, OptionOrFallback) {
  const auto args = parse({});
  EXPECT_EQ(args.option_or("x", "fallback"), "fallback");
  EXPECT_FALSE(args.option("x").has_value());
}

}  // namespace
}  // namespace dnsctx
