// dnsctx — NameTable / InternedName unit tests: interning identity,
// reverse lookup, concurrent interning, and collision-heavy workloads.
#include "util/names.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace dnsctx::util {
namespace {

TEST(NameTable, EmptyStringIsIdZero) {
  NameTable table;
  EXPECT_EQ(table.intern(""), 0u);
  EXPECT_EQ(table.view(0), "");
  EXPECT_EQ(table.size(), 1u);  // the empty string is pre-seeded
}

TEST(NameTable, InternIsIdempotent) {
  NameTable table;
  const NameId a = table.intern("www.example.com");
  const NameId b = table.intern("www.example.com");
  EXPECT_EQ(a, b);
  EXPECT_EQ(table.size(), 2u);
}

TEST(NameTable, DistinctNamesGetDistinctIds) {
  NameTable table;
  const NameId a = table.intern("a.example.com");
  const NameId b = table.intern("b.example.com");
  EXPECT_NE(a, b);
  EXPECT_EQ(table.view(a), "a.example.com");
  EXPECT_EQ(table.view(b), "b.example.com");
}

TEST(NameTable, ReverseLookupRoundTrips) {
  NameTable table;
  std::vector<std::pair<std::string, NameId>> interned;
  for (int i = 0; i < 1000; ++i) {
    std::string name = "host" + std::to_string(i) + ".example.com";
    interned.emplace_back(name, table.intern(name));
  }
  for (const auto& [name, id] : interned) {
    EXPECT_EQ(table.view(id), name);
  }
}

TEST(NameTable, ViewThrowsOnUnknownId) {
  NameTable table;
  EXPECT_THROW((void)table.view(12345), std::out_of_range);
}

TEST(NameTable, ViewsStayStableAcrossGrowth) {
  // The arena is a deque of strings: growth must not move earlier
  // entries, so a view taken early stays valid forever.
  NameTable table;
  const NameId first = table.intern("pinned.example.com");
  const std::string_view early = table.view(first);
  const char* data = early.data();
  for (int i = 0; i < 10000; ++i) {
    table.intern("filler" + std::to_string(i) + ".example.com");
  }
  EXPECT_EQ(table.view(first).data(), data);
  EXPECT_EQ(table.view(first), "pinned.example.com");
}

TEST(NameTable, ConcurrentInterningAgreesOnIds) {
  // Many threads intern overlapping name sets; every thread must see the
  // SAME id for the same string, and reverse lookup must agree.
  NameTable table;
  constexpr int kThreads = 8;
  constexpr int kNames = 500;
  std::vector<std::vector<NameId>> per_thread(kThreads, std::vector<NameId>(kNames));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kNames; ++i) {
        // Interleave a shared set (same for all threads) with a few
        // thread-private names to force both lookup races and inserts.
        const std::string name = (i % 3 == 0)
                                     ? "private" + std::to_string(t) + "-" + std::to_string(i)
                                     : "shared" + std::to_string(i) + ".example.com";
        per_thread[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)] =
            table.intern(name);
      }
    });
  }
  for (auto& th : threads) th.join();

  for (int i = 0; i < kNames; ++i) {
    if (i % 3 == 0) continue;
    const NameId expected = per_thread[0][static_cast<std::size_t>(i)];
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(per_thread[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)], expected)
          << "shared name " << i << " got different ids on threads 0 and " << t;
    }
    EXPECT_EQ(table.view(expected), "shared" + std::to_string(i) + ".example.com");
  }
  // shared names (i % 3 != 0) + kThreads * private names + the empty string
  std::set<NameId> all;
  for (const auto& ids : per_thread) all.insert(ids.begin(), ids.end());
  std::size_t shared = 0, priv = 0;
  for (int i = 0; i < kNames; ++i) (i % 3 == 0 ? priv : shared) += 1;
  EXPECT_EQ(all.size(), shared + priv * kThreads);
}

TEST(NameTable, CollisionHeavyNamesStayDistinct) {
  // Long names sharing long common prefixes/suffixes (worst case for a
  // weak string hash) must still intern to distinct ids.
  NameTable table;
  const std::string stem(200, 'x');
  std::set<NameId> ids;
  for (int i = 0; i < 2000; ++i) {
    ids.insert(table.intern(stem + std::to_string(i) + stem));
  }
  EXPECT_EQ(ids.size(), 2000u);
}

TEST(InternedName, DefaultIsEmpty) {
  InternedName name;
  EXPECT_TRUE(name.empty());
  EXPECT_EQ(name.id(), 0u);
  EXPECT_EQ(name.view(), "");
}

TEST(InternedName, ImplicitConversionAndEquality) {
  InternedName name = "cdn.example.com";
  EXPECT_EQ(name, "cdn.example.com");
  EXPECT_EQ(name, std::string{"cdn.example.com"});
  EXPECT_NE(name, "other.example.com");
  InternedName same{std::string_view{"cdn.example.com"}};
  EXPECT_EQ(name.id(), same.id());
}

TEST(InternedName, AssignAndClear) {
  InternedName name;
  name = "a.example.com";
  EXPECT_EQ(name.view(), "a.example.com");
  name.clear();
  EXPECT_TRUE(name.empty());
}

}  // namespace
}  // namespace dnsctx::util
