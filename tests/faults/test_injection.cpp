// Determinism and equivalence guarantees of the fault-injection layer:
// same seed + plan ⇒ byte-identical datasets (any shard count), the
// streaming failure counters match batch bit for bit under every plan,
// and the {N,LC,P,SC,R} taxonomy stays a partition of the connection log
// no matter what impairments are active.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/failures.hpp"
#include "analysis/study.hpp"
#include "capture/logio.hpp"
#include "scenario/scenario.hpp"
#include "stream/spool.hpp"
#include "stream/online_study.hpp"
#include "util/rng.hpp"

namespace dnsctx::scenario {
namespace {

struct RunResult {
  capture::Dataset ds;
  FaultStats stats;
};

[[nodiscard]] RunResult simulate(const faults::FaultPlan& plan, std::uint64_t seed,
                                 std::size_t shards, std::size_t houses = 6,
                                 SimDuration duration = SimDuration::hours(1)) {
  ScenarioConfig cfg;
  cfg.houses = houses;
  cfg.duration = duration;
  cfg.seed = seed;
  cfg.shards = shards;
  cfg.faults = plan;
  Town town{cfg};
  town.run();
  return RunResult{town.dataset(), town.fault_stats()};
}

[[nodiscard]] std::string render(const capture::Dataset& ds) {
  std::ostringstream os;
  capture::write_conn_log(os, ds.conns);
  capture::write_dns_log(os, ds.dns);
  return os.str();
}

const char* kHeavyPlan =
    "loss=0.02,dup=0.01,reorder=0.01,servfail=0.01,nxdomain=0.005,backoff=2,"
    "outage=upstream1:600-1200";

TEST(FaultInjection, ImpairedRunsAreByteIdentical) {
  const auto plan = faults::FaultPlan::parse(kHeavyPlan);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE(testing::Message() << "shards " << shards);
    const RunResult a = simulate(plan, 7, shards);
    const RunResult b = simulate(plan, 7, shards);
    EXPECT_EQ(render(a.ds), render(b.ds));
    EXPECT_EQ(a.stats.packets_dropped, b.stats.packets_dropped);
    EXPECT_EQ(a.stats.servfail_injected, b.stats.servfail_injected);
    EXPECT_EQ(a.stats.outage_dropped, b.stats.outage_dropped);
    // The plan actually bit: every fault class left a mark.
    EXPECT_GT(a.stats.packets_dropped, 0u);
    EXPECT_GT(a.stats.packets_duplicated, 0u);
    EXPECT_GT(a.stats.packets_reordered, 0u);
    EXPECT_GT(a.stats.servfail_injected, 0u);
    EXPECT_GT(a.stats.outage_dropped, 0u);
  }
}

TEST(FaultInjection, DifferentSeedsDiverge) {
  const auto plan = faults::FaultPlan::parse("loss=0.02");
  const RunResult a = simulate(plan, 1, 1);
  const RunResult b = simulate(plan, 2, 1);
  EXPECT_NE(render(a.ds), render(b.ds));
}

TEST(FaultInjection, EmptyPlanLeavesNoTrace) {
  const RunResult impaired = simulate(faults::FaultPlan{}, 1, 1);
  EXPECT_EQ(impaired.stats.packets_dropped, 0u);
  EXPECT_EQ(impaired.stats.packets_duplicated, 0u);
  EXPECT_EQ(impaired.stats.packets_reordered, 0u);
  EXPECT_EQ(impaired.stats.servfail_injected, 0u);
  EXPECT_EQ(impaired.stats.nxdomain_injected, 0u);
  EXPECT_EQ(impaired.stats.outage_dropped, 0u);

  // And parse("") wires up exactly the same run as a default config.
  ScenarioConfig cfg;
  cfg.houses = 6;
  cfg.duration = SimDuration::hours(1);
  cfg.seed = 1;
  cfg.faults = faults::FaultPlan::parse("");
  Town town{cfg};
  town.run();
  EXPECT_EQ(render(town.dataset()), render(impaired.ds));
}

TEST(FaultInjection, StreamFailureCountersMatchBatchUnderEveryPlan) {
  const char* specs[] = {"", "loss=0.03", kHeavyPlan};
  for (const char* spec : specs) {
    const auto plan = faults::FaultPlan::parse(spec);
    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
      SCOPED_TRACE(testing::Message() << "plan '" << spec << "', shards " << shards);
      const RunResult run = simulate(plan, 7, shards);
      const analysis::FailureCounts batch =
          analysis::build_failure_report(run.ds).counts;

      stream::OnlineStudy engine;
      stream::replay_dataset(run.ds, engine);
      EXPECT_EQ(engine.finalize().failures, batch);

      // Aggressive sweeping must not change a single counter.
      stream::OnlineStudyConfig aggressive;
      aggressive.sweep_interval = 64;
      stream::OnlineStudy swept{aggressive};
      stream::replay_dataset(run.ds, swept);
      EXPECT_EQ(swept.finalize().failures, batch);
    }
  }
}

TEST(FaultInjection, AbsorbMergesFailureCountersAcrossPartitions) {
  const RunResult run = simulate(faults::FaultPlan::parse(kHeavyPlan), 3, 1);
  const analysis::FailureCounts batch = analysis::build_failure_report(run.ds).counts;

  // Split the dataset by house into two disjoint partitions.
  capture::Dataset even, odd;
  for (const auto& rec : run.ds.conns) {
    ((rec.orig_ip.to_u32() % 2 == 0) ? even : odd).conns.push_back(rec);
  }
  for (const auto& rec : run.ds.dns) {
    ((rec.client_ip.to_u32() % 2 == 0) ? even : odd).dns.push_back(rec);
  }
  stream::OnlineStudy a, b;
  stream::replay_dataset(even, a);
  stream::replay_dataset(odd, b);
  a.absorb(std::move(b));
  EXPECT_EQ(a.finalize().failures, batch);
}

// Property suite: 50 random fault plans on small scenarios. Whatever the
// impairment, the taxonomy must partition the connection log and the
// streaming counters must equal batch.
TEST(FaultInjection, RandomPlansPreserveClassPartitionInvariant) {
  Rng rng{424242};
  for (int trial = 0; trial < 50; ++trial) {
    faults::FaultPlan plan;
    plan.loss = rng.bernoulli(0.5) ? rng.uniform(0.0, 0.05) : 0.0;
    plan.dup = rng.bernoulli(0.3) ? rng.uniform(0.0, 0.02) : 0.0;
    plan.reorder = rng.bernoulli(0.3) ? rng.uniform(0.0, 0.02) : 0.0;
    plan.servfail_rate = rng.bernoulli(0.5) ? rng.uniform(0.0, 0.02) : 0.0;
    plan.nxdomain_rate = rng.bernoulli(0.3) ? rng.uniform(0.0, 0.01) : 0.0;
    plan.backoff = rng.bernoulli(0.3) ? rng.uniform(1.0, 4.0) : 1.0;
    if (rng.bernoulli(0.4)) {
      const std::int64_t begin = rng.uniform_int(0, 1200);
      plan.outages.push_back(
          faults::Outage{"upstream1", begin, begin + rng.uniform_int(60, 600)});
    }
    SCOPED_TRACE(testing::Message() << "trial " << trial << ": " << plan.to_string());

    const RunResult run = simulate(plan, 1000 + static_cast<std::uint64_t>(trial),
                                   /*shards=*/1, /*houses=*/4, SimDuration::min(30));
    const auto study = analysis::run_study(run.ds);
    const auto& c = study.classified.counts;
    // {N, LC, P, SC, R} partitions the connection log: every connection
    // lands in exactly one class, lost/duplicated/retried or not.
    EXPECT_EQ(c.total(), run.ds.conns.size());

    const analysis::FailureCounts batch = analysis::build_failure_report(run.ds).counts;
    EXPECT_EQ(batch.lookups, run.ds.dns.size());
    EXPECT_EQ(batch.answered_ok + batch.nodata + batch.nxdomain + batch.servfail +
                  batch.other_rcode + batch.unanswered,
              batch.lookups);
    EXPECT_EQ(batch.recovered_chains + batch.failed_chains,
              [&] {
                std::uint64_t sum = 0;
                for (const auto n : batch.chain_len_hist) sum += n;
                return sum;
              }());

    stream::OnlineStudy engine;
    stream::replay_dataset(run.ds, engine);
    EXPECT_EQ(engine.finalize().failures, batch);
  }
}

TEST(FaultInjection, OutageWindowSilencesTargetedResolver) {
  faults::FaultPlan plan;
  plan.outages.push_back(faults::Outage{"upstream1", 0, 3600});
  const RunResult run = simulate(plan, 5, 1);
  EXPECT_GT(run.stats.outage_dropped, 0u);
  EXPECT_EQ(run.stats.packets_dropped, 0u);  // no packet-level faults configured
}

TEST(FaultInjection, ResolveOutageTargetGrammar) {
  EXPECT_EQ(resolve_outage_target("isp").size(), 2u);
  EXPECT_EQ(resolve_outage_target("upstream1").size(), 1u);
  EXPECT_EQ(resolve_outage_target("google").size(), 2u);
  EXPECT_EQ(resolve_outage_target("1.2.3.4"),
            (std::vector<Ipv4Addr>{Ipv4Addr{1, 2, 3, 4}}));
  EXPECT_THROW((void)resolve_outage_target("mars"), std::runtime_error);
}

}  // namespace
}  // namespace dnsctx::scenario
