// Client-side recovery edge cases under impairment: exponential retry
// backoff timing, responses racing the timeout deadline, outage windows
// straddling a lookup, duplicate responses after a successful retry, and
// SERVFAIL failover.
#include <gtest/gtest.h>

#include "dns/codec.hpp"
#include "resolver/stub.hpp"

namespace dnsctx::resolver {
namespace {

constexpr Ipv4Addr kDevice{192, 168, 1, 10};
constexpr Ipv4Addr kResolverA{100, 66, 250, 1};
constexpr Ipv4Addr kResolverB{8, 8, 8, 8};

class RecoveryTest : public ::testing::Test {
 protected:
  [[nodiscard]] StubResolver make_stub(StubConfig cfg = {}) {
    if (cfg.resolver_addrs.empty()) cfg.resolver_addrs = {kResolverA, kResolverB};
    return StubResolver{sim, kDevice, std::move(cfg), 77,
                        [this](netsim::Packet p) { sent.push_back(std::move(p)); }};
  }

  [[nodiscard]] netsim::Packet respond(const netsim::Packet& query,
                                       std::vector<dns::ResourceRecord> answers,
                                       dns::Rcode rcode = dns::Rcode::kNoError) {
    const dns::DnsMessage* q = query.dns.message();
    EXPECT_TRUE(q != nullptr);
    dns::DnsMessage resp = dns::DnsMessage::response(*q, std::move(answers), rcode);
    netsim::Packet p;
    p.src_ip = query.dst_ip;
    p.dst_ip = query.src_ip;
    p.src_port = 53;
    p.dst_port = query.src_port;
    p.proto = Proto::kUdp;
    p.dns = dns::DnsPayload::from_message(std::move(resp));
    return p;
  }

  [[nodiscard]] static std::vector<dns::ResourceRecord> a_record(const char* name) {
    return {dns::ResourceRecord::a(dns::DomainName::must(name), Ipv4Addr{1, 2, 3, 4}, 300)};
  }

  netsim::Simulator sim;
  std::vector<netsim::Packet> sent;
};

TEST_F(RecoveryTest, BackoffDoublesEachAttemptTimeout) {
  StubConfig cfg;
  cfg.resolver_addrs = {kResolverA};
  cfg.retries_per_resolver = 1;
  cfg.retry_backoff = 2.0;
  auto stub = make_stub(cfg);
  bool failed = false;
  stub.resolve(dns::DomainName::must("dead.com"),
               [&](const ResolveResult& r) { failed = !r.success; });

  // Attempt 1 times out after 3 s, attempt 2 after 2 × 3 s = 6 s. The
  // terminal failure therefore lands at exactly t = 9 s, not the 6 s a
  // fixed timeout would give.
  sim.run_until(SimTime::origin() + SimDuration::sec(3) + SimDuration::ms(1));
  EXPECT_EQ(sent.size(), 2u);  // first retransmission fired at 3 s
  sim.run_until(SimTime::origin() + SimDuration::sec(9) - SimDuration::ms(1));
  EXPECT_FALSE(failed);  // backoff stretched the second attempt past 6 s
  sim.run_until(SimTime::origin() + SimDuration::sec(9) + SimDuration::ms(1));
  EXPECT_TRUE(failed);
}

TEST_F(RecoveryTest, BackoffIsCappedByMaxQueryTimeout) {
  StubConfig cfg;
  cfg.resolver_addrs = {kResolverA};
  cfg.retries_per_resolver = 3;
  cfg.retry_backoff = 8.0;
  cfg.max_query_timeout = SimDuration::sec(10);
  auto stub = make_stub(cfg);
  bool failed = false;
  stub.resolve(dns::DomainName::must("dead.com"),
               [&](const ResolveResult& r) { failed = !r.success; });
  // Uncapped: 3 + 24 + 192 + 1536 s. Capped: 3 + 10 + 10 + 10 = 33 s.
  sim.run_until(SimTime::origin() + SimDuration::sec(33) - SimDuration::ms(1));
  EXPECT_FALSE(failed);
  sim.run_until(SimTime::origin() + SimDuration::sec(33) + SimDuration::ms(1));
  EXPECT_TRUE(failed);
}

TEST_F(RecoveryTest, ResponseJustBeforeDeadlineWins) {
  StubConfig cfg;
  cfg.resolver_addrs = {kResolverA};
  auto stub = make_stub(cfg);
  int calls = 0;
  stub.resolve(dns::DomainName::must("a.com"), [&](const ResolveResult&) { ++calls; });
  sim.at(SimTime::origin() + cfg.query_timeout - SimDuration::us(1),
         [&] { stub.on_response(respond(sent[0], a_record("a.com"))); });
  sim.run_to_completion();
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(sent.size(), 1u);  // no retransmission
}

TEST_F(RecoveryTest, ResponseExactlyAtDeadlineLosesToTheTimer) {
  // The timeout timer was scheduled first, so at the exact deadline
  // instant it fires first (deterministic (time, seq) event order): the
  // stub retransmits, then the original answer still completes the
  // lookup — one callback, two queries on the wire.
  StubConfig cfg;
  cfg.resolver_addrs = {kResolverA};
  auto stub = make_stub(cfg);
  int calls = 0;
  stub.resolve(dns::DomainName::must("a.com"), [&](const ResolveResult&) { ++calls; });
  sim.at(SimTime::origin() + cfg.query_timeout,
         [&] { stub.on_response(respond(sent[0], a_record("a.com"))); });
  sim.run_to_completion();
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(sent.size(), 2u);
}

TEST_F(RecoveryTest, OutageStraddlingLookupRecoversOnRetry) {
  // The first attempt falls inside an outage (no response); the retry
  // lands after it and succeeds. The lookup recovers with exactly one
  // extra query and no recorded failure.
  StubConfig cfg;
  cfg.resolver_addrs = {kResolverA};
  cfg.retries_per_resolver = 1;
  auto stub = make_stub(cfg);
  ResolveResult result;
  stub.resolve(dns::DomainName::must("a.com"), [&](const ResolveResult& r) { result = r; });
  sim.run_until(SimTime::origin() + cfg.query_timeout + SimDuration::ms(1));
  ASSERT_EQ(sent.size(), 2u);  // outage swallowed the first attempt
  stub.on_response(respond(sent[1], a_record("a.com")));
  EXPECT_TRUE(result.success);
  EXPECT_EQ(stub.failures(), 0u);
  EXPECT_EQ(stub.queries_sent(), 2u);
}

TEST_F(RecoveryTest, DuplicateResponseAfterSuccessfulRetryIsIgnored) {
  StubConfig cfg;
  cfg.resolver_addrs = {kResolverA};
  cfg.retries_per_resolver = 1;
  auto stub = make_stub(cfg);
  int calls = 0;
  stub.resolve(dns::DomainName::must("a.com"), [&](const ResolveResult&) { ++calls; });
  sim.run_until(SimTime::origin() + cfg.query_timeout + SimDuration::ms(1));
  ASSERT_EQ(sent.size(), 2u);
  const auto answer = respond(sent[1], a_record("a.com"));
  stub.on_response(answer);
  EXPECT_EQ(calls, 1);
  // A duplicated copy of the same answer (packet-level dup fault) and a
  // late answer to the first transmission both arrive afterwards: the
  // callback must not fire again.
  stub.on_response(answer);
  stub.on_response(respond(sent[0], a_record("a.com")));
  sim.run_to_completion();
  EXPECT_EQ(calls, 1);
}

TEST_F(RecoveryTest, ServfailFailsOverImmediately) {
  auto stub = make_stub();
  ResolveResult result;
  stub.resolve(dns::DomainName::must("a.com"), [&](const ResolveResult& r) { result = r; });
  ASSERT_EQ(sent.size(), 1u);
  stub.on_response(respond(sent[0], {}, dns::Rcode::kServFail));
  // No same-resolver retransmit and no 3 s wait: straight to resolver B.
  ASSERT_EQ(sent.size(), 2u);
  EXPECT_EQ(sent[1].dst_ip, kResolverB);
  EXPECT_EQ(stub.servfail_failovers(), 1u);
  stub.on_response(respond(sent[1], a_record("a.com")));
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.resolver, kResolverB);
}

TEST_F(RecoveryTest, StaleTimerAfterServfailFailoverDoesNotDoubleRetry) {
  auto stub = make_stub();
  stub.resolve(dns::DomainName::must("a.com"), [](const ResolveResult&) {});
  // SERVFAIL arrives at t = 1 s, so the failover query to B carries a
  // fresh deadline at t = 4 s while the timer armed for A still expires
  // at t = 3 s.
  sim.at(SimTime::origin() + SimDuration::sec(1),
         [&] { stub.on_response(respond(sent[0], {}, dns::Rcode::kServFail)); });
  sim.run_until(SimTime::origin() + SimDuration::sec(3) + SimDuration::ms(500));
  // The stale A timer fired and must not have burned B's retry budget.
  ASSERT_EQ(sent.size(), 2u);
  EXPECT_EQ(sent[1].dst_ip, kResolverB);
  // B's own timer still works: it retransmits to B at t = 4 s.
  sim.run_until(SimTime::origin() + SimDuration::sec(4) + SimDuration::ms(1));
  ASSERT_EQ(sent.size(), 3u);
  EXPECT_EQ(sent[2].dst_ip, kResolverB);
}

TEST_F(RecoveryTest, TerminalServfailReportsFailureAndNegativeCaches) {
  StubConfig cfg;
  cfg.resolver_addrs = {kResolverA};  // nowhere to fail over to
  auto stub = make_stub(cfg);
  ResolveResult result;
  result.success = true;
  stub.resolve(dns::DomainName::must("sf.com"), [&](const ResolveResult& r) { result = r; });
  stub.on_response(respond(sent[0], {}, dns::Rcode::kServFail));
  EXPECT_FALSE(result.success);

  // SERVFAIL is negative-cached briefly (30 s), not the 300 s NXDOMAIN
  // hold — resolvers may recover quickly.
  stub.resolve(dns::DomainName::must("sf.com"), [](const ResolveResult&) {});
  sim.run_to_completion();
  EXPECT_EQ(sent.size(), 1u);  // within the hold: no new query
  sim.at(sim.now() + SimDuration::sec(31), [] {});
  sim.run_to_completion();
  stub.resolve(dns::DomainName::must("sf.com"), [](const ResolveResult&) {});
  EXPECT_EQ(sent.size(), 2u);  // hold expired: asks the network again
}

}  // namespace
}  // namespace dnsctx::resolver
