// FaultPlan grammar: parse/render round-trips (property-style over
// random plans) and rejection of malformed specs.
#include <gtest/gtest.h>

#include <stdexcept>

#include "faults/plan.hpp"
#include "util/rng.hpp"

namespace dnsctx::faults {
namespace {

TEST(FaultPlan, EmptySpecParsesToEmptyPlan) {
  const FaultPlan plan = FaultPlan::parse("");
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.to_string(), "");
}

TEST(FaultPlan, DefaultPlanChangesNothing) {
  const FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_FALSE(plan.has_packet_faults());
  EXPECT_FALSE(plan.has_resolver_faults());
}

TEST(FaultPlan, ParsesFullSpec) {
  const FaultPlan plan = FaultPlan::parse(
      "loss=0.01,dup=0.002,reorder=0.003,reorder-ms=50,servfail=0.005,"
      "nxdomain=0.001,backoff=2,outage=upstream1:3600-4200,outage=google:10-20");
  EXPECT_DOUBLE_EQ(plan.loss, 0.01);
  EXPECT_DOUBLE_EQ(plan.dup, 0.002);
  EXPECT_DOUBLE_EQ(plan.reorder, 0.003);
  EXPECT_DOUBLE_EQ(plan.reorder_extra_ms, 50.0);
  EXPECT_DOUBLE_EQ(plan.servfail_rate, 0.005);
  EXPECT_DOUBLE_EQ(plan.nxdomain_rate, 0.001);
  EXPECT_DOUBLE_EQ(plan.backoff, 2.0);
  ASSERT_EQ(plan.outages.size(), 2u);
  EXPECT_EQ(plan.outages[0], (Outage{"upstream1", 3600, 4200}));
  EXPECT_EQ(plan.outages[1], (Outage{"google", 10, 20}));
  EXPECT_TRUE(plan.has_packet_faults());
  EXPECT_TRUE(plan.has_resolver_faults());
}

TEST(FaultPlan, MalformedSpecsThrow) {
  const char* bad[] = {
      "loss",                      // missing value
      "loss=",                     // empty value
      "loss=abc",                  // not a number
      "loss=1.5",                  // rate out of range
      "loss=-0.1",                 // negative rate
      "dup=2",                     // rate out of range
      "reorder-ms=-1",             // negative delay
      "backoff=0.5",               // below 1
      "backoff=100",               // above 64
      "frobnicate=1",              // unknown key
      "outage=",                   // empty outage
      "outage=upstream1",          // no window
      "outage=upstream1:5",        // no end
      "outage=upstream1:9-9",      // empty window
      "outage=upstream1:10-5",     // inverted window
      "outage=upstream1:-5-10",    // negative begin
      "outage=:5-10",              // empty target
  };
  for (const char* spec : bad) {
    EXPECT_THROW((void)FaultPlan::parse(spec), std::runtime_error) << spec;
  }
}

TEST(FaultPlan, ParseOutageClause) {
  const Outage o = parse_outage("8.8.8.8:0-86400");
  EXPECT_EQ(o.target, "8.8.8.8");
  EXPECT_EQ(o.begin_sec, 0);
  EXPECT_EQ(o.end_sec, 86400);
}

// Property: parse(to_string(plan)) == plan for randomized plans,
// including awkward shortest-round-trip doubles like 0.1 and 1e-7.
TEST(FaultPlan, RandomPlansRoundTripExactly) {
  Rng rng{20240805};
  const char* targets[] = {"isp", "upstream1", "upstream2", "google",
                           "opendns", "cloudflare", "10.99.0.1"};
  for (int trial = 0; trial < 100; ++trial) {
    FaultPlan plan;
    if (rng.bernoulli(0.7)) plan.loss = rng.uniform();
    if (rng.bernoulli(0.7)) plan.dup = rng.uniform();
    if (rng.bernoulli(0.7)) plan.reorder = rng.uniform();
    if (rng.bernoulli(0.5)) plan.reorder_extra_ms = rng.uniform(0.0, 500.0);
    if (rng.bernoulli(0.7)) plan.servfail_rate = rng.uniform();
    if (rng.bernoulli(0.7)) plan.nxdomain_rate = rng.uniform();
    if (rng.bernoulli(0.5)) plan.backoff = rng.uniform(1.0, 64.0);
    if (rng.bernoulli(0.3)) plan.loss = 1e-7;  // exercise exponent rendering
    const int n_outages = static_cast<int>(rng.uniform_int(0, 3));
    for (int i = 0; i < n_outages; ++i) {
      const std::int64_t begin = rng.uniform_int(0, 100'000);
      plan.outages.push_back(Outage{targets[rng.uniform_int(0, 6)], begin,
                                    begin + rng.uniform_int(1, 10'000)});
    }
    const std::string spec = plan.to_string();
    const FaultPlan reparsed = FaultPlan::parse(spec);
    EXPECT_EQ(reparsed, plan) << "spec: " << spec;
    // And rendering is a fixed point.
    EXPECT_EQ(reparsed.to_string(), spec);
  }
}

TEST(FaultPlan, ToStringOmitsDefaults) {
  FaultPlan plan;
  plan.loss = 0.25;
  EXPECT_EQ(plan.to_string(), "loss=0.25");
  plan = FaultPlan{};
  plan.backoff = 2.0;
  EXPECT_EQ(plan.to_string(), "backoff=2");
}

}  // namespace
}  // namespace dnsctx::faults
