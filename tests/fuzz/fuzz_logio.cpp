// libFuzzer target for the TSV log parsers. The first input byte picks
// the parser (conn vs dns); the rest is the log text. Malformed input
// must be rejected with std::runtime_error carrying a line number, never
// crash.
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

#include "capture/logio.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return 0;
  const bool dns = (data[0] & 1) != 0;
  std::istringstream is{std::string{reinterpret_cast<const char*>(data + 1), size - 1}};
  try {
    if (dns) {
      (void)dnsctx::capture::read_dns_log(is, "fuzz");
    } else {
      (void)dnsctx::capture::read_conn_log(is, "fuzz");
    }
  } catch (const std::runtime_error&) {
  }
  return 0;
}
