// libFuzzer target for the serve ingest frame decoder. Arbitrary bytes
// are fed in fuzzer-chosen chunk sizes (the first input byte seeds the
// chunking) — the decoder must emit a bounded event stream and never
// crash, loop, or over-read: errors are terminal (poisoned decoder),
// kNeedMore only ever appears when the buffer is exhausted, and a
// successfully parsed handshake/segment obeys the protocol invariants.
#include <cstdint>
#include <cstdlib>
#include <string_view>

#include "serve/ingest.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return 0;
  // Small frame limit so the fuzzer can reach the oversized-length
  // rejection without minting multi-megabyte inputs.
  dnsctx::serve::FrameDecoder dec{"fuzz", dnsctx::serve::FrameDecoder::Limits{1u << 16}};
  const std::size_t chunk = static_cast<std::size_t>(data[0] % 37) + 1;
  std::string_view rest{reinterpret_cast<const char*>(data + 1), size - 1};

  bool errored = false;
  while (!rest.empty()) {
    const std::size_t take = rest.size() < chunk ? rest.size() : chunk;
    dec.feed(rest.substr(0, take));
    rest.remove_prefix(take);
    for (;;) {
      const auto ev = dec.next();
      if (ev == dnsctx::serve::FrameDecoder::Event::kNeedMore) {
        if (errored) std::abort();  // poisoned decoders must stay kError
        break;
      }
      if (ev == dnsctx::serve::FrameDecoder::Event::kError) {
        if (dec.error().empty()) std::abort();  // every error names itself
        errored = true;
        break;
      }
      if (errored) std::abort();  // no events after an error
      if (ev == dnsctx::serve::FrameDecoder::Event::kHandshake) {
        if (!dnsctx::serve::valid_tenant_name(dec.handshake().tenant)) std::abort();
      } else if (ev == dnsctx::serve::FrameDecoder::Event::kSegment) {
        // Validated views must agree with the CRC-checked header count.
        auto& seg = dec.segment();
        if (seg.size() != seg.header().record_count) std::abort();
      }
    }
    if (errored) break;
  }
  return 0;
}
