// libFuzzer target for the binary segment reader. Structural defects
// (bad magic, truncation, CRC mismatch, body overrun) must surface as
// std::runtime_error, never as a crash or out-of-bounds read. Accepted
// blobs must survive a re-encode/re-parse round trip.
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>

#include "stream/segment.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  namespace stream = dnsctx::stream;
  const std::string_view bytes{reinterpret_cast<const char*>(data), size};

  try {
    (void)stream::parse_segment_header(bytes, "fuzz");
  } catch (const std::runtime_error&) {
  }

  stream::SegmentData parsed;
  try {
    parsed = stream::parse_segment(bytes, "fuzz");
  } catch (const std::runtime_error&) {
    return 0;
  }

  // The blob was accepted: re-encoding the decoded records must produce
  // a blob the parser accepts with identical header geometry.
  std::string payload;
  for (const auto& rec : parsed.conns) stream::append_record(payload, rec);
  for (const auto& rec : parsed.dns) stream::append_record(payload, rec);
  const std::string blob =
      stream::build_segment(parsed.header.kind, parsed.header.record_count,
                            parsed.header.first_ts, parsed.header.last_ts, payload);
  const stream::SegmentData again = stream::parse_segment(blob, "fuzz-roundtrip");
  if (again.header.record_count != parsed.header.record_count ||
      again.conns.size() != parsed.conns.size() || again.dns.size() != parsed.dns.size()) {
    std::abort();
  }
  return 0;
}
