// libFuzzer target for the scenario-pack parser. The contract: any
// byte sequence either applies cleanly or is rejected with a
// std::runtime_error naming the source — never a crash, never a
// sanitizer fault. Accepted packs must additionally leave the config
// in a state the scenario layer itself validates (mix + tuning), and
// the config-file layer must be able to snapshot the result.
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "scenario/config_io.hpp"
#include "scenario/pack.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string_view text{reinterpret_cast<const char*>(data), size};
  dnsctx::scenario::ScenarioConfig cfg;
  dnsctx::scenario::PackInfo info;
  try {
    info = dnsctx::scenario::apply_pack(text, "fuzz.pack", &cfg);
  } catch (const std::runtime_error&) {
    return 0;  // rejection with a diagnostic is the contract
  } catch (const std::invalid_argument&) {
    return 0;  // tuning/diurnal validation surfaces this way
  }
  // Accepted: the pack name was recorded and the combined state passed
  // the scenario layer's own validators (apply_pack runs them last, so
  // a second validate() must agree).
  if (info.name.empty() || cfg.pack != info.name) std::abort();
  try {
    cfg.mix.validate();
    cfg.tuning.validate();
  } catch (...) {
    std::abort();  // accepted pack left an invalid config behind
  }
  // The snapshot writer must be able to round-trip the tuning overrides.
  std::stringstream snapshot;
  dnsctx::scenario::save_config(snapshot, cfg);
  const dnsctx::scenario::ScenarioConfig back =
      dnsctx::scenario::load_config(snapshot, "snapshot");
  if (!(back.tuning == cfg.tuning)) std::abort();
  return 0;
}
