// libFuzzer target for the FaultPlan grammar. Beyond "never crash on
// arbitrary specs", it checks the round-trip property on every spec the
// parser accepts: parse(to_string(plan)) must reproduce the plan and
// to_string must be a fixed point.
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string_view>

#include "faults/plan.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string_view spec{reinterpret_cast<const char*>(data), size};
  dnsctx::faults::FaultPlan plan;
  try {
    plan = dnsctx::faults::FaultPlan::parse(spec);
  } catch (const std::runtime_error&) {
    return 0;  // rejection with a diagnostic is the contract
  }
  const std::string canon = plan.to_string();
  const dnsctx::faults::FaultPlan reparsed = dnsctx::faults::FaultPlan::parse(canon);
  if (reparsed != plan || reparsed.to_string() != canon) std::abort();
  return 0;
}
