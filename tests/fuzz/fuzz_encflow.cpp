// libFuzzer target for the encrypted-flow pipeline: parse arbitrary
// bytes as an encflow.log, then run every surviving record through the
// traffic-analysis feature extractor and classifier. The parser must
// reject garbage with std::runtime_error (never crash), and the
// classifier must be total over whatever records parse — including
// adversarial ones (up_bytes < first_up_bytes, zero message counts,
// huge values near overflow).
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

#include "analysis/encdns.hpp"
#include "capture/logio.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  std::istringstream is{std::string{reinterpret_cast<const char*>(data), size}};
  try {
    const auto flows = dnsctx::capture::read_encflow_log(is, "fuzz");
    for (const auto& rec : flows) {
      const auto f = dnsctx::analysis::extract_features(rec);
      (void)f;
      (void)dnsctx::analysis::looks_like_dns(rec);
    }
    (void)dnsctx::analysis::evaluate_enc_classifier(flows,
                                                    {dnsctx::Ipv4Addr{100, 66, 250, 1}});
  } catch (const std::runtime_error&) {
  }
  return 0;
}
