// libFuzzer target for the v2 columnar segment reader. Hostile blobs —
// bad codec ids, lying raw-length frames, truncated dictionaries,
// column overruns, non-canonical varints — must surface as
// std::runtime_error at SegmentView construction, never as a crash,
// OOB read, or unbounded allocation. Accepted blobs must survive a
// decode → rebuild → reparse round trip with every field intact, and
// the raw LZ decompressor must reject arbitrary bytes gracefully.
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "stream/codec.hpp"
#include "stream/segment_v2.hpp"
#include "stream/segment_view.hpp"

namespace stream = dnsctx::stream;
namespace capture = dnsctx::capture;

namespace {

void expect_eq(bool ok) {
  if (!ok) std::abort();
}

template <typename Rec>
std::vector<Rec> drain(stream::SegmentView& view) {
  std::vector<Rec> out;
  Rec rec;
  while (view.next(rec)) out.push_back(rec);
  return out;
}

void compare_conn(const capture::ConnRecord& a, const capture::ConnRecord& b) {
  expect_eq(a.start == b.start && a.duration == b.duration && a.orig_ip == b.orig_ip &&
            a.resp_ip == b.resp_ip && a.orig_port == b.orig_port &&
            a.resp_port == b.resp_port && a.proto == b.proto && a.state == b.state &&
            a.orig_bytes == b.orig_bytes && a.resp_bytes == b.resp_bytes);
}

void compare_dns(const capture::DnsRecord& a, const capture::DnsRecord& b) {
  expect_eq(a.ts == b.ts && a.duration == b.duration && a.client_ip == b.client_ip &&
            a.client_port == b.client_port && a.resolver_ip == b.resolver_ip &&
            a.query.view() == b.query.view() && a.qtype == b.qtype && a.rcode == b.rcode &&
            a.answered == b.answered && a.answers == b.answers);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string_view bytes{reinterpret_cast<const char*>(data), size};

  // The raw block decompressor sees network-supplied bytes before any
  // CRC can vouch for them on the serve path, so it gets the input
  // verbatim, with a raw length derived from the head of the input.
  if (size >= 2) {
    std::string out;
    const std::size_t raw_len = (std::size_t{data[0]} << 8 | data[1]) & 0xffff;
    (void)stream::codec(stream::SegmentCodec::kLz).decompress(bytes.substr(2), raw_len, out);
    expect_eq(out.size() <= raw_len);
  }

  stream::SegmentView view;
  try {
    view = stream::SegmentView::parse(bytes, "fuzz");
  } catch (const std::runtime_error&) {
    return 0;
  }

  // Accepted blob: decode everything, re-encode through the builder
  // under both codecs, and demand field-for-field equality. (Byte
  // identity is NOT required — the reader tolerates non-canonical
  // varint encodings the builder never emits.)
  const auto& header = view.header();
  for (const auto codec : {stream::SegmentCodec::kNone, stream::SegmentCodec::kLz}) {
    view.rewind();
    std::string rebuilt;
    if (header.kind == stream::RecordKind::kConn) {
      const auto recs = drain<capture::ConnRecord>(view);
      expect_eq(recs.size() == header.record_count);
      rebuilt = stream::build_segment_v2(recs, codec);
      stream::SegmentView again = stream::SegmentView::parse(rebuilt, "fuzz-roundtrip");
      expect_eq(again.size() == header.record_count);
      view.rewind();
      capture::ConnRecord a, b;
      while (view.next(a)) {
        expect_eq(again.next(b));
        compare_conn(a, b);
      }
    } else {
      const auto recs = drain<capture::DnsRecord>(view);
      expect_eq(recs.size() == header.record_count);
      rebuilt = stream::build_segment_v2(recs, codec);
      stream::SegmentView again = stream::SegmentView::parse(rebuilt, "fuzz-roundtrip");
      expect_eq(again.size() == header.record_count);
      view.rewind();
      capture::DnsRecord a, b;
      while (view.next(a)) {
        expect_eq(again.next(b));
        compare_dns(a, b);
      }
    }
    // v2 validates header first/last_ts against the decoded records at
    // construction, so equality through the round trip is guaranteed.
    // v1 headers are not cross-checked (and not CRC-covered), so a
    // mutated-but-accepted v1 blob may lie about its timestamps.
    if (header.record_count > 0 && header.version == stream::kSegmentVersionV2) {
      stream::SegmentView reparsed = stream::SegmentView::parse(rebuilt, "fuzz-header");
      expect_eq(reparsed.header().first_ts == header.first_ts &&
                reparsed.header().last_ts == header.last_ts);
    }
  }
  return 0;
}
