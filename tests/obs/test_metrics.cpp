// Unit tests for the metrics registry: striped counters merge exactly
// under concurrency, gauges CAS correctly, histogram bucketing follows
// the 1-2-5 bounds, and the disabled path is a true no-op.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace dnsctx::obs {
namespace {

/// Enables metrics for the test body and restores the previous state
/// (the registry is process-wide, so tests must not leak "enabled").
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = enabled();
    set_enabled(true);
  }
  void TearDown() override { set_enabled(was_enabled_); }

 private:
  bool was_enabled_ = false;
};

using MetricsTest = ObsTest;

TEST_F(MetricsTest, CounterConcurrentAddsMergeExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST_F(MetricsTest, CounterAddWithWeightAndReset) {
  Counter c;
  c.add(5);
  c.add(7);
  EXPECT_EQ(c.value(), 12u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(MetricsTest, CounterDisabledIsNoOp) {
  Counter c;
  set_enabled(false);
  c.add(100);
  EXPECT_EQ(c.value(), 0u);
  set_enabled(true);
  c.add(1);
  EXPECT_EQ(c.value(), 1u);
}

TEST_F(MetricsTest, GaugeSetAndSetMax) {
  Gauge g;
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.set_max(2.0);  // lower: ignored
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.set_max(9.0);  // higher: wins
  EXPECT_DOUBLE_EQ(g.value(), 9.0);
  g.add(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
}

TEST_F(MetricsTest, GaugeSetMaxConcurrentKeepsMaximum) {
  Gauge g;
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&g, t] {
      for (int i = 0; i < 1000; ++i) {
        g.set_max(static_cast<double>(t * 1000 + i));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_DOUBLE_EQ(g.value(), 7999.0);
}

TEST_F(MetricsTest, HistogramBucketsFollowBounds) {
  LatencyHistogram h;
  const auto& bounds = LatencyHistogram::bounds();
  ASSERT_FALSE(bounds.empty());
  EXPECT_EQ(h.bucket_count(), bounds.size() + 1);  // + overflow

  h.observe(0.0);          // below the first bound: bucket 0
  h.observe(bounds[0]);    // exactly the first bound: le is inclusive
  h.observe(bounds[1]);    // second bucket
  h.observe(1e9);          // far beyond the last bound: +Inf bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(bounds.size()), 1u);
  EXPECT_NEAR(h.sum_seconds(), bounds[0] + bounds[1] + 1e9, 1e-3 * 1e9);
}

TEST_F(MetricsTest, HistogramSumUsesNanosecondResolution) {
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) h.observe(1e-6);  // 1 µs each
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.sum_seconds(), 1e-3, 1e-9);
}

TEST_F(MetricsTest, RegistryHandlesAreStableAndNamed) {
  auto& reg = registry();
  Counter& c1 = reg.counter("test_registry_stable_total");
  Counter& c2 = reg.counter("test_registry_stable_total");
  EXPECT_EQ(&c1, &c2);
  c1.add(3);

  const MetricsSnapshot snap = reg.snapshot();
  bool found = false;
  for (const auto& s : snap.counters) {
    if (s.name == "test_registry_stable_total") {
      found = true;
      EXPECT_EQ(s.value, 3u);
    }
  }
  EXPECT_TRUE(found);
  c1.reset();
}

TEST_F(MetricsTest, SnapshotHistogramBucketsAreCumulative) {
  auto& reg = registry();
  LatencyHistogram& h = reg.histogram("test_snapshot_cumulative_seconds");
  h.reset();
  const auto& bounds = LatencyHistogram::bounds();
  h.observe(0.0);        // bucket 0
  h.observe(bounds[2]);  // bucket 2

  const MetricsSnapshot snap = reg.snapshot();
  const HistogramSample* sample = nullptr;
  for (const auto& s : snap.histograms) {
    if (s.name == "test_snapshot_cumulative_seconds") sample = &s;
  }
  ASSERT_NE(sample, nullptr);
  // The snapshot carries the finite buckets only; exporters synthesize
  // the +Inf line from `count`.
  ASSERT_EQ(sample->buckets.size(), bounds.size());
  EXPECT_EQ(sample->buckets[0].second, 1u);  // cumulative: 1, 1, 2, 2, ...
  EXPECT_EQ(sample->buckets[1].second, 1u);
  EXPECT_EQ(sample->buckets[2].second, 2u);
  EXPECT_EQ(sample->buckets.back().second, 2u);
  EXPECT_EQ(sample->count, 2u);
  h.reset();
}

TEST_F(MetricsTest, SnapshotIsNameSorted) {
  auto& reg = registry();
  reg.counter("test_zzz_sort_total").add();
  reg.counter("test_aaa_sort_total").add();
  const MetricsSnapshot snap = reg.snapshot();
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }
  reg.counter("test_zzz_sort_total").reset();
  reg.counter("test_aaa_sort_total").reset();
}

TEST_F(MetricsTest, ThreadStripeIsStableWithinAThread) {
  const std::size_t a = thread_stripe();
  const std::size_t b = thread_stripe();
  EXPECT_EQ(a, b);
  EXPECT_LT(a, kCounterStripes);
}

}  // namespace
}  // namespace dnsctx::obs
