// Exporter golden tests: both renderers are deterministic for a fixed
// snapshot, so the output is asserted byte for byte on hand-built
// snapshots (no registry involved — these never race with other tests).
#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace dnsctx::obs {
namespace {

MetricsSnapshot tiny_snapshot() {
  MetricsSnapshot snap;
  snap.counters.push_back({"net_packets_sent", 42});
  snap.counters.push_back({"stage_runs_total{stage=\"run_study\"}", 1});
  snap.gauges.push_back({"sim_seconds", 3.5});
  HistogramSample h;
  h.name = "span_wall_seconds{stage=\"run_study\"}";
  h.buckets = {{1e-6, 0}, {2e-6, 1}, {5e-6, 2}};
  h.count = 3;  // one observation landed past the last finite bucket
  h.sum_seconds = 0.25;
  snap.histograms.push_back(std::move(h));
  return snap;
}

TEST(ObsExportTest, PrometheusGolden) {
  const std::string expected =
      "# TYPE dnsctx_net_packets_sent counter\n"
      "dnsctx_net_packets_sent 42\n"
      "# TYPE dnsctx_stage_runs_total counter\n"
      "dnsctx_stage_runs_total{stage=\"run_study\"} 1\n"
      "# TYPE dnsctx_sim_seconds gauge\n"
      "dnsctx_sim_seconds 3.5\n"
      "# TYPE dnsctx_span_wall_seconds histogram\n"
      "dnsctx_span_wall_seconds_bucket{stage=\"run_study\",le=\"1e-06\"} 0\n"
      "dnsctx_span_wall_seconds_bucket{stage=\"run_study\",le=\"2e-06\"} 1\n"
      "dnsctx_span_wall_seconds_bucket{stage=\"run_study\",le=\"5e-06\"} 2\n"
      "dnsctx_span_wall_seconds_bucket{stage=\"run_study\",le=\"+Inf\"} 3\n"
      "dnsctx_span_wall_seconds_sum{stage=\"run_study\"} 0.25\n"
      "dnsctx_span_wall_seconds_count{stage=\"run_study\"} 3\n";
  EXPECT_EQ(to_prometheus(tiny_snapshot()), expected);
}

TEST(ObsExportTest, JsonGolden) {
  const std::string expected =
      "{\"counters\":{\"net_packets_sent\":42,"
      "\"stage_runs_total{stage=\\\"run_study\\\"}\":1},"
      "\"gauges\":{\"sim_seconds\":3.5},"
      "\"histograms\":{\"span_wall_seconds{stage=\\\"run_study\\\"}\":"
      "{\"count\":3,\"sum_seconds\":0.25,"
      "\"buckets\":[[1e-06,0],[2e-06,1],[5e-06,2]]}}}";
  EXPECT_EQ(to_json(tiny_snapshot()), expected);
}

TEST(ObsExportTest, FlatJsonGolden) {
  const std::string expected =
      "{\"net_packets_sent\":42,"
      "\"stage_runs_total{stage=\\\"run_study\\\"}\":1,"
      "\"sim_seconds\":3.5,"
      "\"span_wall_seconds{stage=\\\"run_study\\\"}_count\":3,"
      "\"span_wall_seconds{stage=\\\"run_study\\\"}_sum_seconds\":0.25}";
  EXPECT_EQ(to_flat_json(tiny_snapshot()), expected);
}

TEST(ObsExportTest, JsonEscapesControlCharacters) {
  // Metric names are normally tame, but names flow in from tenant
  // labels on the serve path — a stray control char must not produce
  // invalid JSON (RFC 8259 requires escaping everything below 0x20).
  MetricsSnapshot snap;
  snap.counters.push_back({"weird\nname\twith\x01"
                           "ctl",
                           1});
  const std::string json = to_json(snap);
  EXPECT_NE(json.find("\"weird\\nname\\twith\\u0001ctl\":1"), std::string::npos) << json;
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_EQ(json.find('\t'), std::string::npos);
  EXPECT_EQ(json.find('\x01'), std::string::npos);
}

TEST(ObsExportTest, EmptySnapshotRenders) {
  const MetricsSnapshot empty;
  EXPECT_EQ(to_prometheus(empty), "");
  EXPECT_EQ(to_json(empty), "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
  EXPECT_EQ(to_flat_json(empty), "{}");
}

TEST(ObsExportTest, IntegerGaugeRendersWithoutDecimals) {
  MetricsSnapshot snap;
  snap.gauges.push_back({"g", 12345.0});
  EXPECT_EQ(to_prometheus(snap), "# TYPE dnsctx_g gauge\ndnsctx_g 12345\n");
}

TEST(ObsExportTest, WriteMetricsFileChoosesFormatByExtension) {
  const bool was = enabled();
  set_enabled(true);
  registry().counter("test_write_file_total").add(7);

  const auto dir = std::filesystem::temp_directory_path() / "dnsctx_obs_export_test";
  std::filesystem::create_directories(dir);
  const auto read = [](const std::filesystem::path& p) {
    std::ifstream is{p};
    std::stringstream ss;
    ss << is.rdbuf();
    return ss.str();
  };

  write_metrics_file((dir / "m.prom").string());
  EXPECT_NE(read(dir / "m.prom").find("dnsctx_test_write_file_total 7"),
            std::string::npos);

  write_metrics_file((dir / "m.json").string());
  const std::string json = read(dir / "m.json");
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"test_write_file_total\":7"), std::string::npos);

  std::filesystem::remove_all(dir);
  registry().counter("test_write_file_total").reset();
  set_enabled(was);
}

}  // namespace
}  // namespace dnsctx::obs
