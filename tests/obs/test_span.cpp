// Unit tests for RAII stage spans: per-thread path nesting, the series
// a span folds into on destruction, and the disabled/no-op contracts.
#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "obs/metrics.hpp"

namespace dnsctx::obs {
namespace {

class SpanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = enabled();
    set_enabled(true);
  }
  void TearDown() override { set_enabled(was_enabled_); }

 private:
  bool was_enabled_ = false;
};

std::uint64_t counter_value(const std::string& name) {
  const MetricsSnapshot snap = registry().snapshot();
  for (const auto& s : snap.counters) {
    if (s.name == name) return s.value;
  }
  return 0;
}

TEST_F(SpanTest, PathNestsAndRestores) {
  EXPECT_EQ(StageSpan::current_path(), "");
  {
    StageSpan outer{"test_run"};
    EXPECT_EQ(StageSpan::current_path(), "test_run");
    {
      StageSpan inner{"pairing"};
      EXPECT_EQ(StageSpan::current_path(), "test_run/pairing");
    }
    EXPECT_EQ(StageSpan::current_path(), "test_run");
  }
  EXPECT_EQ(StageSpan::current_path(), "");
}

TEST_F(SpanTest, RecordsRunsWallAndCpuSeries) {
  const std::uint64_t runs_before =
      counter_value("stage_runs_total{stage=\"test_span_series\"}");
  {
    StageSpan span{"test_span_series"};
    // Busy-wait a hair so the wall counter can tick at µs resolution.
    const auto until = std::chrono::steady_clock::now() + std::chrono::microseconds{200};
    while (std::chrono::steady_clock::now() < until) {
    }
  }
  EXPECT_EQ(counter_value("stage_runs_total{stage=\"test_span_series\"}"),
            runs_before + 1);
  EXPECT_GT(counter_value("stage_wall_us_total{stage=\"test_span_series\"}"), 0u);

  const MetricsSnapshot snap = registry().snapshot();
  bool histogram_found = false;
  for (const auto& h : snap.histograms) {
    if (h.name == "span_wall_seconds{stage=\"test_span_series\"}") {
      histogram_found = true;
      EXPECT_GE(h.count, 1u);
    }
  }
  EXPECT_TRUE(histogram_found);
}

TEST_F(SpanTest, EmptyStageIsInert) {
  const MetricsSnapshot before = registry().snapshot();
  {
    StageSpan span{""};
    EXPECT_EQ(StageSpan::current_path(), "");
  }
  const MetricsSnapshot after = registry().snapshot();
  EXPECT_EQ(before.counters.size(), after.counters.size());
}

TEST_F(SpanTest, DisabledSpanTouchesNothing) {
  set_enabled(false);
  {
    StageSpan span{"test_disabled_span"};
    EXPECT_EQ(StageSpan::current_path(), "");
  }
  set_enabled(true);
  EXPECT_EQ(counter_value("stage_runs_total{stage=\"test_disabled_span\"}"), 0u);
}

TEST_F(SpanTest, PathIsPerThread) {
  StageSpan outer{"test_thread_outer"};
  std::string worker_path;
  std::thread worker([&worker_path] {
    StageSpan leaf{"test_thread_leaf"};
    worker_path = StageSpan::current_path();
  });
  worker.join();
  // The worker starts a fresh path — it does not inherit "test_thread_outer".
  EXPECT_EQ(worker_path, "test_thread_leaf");
  EXPECT_EQ(StageSpan::current_path(), "test_thread_outer");
}

}  // namespace
}  // namespace dnsctx::obs
