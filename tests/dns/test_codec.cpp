// Unit + robustness tests for the RFC 1035 wire codec.
#include <gtest/gtest.h>

#include "dns/codec.hpp"
#include "util/rng.hpp"

namespace dnsctx::dns {
namespace {

[[nodiscard]] DnsMessage sample_query() {
  return DnsMessage::query(0x1234, DomainName::must("www.example.com"));
}

[[nodiscard]] DnsMessage sample_response() {
  DnsMessage q = sample_query();
  std::vector<ResourceRecord> answers;
  answers.push_back(ResourceRecord::a(DomainName::must("www.example.com"),
                                      Ipv4Addr{93, 184, 216, 34}, 300));
  answers.push_back(ResourceRecord::a(DomainName::must("www.example.com"),
                                      Ipv4Addr{93, 184, 216, 35}, 300));
  return DnsMessage::response(q, std::move(answers));
}

TEST(Codec, QueryRoundTrip) {
  const DnsMessage msg = sample_query();
  const auto wire = encode(msg);
  const auto decoded = decode(wire);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, msg);
}

TEST(Codec, ResponseRoundTrip) {
  const DnsMessage msg = sample_response();
  const auto decoded = decode(encode(msg));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, msg);
}

TEST(Codec, HeaderFlagsRoundTrip) {
  DnsMessage msg = sample_query();
  msg.flags.qr = true;
  msg.flags.aa = true;
  msg.flags.tc = true;
  msg.flags.rd = false;
  msg.flags.ra = true;
  msg.flags.opcode = 2;
  msg.flags.rcode = Rcode::kServFail;
  const auto decoded = decode(encode(msg));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->flags, msg.flags);
}

TEST(Codec, CompressionShrinksRepeatedNames) {
  DnsMessage msg = sample_response();
  // Same owner name three times: compression should pay off.
  const auto wire = encode(msg);
  std::size_t uncompressed_estimate = 12;
  uncompressed_estimate += (1 + 3 + 1 + 7 + 1 + 3 + 1) + 4;  // question
  uncompressed_estimate += 2 * ((17) + 10 + 4);              // answers w/o compression
  EXPECT_LT(wire.size(), uncompressed_estimate);
}

TEST(Codec, CnameRdataRoundTrip) {
  DnsMessage msg = sample_query();
  msg.flags.qr = true;
  msg.answers.push_back(ResourceRecord::cname(DomainName::must("www.example.com"),
                                              DomainName::must("edge7.cdn.example.net"), 60));
  msg.answers.push_back(ResourceRecord::a(DomainName::must("edge7.cdn.example.net"),
                                          Ipv4Addr{104, 16, 1, 1}, 60));
  const auto decoded = decode(encode(msg));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, msg);
}

TEST(Codec, SoaRoundTrip) {
  DnsMessage msg = sample_query();
  msg.flags.qr = true;
  msg.flags.rcode = Rcode::kNxDomain;
  SoaData soa;
  soa.mname = DomainName::must("ns1.example.com");
  soa.rname = DomainName::must("hostmaster.example.com");
  soa.serial = 2020102700;
  soa.refresh = 7'200;
  soa.retry = 900;
  soa.expire = 1'209'600;
  soa.minimum = 300;
  msg.authorities.push_back(
      ResourceRecord{DomainName::must("example.com"), RrType::kSoa, RrClass::kIn, 300, soa});
  const auto decoded = decode(encode(msg));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, msg);
}

TEST(Codec, MxRoundTrip) {
  DnsMessage msg = sample_query();
  msg.flags.qr = true;
  msg.answers.push_back(ResourceRecord{DomainName::must("example.com"), RrType::kMx,
                                       RrClass::kIn, 3'600,
                                       MxData{10, DomainName::must("mail.example.com")}});
  const auto decoded = decode(encode(msg));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, msg);
}

TEST(Codec, TxtRoundTripIncludingLong) {
  DnsMessage msg = sample_query();
  msg.flags.qr = true;
  const std::string long_txt(600, 'v');  // forces multiple 255-byte chunks
  msg.answers.push_back(ResourceRecord{DomainName::must("example.com"), RrType::kTxt,
                                       RrClass::kIn, 60, long_txt});
  const auto decoded = decode(encode(msg));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(std::get<std::string>(decoded->answers[0].rdata), long_txt);
}

TEST(Codec, UnknownTypePreservedAsRawBytes) {
  DnsMessage msg = sample_query();
  msg.flags.qr = true;
  const std::vector<std::uint8_t> blob{0xde, 0xad, 0xbe, 0xef};
  msg.answers.push_back(ResourceRecord{DomainName::must("example.com"),
                                       static_cast<RrType>(99), RrClass::kIn, 60, blob});
  const auto decoded = decode(encode(msg));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(std::get<std::vector<std::uint8_t>>(decoded->answers[0].rdata), blob);
}

TEST(Codec, EmptyMessageRoundTrip) {
  DnsMessage msg;
  msg.id = 7;
  const auto decoded = decode(encode(msg));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, msg);
}

TEST(Codec, RootNameRoundTrip) {
  DnsMessage msg = DnsMessage::query(1, DomainName::must("."), RrType::kNs);
  const auto decoded = decode(encode(msg));
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->questions[0].qname.is_root());
}

// ------------------------------------------------------ robustness tests

TEST(CodecRobustness, TruncationAtEveryByteNeverCrashes) {
  const auto wire = encode(sample_response());
  for (std::size_t len = 0; len < wire.size(); ++len) {
    std::string err;
    const auto decoded = decode(std::span{wire.data(), len}, &err);
    EXPECT_FALSE(decoded) << "decoded a truncated message at len " << len;
    EXPECT_FALSE(err.empty());
  }
}

TEST(CodecRobustness, TrailingGarbageRejected) {
  auto wire = encode(sample_query());
  wire.push_back(0x00);
  std::string err;
  EXPECT_FALSE(decode(wire, &err));
  EXPECT_EQ(err, "trailing bytes");
}

TEST(CodecRobustness, CompressionLoopRejected) {
  // Header + a name that is a pointer to itself at offset 12.
  std::vector<std::uint8_t> wire{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
                                 0xc0, 12,  // qname: pointer to itself
                                 0, 1, 0, 1};
  EXPECT_FALSE(decode(wire));
}

TEST(CodecRobustness, ForwardPointerRejected) {
  std::vector<std::uint8_t> wire{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
                                 0xc0, 20,  // points past itself
                                 0, 1, 0, 1, 0, 0, 0, 0};
  EXPECT_FALSE(decode(wire));
}

TEST(CodecRobustness, BadRdlengthRejected) {
  auto wire = encode(sample_response());
  // Find the first A RDLENGTH (=4) and corrupt it upward.
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    if (wire[i] == 0 && wire[i + 1] == 4) {
      wire[i + 1] = 200;
      break;
    }
  }
  EXPECT_FALSE(decode(wire));
}

TEST(CodecRobustness, RandomMutationsNeverCrash) {
  const auto base = encode(sample_response());
  Rng rng{99};
  for (int trial = 0; trial < 2'000; ++trial) {
    auto wire = base;
    const int flips = 1 + static_cast<int>(rng.bounded(4));
    for (int f = 0; f < flips; ++f) {
      wire[rng.bounded(wire.size())] = static_cast<std::uint8_t>(rng.bounded(256));
    }
    (void)decode(wire);  // must not crash or hang; result may be anything
  }
}

TEST(CodecRobustness, RandomBytesNeverCrash) {
  Rng rng{123};
  for (int trial = 0; trial < 2'000; ++trial) {
    std::vector<std::uint8_t> wire(rng.bounded(64));
    for (auto& b : wire) b = static_cast<std::uint8_t>(rng.bounded(256));
    (void)decode(wire);
  }
}

TEST(Codec, EncodedSizeMatchesEncoding) {
  const auto msg = sample_response();
  EXPECT_EQ(encoded_size(msg), encode(msg).size());
}

}  // namespace
}  // namespace dnsctx::dns
