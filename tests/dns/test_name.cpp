// Unit tests for DNS domain names.
#include <gtest/gtest.h>

#include "dns/name.hpp"

namespace dnsctx::dns {
namespace {

TEST(DomainName, ParseNormalisesCase) {
  const auto n = DomainName::must("WWW.Example.COM");
  EXPECT_EQ(n.text(), "www.example.com");
}

TEST(DomainName, AcceptsTrailingDot) {
  EXPECT_EQ(DomainName::must("example.com.").text(), "example.com");
}

TEST(DomainName, RootForms) {
  const auto root = DomainName::must("");
  EXPECT_TRUE(root.is_root());
  EXPECT_EQ(root.label_count(), 0u);
  EXPECT_EQ(DomainName::must(".").text(), "");
}

struct NameCase {
  const char* text;
  bool ok;
};

class NameParseTest : public ::testing::TestWithParam<NameCase> {};

TEST_P(NameParseTest, Validation) {
  EXPECT_EQ(DomainName::parse(GetParam().text).has_value(), GetParam().ok) << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, NameParseTest,
    ::testing::Values(NameCase{"example.com", true}, NameCase{"a.b.c.d.e.f", true},
                      NameCase{"xn--bcher-kva.example", true},
                      NameCase{"_dmarc.example.com", true},
                      NameCase{"host-1.example.com", true},
                      NameCase{"a..b", false},               // empty label
                      NameCase{".leading.example", false},   // empty first label
                      NameCase{"bad label.example", false},  // space
                      NameCase{"exa$mple.com", false},       // charset
                      NameCase{"123.456.789.0", true}));     // numeric labels are legal names

TEST(DomainName, RejectsOverlongLabel) {
  const std::string label(64, 'a');
  EXPECT_FALSE(DomainName::parse(label + ".com"));
  const std::string ok_label(63, 'a');
  EXPECT_TRUE(DomainName::parse(ok_label + ".com"));
}

TEST(DomainName, RejectsOverlongName) {
  std::string name;
  for (int i = 0; i < 60; ++i) name += "abcd.";
  name += "com";  // > 253 chars
  EXPECT_FALSE(DomainName::parse(name));
}

TEST(DomainName, MustThrowsOnInvalid) {
  EXPECT_THROW(DomainName::must("bad..name"), std::invalid_argument);
}

TEST(DomainName, Labels) {
  const auto n = DomainName::must("www.example.com");
  const auto labels = n.labels();
  ASSERT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels[0], "www");
  EXPECT_EQ(labels[1], "example");
  EXPECT_EQ(labels[2], "com");
  EXPECT_EQ(n.label_count(), 3u);
}

TEST(DomainName, FromLabels) {
  const std::string_view labels[] = {"api", "svc", "io"};
  const auto n = DomainName::from_labels(labels);
  ASSERT_TRUE(n);
  EXPECT_EQ(n->text(), "api.svc.io");
}

TEST(DomainName, Parent) {
  auto n = DomainName::must("a.b.c");
  n = n.parent();
  EXPECT_EQ(n.text(), "b.c");
  n = n.parent();
  EXPECT_EQ(n.text(), "c");
  n = n.parent();
  EXPECT_TRUE(n.is_root());
  EXPECT_TRUE(n.parent().is_root());
}

TEST(DomainName, IsWithin) {
  const auto zone = DomainName::must("example.com");
  EXPECT_TRUE(DomainName::must("example.com").is_within(zone));
  EXPECT_TRUE(DomainName::must("www.example.com").is_within(zone));
  EXPECT_FALSE(DomainName::must("notexample.com").is_within(zone));
  EXPECT_FALSE(DomainName::must("com").is_within(zone));
  EXPECT_TRUE(DomainName::must("anything.at.all").is_within(DomainName::must("")));
}

TEST(DomainName, Registrable) {
  EXPECT_EQ(DomainName::must("a.b.example.com").registrable().text(), "example.com");
  EXPECT_EQ(DomainName::must("example.com").registrable().text(), "example.com");
  EXPECT_EQ(DomainName::must("com").registrable().text(), "com");
}

TEST(DomainName, EqualityIsCaseInsensitiveViaNormalisation) {
  EXPECT_EQ(DomainName::must("A.B"), DomainName::must("a.b"));
  EXPECT_EQ(DomainNameHash{}(DomainName::must("A.B")), DomainNameHash{}(DomainName::must("a.b")));
}

}  // namespace
}  // namespace dnsctx::dns
