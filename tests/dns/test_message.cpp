// Unit tests for the DNS message model.
#include <gtest/gtest.h>

#include "dns/message.hpp"

namespace dnsctx::dns {
namespace {

TEST(DnsMessage, QueryDefaults) {
  const auto q = DnsMessage::query(42, DomainName::must("a.com"));
  EXPECT_EQ(q.id, 42);
  EXPECT_FALSE(q.flags.qr);
  EXPECT_TRUE(q.flags.rd);
  ASSERT_EQ(q.questions.size(), 1u);
  EXPECT_EQ(q.questions[0].qtype, RrType::kA);
  EXPECT_EQ(q.questions[0].qclass, RrClass::kIn);
}

TEST(DnsMessage, ResponseEchoesQuestionAndId) {
  const auto q = DnsMessage::query(7, DomainName::must("a.com"));
  const auto r = DnsMessage::response(
      q, {ResourceRecord::a(DomainName::must("a.com"), Ipv4Addr{1, 1, 1, 1}, 60)});
  EXPECT_EQ(r.id, 7);
  EXPECT_TRUE(r.flags.qr);
  EXPECT_TRUE(r.flags.ra);
  EXPECT_EQ(r.questions, q.questions);
  EXPECT_EQ(r.flags.rcode, Rcode::kNoError);
}

TEST(DnsMessage, ResponseWithRcode) {
  const auto q = DnsMessage::query(7, DomainName::must("nx.com"));
  const auto r = DnsMessage::response(q, {}, Rcode::kNxDomain);
  EXPECT_EQ(r.flags.rcode, Rcode::kNxDomain);
  EXPECT_TRUE(r.answers.empty());
}

TEST(DnsMessage, AnswerAddressesPicksOnlyARecords) {
  auto q = DnsMessage::query(1, DomainName::must("a.com"));
  DnsMessage r = DnsMessage::response(
      q, {ResourceRecord::cname(DomainName::must("a.com"), DomainName::must("b.com"), 60),
          ResourceRecord::a(DomainName::must("b.com"), Ipv4Addr{9, 9, 9, 9}, 60),
          ResourceRecord::a(DomainName::must("b.com"), Ipv4Addr{9, 9, 9, 10}, 60)});
  const auto addrs = r.answer_addresses();
  ASSERT_EQ(addrs.size(), 2u);
  EXPECT_EQ(addrs[0], Ipv4Addr(9, 9, 9, 9));
}

TEST(DnsMessage, MinAnswerTtl) {
  auto q = DnsMessage::query(1, DomainName::must("a.com"));
  DnsMessage r = DnsMessage::response(
      q, {ResourceRecord::a(DomainName::must("a.com"), Ipv4Addr{1, 1, 1, 1}, 300),
          ResourceRecord::a(DomainName::must("a.com"), Ipv4Addr{1, 1, 1, 2}, 60)});
  EXPECT_EQ(r.min_answer_ttl(), 60u);
  EXPECT_EQ(DnsMessage{}.min_answer_ttl(), 0u);
}

TEST(RrToString, CoversKnownAndUnknown) {
  EXPECT_EQ(to_string(RrType::kA), "A");
  EXPECT_EQ(to_string(RrType::kHttps), "HTTPS");
  EXPECT_EQ(to_string(static_cast<RrType>(4'242)), "TYPE4242");
  EXPECT_EQ(to_string(Rcode::kNxDomain), "NXDOMAIN");
}

TEST(ResourceRecord, TtlDuration) {
  const auto rr = ResourceRecord::a(DomainName::must("a.com"), Ipv4Addr{1, 1, 1, 1}, 90);
  EXPECT_EQ(rr.ttl_duration(), SimDuration::sec(90));
}

}  // namespace
}  // namespace dnsctx::dns
