// Unit + property tests for the TTL-aware DNS cache.
#include <gtest/gtest.h>

#include "dns/cache.hpp"
#include "util/rng.hpp"

namespace dnsctx::dns {
namespace {

[[nodiscard]] std::vector<ResourceRecord> answer(const char* name, std::uint32_t ttl) {
  return {ResourceRecord::a(DomainName::must(name), Ipv4Addr{1, 2, 3, 4}, ttl)};
}

[[nodiscard]] SimTime at(std::int64_t sec) {
  return SimTime::origin() + SimDuration::sec(sec);
}

TEST(DnsCache, HitWithinTtl) {
  DnsCache cache;
  cache.insert(DomainName::must("a.com"), RrType::kA, answer("a.com", 60), Rcode::kNoError,
               at(0));
  const auto hit = cache.lookup(DomainName::must("a.com"), RrType::kA, at(59));
  ASSERT_TRUE(hit);
  EXPECT_FALSE(hit->expired);
  EXPECT_EQ(hit->answers.size(), 1u);
  EXPECT_EQ(hit->expires_at, at(60));
}

TEST(DnsCache, MissAfterTtl) {
  DnsCache cache;
  cache.insert(DomainName::must("a.com"), RrType::kA, answer("a.com", 60), Rcode::kNoError,
               at(0));
  EXPECT_FALSE(cache.lookup(DomainName::must("a.com"), RrType::kA, at(60)));
  EXPECT_EQ(cache.size(), 0u);  // dropped lazily
}

TEST(DnsCache, MissOnUnknownName) {
  DnsCache cache;
  EXPECT_FALSE(cache.lookup(DomainName::must("nope.com"), RrType::kA, at(0)));
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(DnsCache, TypeIsPartOfTheKey) {
  DnsCache cache;
  cache.insert(DomainName::must("a.com"), RrType::kA, answer("a.com", 60), Rcode::kNoError,
               at(0));
  EXPECT_FALSE(cache.lookup(DomainName::must("a.com"), RrType::kAaaa, at(1)));
  EXPECT_TRUE(cache.lookup(DomainName::must("a.com"), RrType::kA, at(1)));
}

TEST(DnsCache, ExtraHoldServesStaleAndFlagsIt) {
  DnsCache cache;
  cache.insert(DomainName::must("a.com"), RrType::kA, answer("a.com", 60), Rcode::kNoError,
               at(0), SimDuration::sec(100));
  const auto hit = cache.lookup(DomainName::must("a.com"), RrType::kA, at(100));
  ASSERT_TRUE(hit);
  EXPECT_TRUE(hit->expired);
  EXPECT_EQ(cache.stats().expired_hits, 1u);
  EXPECT_FALSE(cache.lookup(DomainName::must("a.com"), RrType::kA, at(161)));
}

TEST(DnsCache, ConfigStaleWindowAppliesToAllEntries) {
  DnsCache cache{CacheConfig{.max_stale = SimDuration::sec(30)}};
  cache.insert(DomainName::must("a.com"), RrType::kA, answer("a.com", 10), Rcode::kNoError,
               at(0));
  const auto hit = cache.lookup(DomainName::must("a.com"), RrType::kA, at(20));
  ASSERT_TRUE(hit);
  EXPECT_TRUE(hit->expired);
  EXPECT_FALSE(cache.lookup(DomainName::must("a.com"), RrType::kA, at(41)));
}

TEST(DnsCache, TtlClamping) {
  DnsCache cache{CacheConfig{.min_ttl_sec = 30, .max_ttl_sec = 600}};
  cache.insert(DomainName::must("low.com"), RrType::kA, answer("low.com", 5), Rcode::kNoError,
               at(0));
  EXPECT_TRUE(cache.lookup(DomainName::must("low.com"), RrType::kA, at(29)));
  cache.insert(DomainName::must("high.com"), RrType::kA, answer("high.com", 86'400),
               Rcode::kNoError, at(0));
  EXPECT_FALSE(cache.lookup(DomainName::must("high.com"), RrType::kA, at(601)));
}

TEST(DnsCache, MinTtlAcrossAnswerSet) {
  DnsCache cache;
  std::vector<ResourceRecord> answers = answer("a.com", 300);
  answers.push_back(ResourceRecord::a(DomainName::must("a.com"), Ipv4Addr{5, 6, 7, 8}, 60));
  cache.insert(DomainName::must("a.com"), RrType::kA, std::move(answers), Rcode::kNoError,
               at(0));
  EXPECT_TRUE(cache.lookup(DomainName::must("a.com"), RrType::kA, at(59)));
  EXPECT_FALSE(cache.lookup(DomainName::must("a.com"), RrType::kA, at(61)));
}

TEST(DnsCache, ReinsertReplaces) {
  DnsCache cache;
  cache.insert(DomainName::must("a.com"), RrType::kA, answer("a.com", 10), Rcode::kNoError,
               at(0));
  cache.insert(DomainName::must("a.com"), RrType::kA, answer("a.com", 100), Rcode::kNoError,
               at(5));
  const auto hit = cache.lookup(DomainName::must("a.com"), RrType::kA, at(50));
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->inserted_at, at(5));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(DnsCache, LruEvictionPrefersLeastRecentlyUsed) {
  DnsCache cache{CacheConfig{.capacity = 2}};
  cache.insert(DomainName::must("a.com"), RrType::kA, answer("a.com", 600), Rcode::kNoError,
               at(0));
  cache.insert(DomainName::must("b.com"), RrType::kA, answer("b.com", 600), Rcode::kNoError,
               at(1));
  (void)cache.lookup(DomainName::must("a.com"), RrType::kA, at(2));  // touch a
  cache.insert(DomainName::must("c.com"), RrType::kA, answer("c.com", 600), Rcode::kNoError,
               at(3));  // evicts b
  EXPECT_TRUE(cache.peek(DomainName::must("a.com"), RrType::kA, at(4)));
  EXPECT_FALSE(cache.peek(DomainName::must("b.com"), RrType::kA, at(4)));
  EXPECT_TRUE(cache.peek(DomainName::must("c.com"), RrType::kA, at(4)));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(DnsCache, NegativeEntryKeepsRcode) {
  DnsCache cache{CacheConfig{.min_ttl_sec = 30}};
  cache.insert(DomainName::must("nx.com"), RrType::kA, {}, Rcode::kNxDomain, at(0));
  const auto hit = cache.lookup(DomainName::must("nx.com"), RrType::kA, at(10));
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->rcode, Rcode::kNxDomain);
  EXPECT_TRUE(hit->answers.empty());
}

TEST(DnsCache, PeekDoesNotCountOrTouch) {
  DnsCache cache{CacheConfig{.capacity = 2}};
  cache.insert(DomainName::must("a.com"), RrType::kA, answer("a.com", 600), Rcode::kNoError,
               at(0));
  (void)cache.peek(DomainName::must("a.com"), RrType::kA, at(1));
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(DnsCache, PurgeExpiredDropsOnlyDeadEntries) {
  DnsCache cache;
  cache.insert(DomainName::must("a.com"), RrType::kA, answer("a.com", 10), Rcode::kNoError,
               at(0));
  cache.insert(DomainName::must("b.com"), RrType::kA, answer("b.com", 600), Rcode::kNoError,
               at(0));
  cache.purge_expired(at(20));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.peek(DomainName::must("b.com"), RrType::kA, at(20)));
}

TEST(DnsCache, EraseAndClear) {
  DnsCache cache;
  cache.insert(DomainName::must("a.com"), RrType::kA, answer("a.com", 600), Rcode::kNoError,
               at(0));
  cache.insert(DomainName::must("b.com"), RrType::kA, answer("b.com", 600), Rcode::kNoError,
               at(0));
  cache.erase(DomainName::must("a.com"), RrType::kA);
  EXPECT_EQ(cache.size(), 1u);
  cache.erase(DomainName::must("a.com"), RrType::kA);  // idempotent
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(DnsCache, ForEachVisitsLiveEntries) {
  DnsCache cache;
  cache.insert(DomainName::must("a.com"), RrType::kA, answer("a.com", 600), Rcode::kNoError,
               at(0));
  cache.insert(DomainName::must("b.com"), RrType::kA, answer("b.com", 60), Rcode::kNoError,
               at(0));
  int visited = 0;
  cache.for_each([&](const DomainName&, RrType, SimTime) { ++visited; });
  EXPECT_EQ(visited, 2);
}

TEST(DnsCache, StatsHitRate) {
  DnsCache cache;
  cache.insert(DomainName::must("a.com"), RrType::kA, answer("a.com", 600), Rcode::kNoError,
               at(0));
  (void)cache.lookup(DomainName::must("a.com"), RrType::kA, at(1));
  (void)cache.lookup(DomainName::must("zzz.com"), RrType::kA, at(1));
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.5);
}

// Property: under heavy churn the cache never exceeds capacity and never
// serves an entry beyond its servable lifetime.
class CacheChurnTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CacheChurnTest, CapacityAndLifetimeInvariants) {
  const std::size_t capacity = GetParam();
  DnsCache cache{CacheConfig{.capacity = capacity}};
  Rng rng{GetParam()};
  SimTime now = SimTime::origin();
  for (int step = 0; step < 5'000; ++step) {
    now += SimDuration::sec(static_cast<std::int64_t>(rng.bounded(20)));
    const auto name =
        DomainName::must("host" + std::to_string(rng.bounded(capacity * 3)) + ".com");
    if (rng.bernoulli(0.5)) {
      cache.insert(name, RrType::kA, answer(name.text().c_str(), 30 + static_cast<std::uint32_t>(rng.bounded(300))),
                   Rcode::kNoError, now);
    } else if (const auto hit = cache.lookup(name, RrType::kA, now)) {
      EXPECT_FALSE(hit->expired);  // no stale window configured
      EXPECT_GT(hit->expires_at, now);
    }
    EXPECT_LE(cache.size(), capacity);
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, CacheChurnTest, ::testing::Values(4u, 16u, 64u));

}  // namespace
}  // namespace dnsctx::dns
