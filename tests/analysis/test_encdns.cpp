// dnsctx — encrypted-flow classifier tests: feature extraction (hello
// exclusion, padding fractions), the looks_like_dns decision rule, and
// the configuration-truth confusion matrix.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/encdns.hpp"
#include "netsim/transport.hpp"

namespace dnsctx::analysis {
namespace {

constexpr Ipv4Addr kClient{100, 66, 3, 7};
constexpr Ipv4Addr kResolver{100, 66, 250, 1};
constexpr Ipv4Addr kWeb{93, 184, 216, 34};

/// A DoT/DoH-shaped flow: hello exchange plus `pairs` fully padded
/// query/response rounds.
[[nodiscard]] capture::EncFlowRecord dns_flow(Ipv4Addr server, std::uint16_t port,
                                              std::uint32_t pairs) {
  const auto& traits = netsim::traits_for(
      port == 853 ? netsim::Transport::kDoT : netsim::Transport::kDoH);
  capture::EncFlowRecord e;
  e.start = SimTime::from_us(1'000'000);
  e.duration = SimDuration::ms(250);
  e.client_ip = kClient;
  e.server_ip = server;
  e.client_port = 31'000;
  e.server_port = port;
  e.up_msgs = pairs + 1;
  e.down_msgs = pairs + 1;
  e.first_up_bytes = traits.client_hello_bytes;
  e.first_down_bytes = traits.server_hello_bytes;
  e.up_bytes = traits.client_hello_bytes +
               pairs * (traits.query_pad_block + traits.per_message_overhead);
  e.down_bytes = traits.server_hello_bytes +
                 pairs * (traits.response_pad_block + traits.per_message_overhead);
  e.pad_aligned_up = pairs;
  e.pad_aligned_down = pairs;
  return e;
}

/// An ordinary HTTPS fetch: hello exchange, one request, two response
/// bursts of arbitrary (unaligned) sizes.
[[nodiscard]] capture::EncFlowRecord web_flow() {
  capture::EncFlowRecord e;
  e.start = SimTime::from_us(2'000'000);
  e.duration = SimDuration::ms(900);
  e.client_ip = kClient;
  e.server_ip = kWeb;
  e.client_port = 31'001;
  e.server_port = 443;
  e.up_msgs = 2;
  e.down_msgs = 3;
  e.first_up_bytes = 517;
  e.first_down_bytes = 4'133;
  e.up_bytes = 517 + 777;
  e.down_bytes = 4'133 + 31'337 + 1'205;
  e.pad_aligned_up = 0;
  e.pad_aligned_down = 0;
  return e;
}

TEST(EncFeatures, HelloIsExcludedFromDataStatistics) {
  const auto rec = dns_flow(kResolver, 853, 3);
  const EncFlowFeatures f = extract_features(rec);
  EXPECT_EQ(f.data_msgs_up, 3u);
  EXPECT_EQ(f.data_msgs_down, 3u);
  const auto& traits = netsim::traits_for(netsim::Transport::kDoT);
  EXPECT_DOUBLE_EQ(f.mean_data_up,
                   static_cast<double>(traits.query_pad_block +
                                       traits.per_message_overhead));
  EXPECT_DOUBLE_EQ(f.mean_data_down,
                   static_cast<double>(traits.response_pad_block +
                                       traits.per_message_overhead));
  EXPECT_DOUBLE_EQ(f.pad_frac_up, 1.0);
  EXPECT_DOUBLE_EQ(f.pad_frac_down, 1.0);
  EXPECT_EQ(f.first_up_bytes, traits.client_hello_bytes);
  EXPECT_TRUE(f.dot_port);
  EXPECT_DOUBLE_EQ(f.duration_sec, 0.25);
}

TEST(EncFeatures, HelloOnlyFlowHasNoDataAndNoDivByZero) {
  const auto rec = dns_flow(kResolver, 853, 0);
  const EncFlowFeatures f = extract_features(rec);
  EXPECT_EQ(f.data_msgs_up, 0u);
  EXPECT_EQ(f.data_msgs_down, 0u);
  EXPECT_DOUBLE_EQ(f.mean_data_up, 0.0);
  EXPECT_DOUBLE_EQ(f.pad_frac_up, 0.0);
}

TEST(EncClassifier, FlagsPaddedDnsChannelsOnBothPorts) {
  EXPECT_TRUE(looks_like_dns(dns_flow(kResolver, 853, 1)));
  // DoH hiding among HTTPS: same decision, no port hint needed.
  EXPECT_TRUE(looks_like_dns(dns_flow(kResolver, 443, 5)));
}

TEST(EncClassifier, RejectsWebShapedFlows) {
  EXPECT_FALSE(looks_like_dns(web_flow()));
  // Hello-only flows carry no data to judge.
  EXPECT_FALSE(looks_like_dns(dns_flow(kResolver, 853, 0)));
  // One unaligned message in either direction breaks the full-alignment rule.
  auto partial = dns_flow(kResolver, 443, 4);
  partial.pad_aligned_down = 3;
  EXPECT_FALSE(looks_like_dns(partial));
  // A huge first flight is no ClientHello-sized opener.
  auto big_open = dns_flow(kWeb, 443, 2);
  big_open.first_up_bytes = 2'048;
  EXPECT_FALSE(looks_like_dns(big_open));
}

TEST(EncClassifier, ConfusionMatrixUsesConfigurationTruth) {
  std::vector<capture::EncFlowRecord> flows;
  flows.push_back(dns_flow(kResolver, 853, 2));  // tp
  flows.push_back(dns_flow(kResolver, 443, 1));  // tp
  flows.push_back(dns_flow(kResolver, 853, 0));  // fn: hello-only, missed
  flows.push_back(web_flow());                   // tn
  flows.push_back(dns_flow(kWeb, 443, 3));       // fp: DNS-shaped, wrong server

  const EncConfusion c = evaluate_enc_classifier(flows, {kResolver});
  EXPECT_EQ(c.tp, 2u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_EQ(c.tn, 1u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_EQ(c.total(), 5u);
  EXPECT_DOUBLE_EQ(c.precision(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(c.recall(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(c.accuracy(), 3.0 / 5.0);
}

TEST(EncClassifier, EmptyConfusionHasSafeMetrics) {
  const EncConfusion c = evaluate_enc_classifier({}, {kResolver});
  EXPECT_EQ(c.total(), 0u);
  EXPECT_DOUBLE_EQ(c.precision(), 0.0);
  EXPECT_DOUBLE_EQ(c.recall(), 0.0);
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.0);
}

TEST(EncClassifier, RenderReportShowsCountsAndRates) {
  EncConfusion c;
  c.tp = 4;
  c.fp = 1;
  c.tn = 10;
  c.fn = 0;
  const std::string report = render_enc_report(c);
  EXPECT_NE(report.find("15 flows"), std::string::npos);
  EXPECT_NE(report.find("tp 4 fp 1 tn 10 fn 0"), std::string::npos);
  EXPECT_NE(report.find("precision 80.00%"), std::string::npos);
  EXPECT_NE(report.find("recall 100.00%"), std::string::npos);
}

}  // namespace
}  // namespace dnsctx::analysis
