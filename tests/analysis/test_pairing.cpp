// Unit tests for DN-Hunter pairing on hand-built datasets.
#include <gtest/gtest.h>

#include <set>

#include "analysis/pairing.hpp"

namespace dnsctx::analysis {
namespace {

constexpr Ipv4Addr kHouse{100, 66, 1, 1};
constexpr Ipv4Addr kHouse2{100, 66, 1, 2};
constexpr Ipv4Addr kServer{34, 1, 1, 1};
constexpr Ipv4Addr kResolver{100, 66, 250, 1};

[[nodiscard]] capture::DnsRecord dns_at(std::int64_t ms, Ipv4Addr client, Ipv4Addr answer,
                                        std::uint32_t ttl, const char* query = "a.com") {
  capture::DnsRecord d;
  d.ts = SimTime::origin() + SimDuration::ms(ms);
  d.duration = SimDuration::ms(2);
  d.client_ip = client;
  d.resolver_ip = kResolver;
  d.query = query;
  d.answered = true;
  d.answers = {{answer, ttl}};
  return d;
}

[[nodiscard]] capture::ConnRecord conn_at(std::int64_t ms, Ipv4Addr orig, Ipv4Addr resp) {
  capture::ConnRecord c;
  c.start = SimTime::origin() + SimDuration::ms(ms);
  c.duration = SimDuration::sec(1);
  c.orig_ip = orig;
  c.resp_ip = resp;
  c.orig_port = 10'000;
  c.resp_port = 443;
  return c;
}

TEST(Pairing, PicksMostRecentNonExpired) {
  capture::Dataset ds;
  ds.dns.push_back(dns_at(0, kHouse, kServer, 600));
  ds.dns.push_back(dns_at(5'000, kHouse, kServer, 600));
  ds.conns.push_back(conn_at(10'000, kHouse, kServer));
  const auto result = pair_connections(ds);
  ASSERT_EQ(result.conns.size(), 1u);
  EXPECT_EQ(result.conns[0].dns_idx, 1);  // the later lookup
  EXPECT_FALSE(result.conns[0].expired_pairing);
  EXPECT_EQ(result.conns[0].live_candidates, 2u);
  EXPECT_EQ(result.paired, 1u);
  EXPECT_EQ(result.multiple_candidates, 1u);
}

TEST(Pairing, FallsBackToMostRecentExpired) {
  capture::Dataset ds;
  ds.dns.push_back(dns_at(0, kHouse, kServer, 1));      // expires at ~1 s
  ds.dns.push_back(dns_at(2'000, kHouse, kServer, 1));  // expires at ~3 s
  ds.conns.push_back(conn_at(60'000, kHouse, kServer));
  const auto result = pair_connections(ds);
  EXPECT_EQ(result.conns[0].dns_idx, 1);
  EXPECT_TRUE(result.conns[0].expired_pairing);
  EXPECT_EQ(result.conns[0].live_candidates, 0u);
  EXPECT_EQ(result.paired_expired, 1u);
  // Expired-fallback counts as a unique candidate (a single choice).
  EXPECT_EQ(result.unique_candidate, 1u);
}

TEST(Pairing, NoCandidateMeansUnpaired) {
  capture::Dataset ds;
  ds.conns.push_back(conn_at(1'000, kHouse, kServer));
  const auto result = pair_connections(ds);
  EXPECT_EQ(result.conns[0].dns_idx, -1);
  EXPECT_EQ(result.unpaired, 1u);
}

TEST(Pairing, AnswerAfterConnDoesNotPair) {
  capture::Dataset ds;
  ds.dns.push_back(dns_at(5'000, kHouse, kServer, 600));
  ds.conns.push_back(conn_at(1'000, kHouse, kServer));
  const auto result = pair_connections(ds);
  EXPECT_EQ(result.conns[0].dns_idx, -1);
}

TEST(Pairing, RespectsHouseBoundary) {
  capture::Dataset ds;
  ds.dns.push_back(dns_at(0, kHouse2, kServer, 600));  // another house's lookup
  ds.conns.push_back(conn_at(1'000, kHouse, kServer));
  const auto result = pair_connections(ds);
  EXPECT_EQ(result.conns[0].dns_idx, -1);
}

TEST(Pairing, RequiresAnswerContainingTheAddress) {
  capture::Dataset ds;
  ds.dns.push_back(dns_at(0, kHouse, Ipv4Addr{9, 9, 9, 9}, 600));
  ds.conns.push_back(conn_at(1'000, kHouse, kServer));
  const auto result = pair_connections(ds);
  EXPECT_EQ(result.conns[0].dns_idx, -1);
}

TEST(Pairing, FirstUseAssignedChronologically) {
  capture::Dataset ds;
  ds.dns.push_back(dns_at(0, kHouse, kServer, 600));
  ds.conns.push_back(conn_at(100, kHouse, kServer));
  ds.conns.push_back(conn_at(200, kHouse, kServer));
  ds.conns.push_back(conn_at(300, kHouse, kServer));
  const auto result = pair_connections(ds);
  EXPECT_TRUE(result.conns[0].first_use);
  EXPECT_FALSE(result.conns[1].first_use);
  EXPECT_FALSE(result.conns[2].first_use);
  EXPECT_EQ(result.dns_use_count[0], 3u);
}

TEST(Pairing, GapIsConnStartMinusResponse) {
  capture::Dataset ds;
  auto d = dns_at(1'000, kHouse, kServer, 600);
  d.duration = SimDuration::ms(50);
  ds.dns.push_back(d);
  ds.conns.push_back(conn_at(1'500, kHouse, kServer));
  const auto result = pair_connections(ds);
  EXPECT_EQ(result.conns[0].gap, SimDuration::ms(450));
}

TEST(Pairing, UnansweredLookupsAreNeverCandidates) {
  capture::Dataset ds;
  auto d = dns_at(0, kHouse, kServer, 600);
  d.answered = false;
  d.answers.clear();
  ds.dns.push_back(d);
  ds.conns.push_back(conn_at(1'000, kHouse, kServer));
  const auto result = pair_connections(ds);
  EXPECT_EQ(result.conns[0].dns_idx, -1);
}

TEST(Pairing, MultiAddressAnswersIndexEveryAddress) {
  capture::Dataset ds;
  capture::DnsRecord d = dns_at(0, kHouse, kServer, 600);
  d.answers.push_back({Ipv4Addr{34, 1, 1, 2}, 600});
  ds.dns.push_back(d);
  ds.conns.push_back(conn_at(100, kHouse, Ipv4Addr{34, 1, 1, 2}));
  const auto result = pair_connections(ds);
  EXPECT_EQ(result.conns[0].dns_idx, 0);
}

TEST(Pairing, RandomPolicyChoosesAmongLiveCandidates) {
  capture::Dataset ds;
  for (int i = 0; i < 8; ++i) {
    ds.dns.push_back(dns_at(i * 100, kHouse, kServer, 3'600,
                            ("name" + std::to_string(i) + ".com").c_str()));
  }
  for (int i = 0; i < 200; ++i) {
    ds.conns.push_back(conn_at(1'000 + i, kHouse, kServer));
  }
  const auto random = pair_connections(ds, PairingPolicy::kRandom, 7);
  std::set<std::int64_t> chosen;
  for (const auto& pc : random.conns) {
    ASSERT_GE(pc.dns_idx, 0);
    chosen.insert(pc.dns_idx);
    EXPECT_EQ(pc.live_candidates, 8u);
  }
  EXPECT_GT(chosen.size(), 3u);  // spreads across candidates

  const auto most_recent = pair_connections(ds, PairingPolicy::kMostRecent);
  for (const auto& pc : most_recent.conns) EXPECT_EQ(pc.dns_idx, 7);
}

TEST(Pairing, RandomPolicyIsSeedDeterministic) {
  capture::Dataset ds;
  for (int i = 0; i < 4; ++i) {
    ds.dns.push_back(dns_at(i * 100, kHouse, kServer, 3'600,
                            ("n" + std::to_string(i) + ".com").c_str()));
  }
  for (int i = 0; i < 50; ++i) ds.conns.push_back(conn_at(1'000 + i, kHouse, kServer));
  const auto a = pair_connections(ds, PairingPolicy::kRandom, 5);
  const auto b = pair_connections(ds, PairingPolicy::kRandom, 5);
  for (std::size_t i = 0; i < a.conns.size(); ++i) {
    EXPECT_EQ(a.conns[i].dns_idx, b.conns[i].dns_idx);
  }
}

TEST(Pairing, UnusedLookupFraction) {
  capture::Dataset ds;
  ds.dns.push_back(dns_at(0, kHouse, kServer, 600, "used.com"));
  ds.dns.push_back(dns_at(10, kHouse, Ipv4Addr{9, 9, 9, 9}, 600, "unused.com"));
  auto unanswered = dns_at(20, kHouse, kServer, 600, "failed.com");
  unanswered.answered = false;
  unanswered.answers.clear();
  ds.dns.push_back(unanswered);  // not eligible
  ds.conns.push_back(conn_at(100, kHouse, kServer));
  const auto result = pair_connections(ds);
  EXPECT_DOUBLE_EQ(result.unused_lookup_frac(ds), 0.5);
}

TEST(Pairing, UniqueCandidateFraction) {
  capture::Dataset ds;
  ds.dns.push_back(dns_at(0, kHouse, kServer, 3'600, "a.com"));
  ds.dns.push_back(dns_at(10, kHouse, kServer, 3'600, "b.com"));  // same IP: ambiguity
  ds.dns.push_back(dns_at(20, kHouse, Ipv4Addr{9, 9, 9, 9}, 3'600, "c.com"));
  ds.conns.push_back(conn_at(100, kHouse, kServer));              // two candidates
  ds.conns.push_back(conn_at(200, kHouse, Ipv4Addr{9, 9, 9, 9}));  // one candidate
  const auto result = pair_connections(ds);
  EXPECT_DOUBLE_EQ(result.unique_candidate_frac(), 0.5);
}

}  // namespace
}  // namespace dnsctx::analysis
