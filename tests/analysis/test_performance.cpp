// Unit tests for §6 performance analysis (Fig 2 + significance quadrants).
#include <gtest/gtest.h>

#include "analysis/performance.hpp"

namespace dnsctx::analysis {
namespace {

constexpr Ipv4Addr kHouse{100, 66, 1, 1};
constexpr Ipv4Addr kResolver{100, 66, 250, 1};

struct Case {
  double lookup_ms;
  double conn_sec;
};

/// Build a dataset of blocked connections with given (D, A) pairs; all
/// become SC or R depending on lookup duration vs the derived threshold.
[[nodiscard]] capture::Dataset build(const std::vector<Case>& cases) {
  capture::Dataset ds;
  std::int64_t cursor_ms = 0;
  int idx = 0;
  for (const auto& c : cases) {
    const Ipv4Addr server{34, 1, static_cast<std::uint8_t>(idx / 200),
                          static_cast<std::uint8_t>(1 + idx % 200)};
    capture::DnsRecord d;
    d.ts = SimTime::origin() + SimDuration::ms(cursor_ms);
    d.duration = SimDuration::from_ms(c.lookup_ms);
    d.client_ip = kHouse;
    d.resolver_ip = kResolver;
    d.query = "q" + std::to_string(idx) + ".com";
    d.answered = true;
    d.answers = {{server, 86'400}};
    ds.dns.push_back(d);
    capture::ConnRecord conn;
    conn.start = d.response_time() + SimDuration::ms(5);  // blocked
    conn.duration = SimDuration::from_sec(c.conn_sec);
    conn.orig_ip = kHouse;
    conn.resp_ip = server;
    conn.orig_port = 10'000;
    conn.resp_port = 443;
    conn.resp_bytes = 1'000;
    ds.conns.push_back(conn);
    cursor_ms += 60'000;
    ++idx;
  }
  return ds;
}

[[nodiscard]] PerformanceAnalysis analyze(const capture::Dataset& ds) {
  const auto pairing = pair_connections(ds);
  ClassifyConfig cfg;
  cfg.per_resolver_min_lookups = 1'000'000;  // always use the 5 ms default
  const auto classified = classify_connections(ds, pairing, cfg);
  return analyze_performance(ds, pairing, classified);
}

TEST(Performance, QuadrantAssignment) {
  // D=2ms,A=10s → insignificant. D=2ms,A=0.1s → relative only (2/102=2%).
  // D=50ms,A=60s → absolute only. D=50ms,A=1s → significant.
  const auto ds = build({{2.0, 10.0}, {2.0, 0.1}, {50.0, 60.0}, {50.0, 1.0}});
  const auto perf = analyze(ds);
  EXPECT_DOUBLE_EQ(perf.insignificant_both, 0.25);
  EXPECT_DOUBLE_EQ(perf.relative_only, 0.25);
  EXPECT_DOUBLE_EQ(perf.absolute_only, 0.25);
  EXPECT_DOUBLE_EQ(perf.significant_both, 0.25);
  EXPECT_DOUBLE_EQ(perf.significant_overall, 0.25);
}

TEST(Performance, QuadrantsSumToOne) {
  std::vector<Case> cases;
  Rng rng{3};
  for (int i = 0; i < 200; ++i) {
    cases.push_back(Case{rng.uniform(0.5, 200.0), rng.uniform(0.05, 120.0)});
  }
  const auto perf = analyze(build(cases));
  EXPECT_NEAR(perf.insignificant_both + perf.relative_only + perf.absolute_only +
                  perf.significant_both,
              1.0, 1e-9);
}

TEST(Performance, ContributionFormula) {
  // D = 1000 ms, A = 9 s → contribution = 10%.
  const auto perf = analyze(build({{1'000.0, 9.0}}));
  ASSERT_EQ(perf.contrib_all.count(), 1u);
  EXPECT_NEAR(perf.contrib_all.max(), 10.0, 1e-9);
}

TEST(Performance, LookupCdfSplitsByClass) {
  // Default threshold is 5 ms: 2 ms → SC, 50 ms → R.
  const auto perf = analyze(build({{2.0, 10.0}, {50.0, 10.0}}));
  EXPECT_EQ(perf.lookup_ms_sc.count(), 1u);
  EXPECT_EQ(perf.lookup_ms_r.count(), 1u);
  EXPECT_EQ(perf.lookup_ms_all.count(), 2u);
  EXPECT_NEAR(perf.lookup_ms_sc.max(), 2.0, 1e-9);
  EXPECT_NEAR(perf.lookup_ms_r.min(), 50.0, 1e-9);
}

TEST(Performance, FractionHelpers) {
  const auto perf = analyze(build({{2.0, 10.0}, {30.0, 10.0}, {150.0, 10.0}}));
  EXPECT_NEAR(perf.frac_lookup_over_ms(100.0), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(perf.frac_lookup_over_ms(20.0), 2.0 / 3.0, 1e-9);
}

TEST(Performance, NonBlockedConnectionsExcluded) {
  auto ds = build({{2.0, 10.0}});
  // Add an LC-style conn far after its lookup: must not appear in Fig 2.
  capture::DnsRecord d = ds.dns[0];
  d.ts = SimTime::origin() + SimDuration::sec(600);
  d.query = "other.com";
  d.answers = {{Ipv4Addr{35, 1, 1, 1}, 86'400}};
  ds.dns.push_back(d);
  capture::ConnRecord late;
  late.start = d.response_time() + SimDuration::sec(30);
  late.duration = SimDuration::sec(1);
  late.orig_ip = kHouse;
  late.resp_ip = Ipv4Addr{35, 1, 1, 1};
  late.orig_port = 10'000;
  late.resp_port = 443;
  ds.conns.push_back(late);
  const auto perf = analyze(ds);
  EXPECT_EQ(perf.lookup_ms_all.count(), 1u);
}

TEST(Performance, CustomCriteria) {
  const auto ds = build({{30.0, 10.0}});
  const auto pairing = pair_connections(ds);
  ClassifyConfig ccfg;
  ccfg.per_resolver_min_lookups = 1'000'000;
  const auto classified = classify_connections(ds, pairing, ccfg);
  // With a 50 ms absolute criterion this lookup becomes insignificant.
  const auto perf = analyze_performance(ds, pairing, classified, 50.0, 1.0);
  EXPECT_DOUBLE_EQ(perf.insignificant_both, 1.0);
}

TEST(Performance, EmptyDatasetSafe) {
  const capture::Dataset ds;
  const auto pairing = pair_connections(ds);
  const auto classified = classify_connections(ds, pairing);
  const auto perf = analyze_performance(ds, pairing, classified);
  EXPECT_TRUE(perf.lookup_ms_all.empty());
  EXPECT_EQ(perf.significant_overall, 0.0);
}

}  // namespace
}  // namespace dnsctx::analysis
