// Unit tests for the §5.1 N-class breakdown.
#include <gtest/gtest.h>

#include "analysis/nclass.hpp"

namespace dnsctx::analysis {
namespace {

constexpr Ipv4Addr kHouse{100, 66, 1, 1};
constexpr Ipv4Addr kNtpServer{128, 138, 141, 172};
constexpr Ipv4Addr kAlarm{204, 141, 57, 10};

struct Builder {
  capture::Dataset ds;
  Classified classified;

  void n_conn(std::uint16_t orig_port, std::uint16_t resp_port, Ipv4Addr resp,
              std::uint64_t resp_bytes = 100) {
    capture::ConnRecord c;
    c.start = SimTime::from_us(static_cast<std::int64_t>(ds.conns.size()) * 1'000);
    c.orig_ip = kHouse;
    c.resp_ip = resp;
    c.orig_port = orig_port;
    c.resp_port = resp_port;
    c.resp_bytes = resp_bytes;
    c.proto = resp_port == 123 ? Proto::kUdp : Proto::kTcp;
    ds.conns.push_back(c);
    classified.classes.push_back(ConnClass::kN);
  }

  void paired_conn() {
    capture::ConnRecord c;
    c.start = SimTime::from_us(static_cast<std::int64_t>(ds.conns.size()) * 1'000);
    c.orig_ip = kHouse;
    c.resp_ip = Ipv4Addr{34, 1, 1, 1};
    c.orig_port = 10'000;
    c.resp_port = 443;
    ds.conns.push_back(c);
    classified.classes.push_back(ConnClass::kSC);
  }
};

TEST(NClass, HighPortFraction) {
  Builder b;
  b.n_conn(51'413, 38'112, Ipv4Addr{60, 1, 1, 1});  // P2P
  b.n_conn(51'413, 42'001, Ipv4Addr{61, 1, 1, 1});  // P2P
  b.n_conn(123, 123, kNtpServer, 0);                // reserved
  const auto out = analyze_n_class(b.ds, b.classified);
  EXPECT_EQ(out.n_total, 3u);
  EXPECT_EQ(out.high_port, 2u);
  EXPECT_NEAR(out.high_port_frac(), 2.0 / 3.0, 1e-9);
}

TEST(NClass, PortTallies) {
  Builder b;
  b.n_conn(10'000, 443, kAlarm);
  b.n_conn(10'001, 443, kAlarm);
  b.n_conn(123, 123, kNtpServer, 0);   // failed NTP (no response bytes)
  b.n_conn(123, 123, kNtpServer, 48);  // answered NTP
  b.n_conn(10'002, 80, Ipv4Addr{34, 2, 2, 2});
  b.n_conn(10'003, 853, Ipv4Addr{1, 1, 1, 1});
  const auto out = analyze_n_class(b.ds, b.classified);
  EXPECT_EQ(out.port_443, 2u);
  EXPECT_EQ(out.port_123, 2u);
  EXPECT_EQ(out.failed_ntp, 1u);
  EXPECT_EQ(out.port_80, 1u);
  EXPECT_EQ(out.port_853, 1u);
}

TEST(NClass, TopDestinationsRanked) {
  Builder b;
  for (int i = 0; i < 5; ++i) b.n_conn(10'000, 443, kAlarm);
  for (int i = 0; i < 3; ++i) b.n_conn(123, 123, kNtpServer, 0);
  const auto out = analyze_n_class(b.ds, b.classified, 2);
  ASSERT_EQ(out.top_reserved_destinations.size(), 2u);
  EXPECT_EQ(out.top_reserved_destinations[0].first, kAlarm);
  EXPECT_EQ(out.top_reserved_destinations[0].second, 5u);
  EXPECT_EQ(out.top_reserved_destinations[1].first, kNtpServer);
}

TEST(NClass, UnexplainedShareExcludesP2p) {
  Builder b;
  b.n_conn(51'413, 38'112, Ipv4Addr{60, 1, 1, 1});  // P2P: explained
  b.n_conn(10'000, 443, kAlarm);                    // reserved: the DoH-suspect share
  b.paired_conn();
  b.paired_conn();
  const auto out = analyze_n_class(b.ds, b.classified);
  EXPECT_DOUBLE_EQ(out.unexplained_share_of_all, 0.25);  // 1 of 4 conns
}

TEST(NClass, NonNConnectionsIgnored) {
  Builder b;
  b.paired_conn();
  b.paired_conn();
  const auto out = analyze_n_class(b.ds, b.classified);
  EXPECT_EQ(out.n_total, 0u);
  EXPECT_EQ(out.high_port_frac(), 0.0);
  EXPECT_EQ(out.unexplained_share_of_all, 0.0);
}

}  // namespace
}  // namespace dnsctx::analysis
