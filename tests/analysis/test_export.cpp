// Unit tests for CSV export.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/export.hpp"
#include "util/strings.hpp"

namespace dnsctx::analysis {
namespace {

TEST(ExportCsv, CdfSeriesIsMonotone) {
  Cdf cdf;
  for (int i = 0; i < 1'000; ++i) cdf.add(i * 0.37);
  std::stringstream ss;
  write_cdf_csv(ss, cdf, "delay_ms", 50);
  std::string line;
  std::getline(ss, line);
  EXPECT_EQ(line, "delay_ms,cdf");
  double prev_x = -1e300, prev_f = -1.0;
  std::size_t rows = 0;
  while (std::getline(ss, line)) {
    const auto fields = split(line, ',');
    ASSERT_EQ(fields.size(), 2u);
    const double x = std::stod(std::string{fields[0]});
    const double f = std::stod(std::string{fields[1]});
    EXPECT_GE(x, prev_x);
    EXPECT_GT(f, prev_f);
    prev_x = x;
    prev_f = f;
    ++rows;
  }
  EXPECT_EQ(rows, 51u);
  EXPECT_DOUBLE_EQ(prev_f, 1.0);
}

TEST(ExportCsv, EmptyCdfIsHeaderOnly) {
  std::stringstream ss;
  write_cdf_csv(ss, Cdf{}, "x");
  EXPECT_EQ(ss.str(), "x,cdf\n");
}

TEST(ExportCsv, Table2SharesSumToOne) {
  Study study;
  study.classified.counts.n = 10;
  study.classified.counts.lc = 40;
  study.classified.counts.p = 10;
  study.classified.counts.sc = 25;
  study.classified.counts.r = 15;
  std::stringstream ss;
  write_table2_csv(ss, study);
  std::string line;
  std::getline(ss, line);  // header
  double total = 0.0;
  while (std::getline(ss, line)) {
    const auto fields = split(line, ',');
    total += std::stod(std::string{fields[2]});
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ExportCsv, Table1Rows) {
  Study study;
  Table1Row row;
  row.platform = "Local";
  row.pct_houses = 92.4;
  row.pct_lookups = 72.8;
  row.lookups = 123;
  study.table1.push_back(row);
  std::stringstream ss;
  write_table1_csv(ss, study);
  EXPECT_NE(ss.str().find("Local,92.40,72.80"), std::string::npos);
  EXPECT_NE(ss.str().find(",123"), std::string::npos);
}

TEST(ExportCsv, ExportStudyWritesFiles) {
  Study study;
  study.blocking.gap_ms.add(1.0);
  study.blocking.gap_ms.add(100.0);
  study.performance.lookup_ms_all.add(2.0);
  study.performance.contrib_all.add(1.0);
  PlatformPerf perf;
  perf.platform = "Local";
  perf.r_lookup_ms.add(30.0);
  perf.throughput_bps.add(1'000.0);
  study.platforms.push_back(std::move(perf));

  const std::string dir = "/tmp/dnsctx_export_test";
  std::filesystem::create_directories(dir);
  const auto files = export_study_csv(study, dir);
  EXPECT_GE(files, 10u);
  EXPECT_TRUE(std::filesystem::exists(dir + "/fig1_gap_cdf.csv"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/fig3_rlookup_local.csv"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/table2.csv"));
  std::filesystem::remove_all(dir);
}

TEST(ExportCsv, BadDirectoryThrows) {
  const Study study;
  EXPECT_THROW((void)export_study_csv(study, "/nonexistent/path/here"), std::runtime_error);
}

}  // namespace
}  // namespace dnsctx::analysis
