// dnsctx — truth-vs-inferred taxonomy tests: the expected-label map, the
// five-tuple join, exact misclassification counts on a hand-built
// fixture, and the out-of-vocabulary rule (kPushed / kDnsTransport flows
// count misclassified wherever the classifier puts them).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/truth.hpp"

namespace dnsctx::analysis {
namespace {

constexpr Ipv4Addr kHouse{100, 66, 3, 7};
constexpr Ipv4Addr kWeb{93, 184, 216, 34};

[[nodiscard]] capture::ConnRecord make_conn(std::uint16_t orig_port) {
  capture::ConnRecord c;
  c.start = SimTime::from_us(1'000'000 + orig_port);
  c.orig_ip = kHouse;
  c.resp_ip = kWeb;
  c.orig_port = orig_port;
  c.resp_port = 443;
  c.proto = Proto::kTcp;
  return c;
}

[[nodiscard]] capture::TruthFlow make_truth(std::uint16_t orig_port,
                                            netsim::TrueClass cls) {
  capture::TruthFlow t;
  t.start = SimTime::from_us(1'000'000 + orig_port);
  t.tuple = FiveTuple{kHouse, kWeb, orig_port, 443, Proto::kTcp};
  t.cls = cls;
  return t;
}

TEST(TruthComparison, ExpectedLabelCoversThePaperTaxonomyOnly) {
  ConnClass out{};
  ASSERT_TRUE(TruthComparison::expected_label(netsim::TrueClass::kNoDns, out));
  EXPECT_EQ(out, ConnClass::kN);
  ASSERT_TRUE(TruthComparison::expected_label(netsim::TrueClass::kLocalCache, out));
  EXPECT_EQ(out, ConnClass::kLC);
  ASSERT_TRUE(TruthComparison::expected_label(netsim::TrueClass::kPrefetched, out));
  EXPECT_EQ(out, ConnClass::kP);
  ASSERT_TRUE(TruthComparison::expected_label(netsim::TrueClass::kSharedCache, out));
  EXPECT_EQ(out, ConnClass::kSC);
  ASSERT_TRUE(TruthComparison::expected_label(netsim::TrueClass::kRequired, out));
  EXPECT_EQ(out, ConnClass::kR);
  // Classes the paper has no name for get no expected label.
  EXPECT_FALSE(TruthComparison::expected_label(netsim::TrueClass::kUnknown, out));
  EXPECT_FALSE(TruthComparison::expected_label(netsim::TrueClass::kPushed, out));
  EXPECT_FALSE(TruthComparison::expected_label(netsim::TrueClass::kDnsTransport, out));
}

TEST(TruthComparison, JoinCountsExactMisclassification) {
  // Five connections, truth known by construction:
  //   port 1: truly LC, inferred LC  — correct
  //   port 2: truly LC, inferred N   — the DoT signature (silent DNS log)
  //   port 3: truly R,  inferred R   — correct
  //   port 4: truly SC, inferred R   — threshold miss
  //   port 5: truly N,  inferred N   — correct
  capture::Dataset ds;
  Classified cls;
  std::vector<capture::TruthFlow> truth;
  const struct {
    std::uint16_t port;
    netsim::TrueClass t;
    ConnClass c;
  } rows[] = {
      {1, netsim::TrueClass::kLocalCache, ConnClass::kLC},
      {2, netsim::TrueClass::kLocalCache, ConnClass::kN},
      {3, netsim::TrueClass::kRequired, ConnClass::kR},
      {4, netsim::TrueClass::kSharedCache, ConnClass::kR},
      {5, netsim::TrueClass::kNoDns, ConnClass::kN},
  };
  for (const auto& r : rows) {
    ds.conns.push_back(make_conn(r.port));
    cls.classes.push_back(r.c);
    truth.push_back(make_truth(r.port, r.t));
  }

  const TruthComparison tc = compare_with_truth(ds, cls, truth);
  EXPECT_EQ(tc.total(), 5u);
  EXPECT_EQ(tc.count(netsim::TrueClass::kLocalCache, ConnClass::kLC), 1u);
  EXPECT_EQ(tc.count(netsim::TrueClass::kLocalCache, ConnClass::kN), 1u);
  EXPECT_EQ(tc.count(netsim::TrueClass::kSharedCache, ConnClass::kR), 1u);
  EXPECT_EQ(tc.row_total(netsim::TrueClass::kLocalCache), 2u);
  EXPECT_EQ(tc.misclassified_in(netsim::TrueClass::kLocalCache), 1u);
  EXPECT_EQ(tc.misclassified_in(netsim::TrueClass::kSharedCache), 1u);
  EXPECT_EQ(tc.misclassified_in(netsim::TrueClass::kNoDns), 0u);
  EXPECT_EQ(tc.misclassified(), 2u);
  EXPECT_DOUBLE_EQ(tc.misclassified_frac(), 2.0 / 5.0);
  EXPECT_EQ(tc.conns_without_truth, 0u);
  EXPECT_EQ(tc.truth_without_conn, 0u);
}

TEST(TruthComparison, OutOfVocabularyClassesCountEntirely) {
  // Resolverless pushes create kPushed flows; whatever label the
  // classifier assigns them is wrong by definition.
  capture::Dataset ds;
  Classified cls;
  std::vector<capture::TruthFlow> truth;
  ds.conns.push_back(make_conn(10));
  cls.classes.push_back(ConnClass::kLC);  // even its "best case" label
  truth.push_back(make_truth(10, netsim::TrueClass::kPushed));
  ds.conns.push_back(make_conn(11));
  cls.classes.push_back(ConnClass::kN);
  truth.push_back(make_truth(11, netsim::TrueClass::kDnsTransport));

  const TruthComparison tc = compare_with_truth(ds, cls, truth);
  EXPECT_EQ(tc.total(), 2u);
  EXPECT_EQ(tc.misclassified(), 2u);
  EXPECT_EQ(tc.misclassified_in(netsim::TrueClass::kPushed), 1u);
  EXPECT_EQ(tc.misclassified_in(netsim::TrueClass::kDnsTransport), 1u);
}

TEST(TruthComparison, UnmatchedSidesAreCountedNotJoined) {
  capture::Dataset ds;
  Classified cls;
  std::vector<capture::TruthFlow> truth;
  // A conn with no truth flow (e.g. monitor saw something the tap missed)
  ds.conns.push_back(make_conn(20));
  cls.classes.push_back(ConnClass::kN);
  // Two truth flows with no conn record (e.g. flows outside the local net)
  truth.push_back(make_truth(30, netsim::TrueClass::kRequired));
  truth.push_back(make_truth(31, netsim::TrueClass::kNoDns));

  const TruthComparison tc = compare_with_truth(ds, cls, truth);
  EXPECT_EQ(tc.total(), 0u);
  EXPECT_EQ(tc.conns_without_truth, 1u);
  EXPECT_EQ(tc.truth_without_conn, 2u);
  EXPECT_DOUBLE_EQ(tc.misclassified_frac(), 0.0);  // empty join, no div-by-zero
}

TEST(TruthComparison, DuplicateTruthTuplesAreFirstWins) {
  capture::Dataset ds;
  Classified cls;
  std::vector<capture::TruthFlow> truth;
  ds.conns.push_back(make_conn(40));
  cls.classes.push_back(ConnClass::kR);
  truth.push_back(make_truth(40, netsim::TrueClass::kRequired));
  truth.push_back(make_truth(40, netsim::TrueClass::kNoDns));  // retransmit dup

  const TruthComparison tc = compare_with_truth(ds, cls, truth);
  EXPECT_EQ(tc.count(netsim::TrueClass::kRequired, ConnClass::kR), 1u);
  EXPECT_EQ(tc.row_total(netsim::TrueClass::kNoDns), 0u);
  EXPECT_EQ(tc.misclassified(), 0u);
}

TEST(TruthComparison, RenderReportShowsRowsAndSummary) {
  capture::Dataset ds;
  Classified cls;
  std::vector<capture::TruthFlow> truth;
  ds.conns.push_back(make_conn(50));
  cls.classes.push_back(ConnClass::kN);
  truth.push_back(make_truth(50, netsim::TrueClass::kLocalCache));

  const auto report = render_truth_report(compare_with_truth(ds, cls, truth));
  EXPECT_NE(report.find("truth\\inferred"), std::string::npos);
  EXPECT_NE(report.find("misclassified 1"), std::string::npos);
  // Empty truth rows are suppressed: "required" never appears.
  EXPECT_EQ(report.find(std::string{netsim::to_string(netsim::TrueClass::kRequired)}),
            std::string::npos);
}

}  // namespace
}  // namespace dnsctx::analysis
