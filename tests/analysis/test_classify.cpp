// Unit tests for the five-way taxonomy and per-resolver thresholds.
#include <gtest/gtest.h>

#include "analysis/classify.hpp"

namespace dnsctx::analysis {
namespace {

constexpr Ipv4Addr kHouse{100, 66, 1, 1};
constexpr Ipv4Addr kFastResolver{100, 66, 250, 1};
constexpr Ipv4Addr kRareResolver{203, 0, 113, 1};

struct Builder {
  capture::Dataset ds;
  int next_server = 0;
  std::int64_t cursor_ms = 0;

  /// Add a lookup and one conn at `gap_ms` after it; returns conn index.
  std::size_t add(double lookup_ms, double gap_ms, Ipv4Addr resolver = kFastResolver,
                  std::uint32_t ttl = 86'400, int extra_conns = 0) {
    const Ipv4Addr server{34, 1, static_cast<std::uint8_t>(next_server / 200),
                          static_cast<std::uint8_t>(1 + next_server % 200)};
    ++next_server;
    capture::DnsRecord d;
    d.ts = SimTime::origin() + SimDuration::ms(cursor_ms);
    d.duration = SimDuration::from_ms(lookup_ms);
    d.client_ip = kHouse;
    d.resolver_ip = resolver;
    d.query = "n" + std::to_string(next_server) + ".com";
    d.answered = true;
    d.answers = {{server, ttl}};
    ds.dns.push_back(d);
    const std::size_t first_conn = ds.conns.size();
    for (int i = 0; i <= extra_conns; ++i) {
      capture::ConnRecord c;
      c.start = d.response_time() + SimDuration::from_ms(gap_ms + i * 400.0);
      c.duration = SimDuration::sec(2);
      c.orig_ip = kHouse;
      c.resp_ip = server;
      c.orig_port = 10'000;
      c.resp_port = 443;
      ds.conns.push_back(c);
    }
    cursor_ms += 120'000;
    return first_conn;
  }

  void add_unpaired_conn() {
    capture::ConnRecord c;
    c.start = SimTime::origin() + SimDuration::ms(cursor_ms);
    c.orig_ip = kHouse;
    c.resp_ip = Ipv4Addr{66, 66, 66, 66};
    c.orig_port = 50'000;
    c.resp_port = 51'413;
    ds.conns.push_back(c);
    cursor_ms += 1'000;
  }

  /// Sort conns by start (dataset invariant) and classify.
  [[nodiscard]] Classified run(ClassifyConfig cfg = fast_cfg()) {
    std::sort(ds.conns.begin(), ds.conns.end(),
              [](const auto& a, const auto& b) { return a.start < b.start; });
    pairing = pair_connections(ds);
    return classify_connections(ds, pairing, cfg);
  }

  [[nodiscard]] static ClassifyConfig fast_cfg() {
    ClassifyConfig cfg;
    cfg.per_resolver_min_lookups = 4;  // tiny datasets
    return cfg;
  }

  PairingResult pairing;
};

TEST(Classify, UnpairedIsN) {
  Builder b;
  b.add_unpaired_conn();
  const auto out = b.run();
  EXPECT_EQ(out.classes[0], ConnClass::kN);
  EXPECT_EQ(out.counts.n, 1u);
}

TEST(Classify, BlockedFastLookupIsSC) {
  Builder b;
  for (int i = 0; i < 6; ++i) b.add(2.0, 5.0);  // fast lookups, blocked conns
  const auto out = b.run();
  EXPECT_EQ(out.counts.sc, 6u);
  EXPECT_EQ(out.counts.r, 0u);
}

TEST(Classify, BlockedSlowLookupIsR) {
  Builder b;
  for (int i = 0; i < 6; ++i) b.add(2.0, 5.0);   // establish the 2 ms mode
  const auto idx = b.add(80.0, 5.0);             // slow lookup, blocked
  const auto out = b.run();
  EXPECT_EQ(out.classes[idx], ConnClass::kR);
  EXPECT_EQ(out.counts.r, 1u);
}

TEST(Classify, LateFirstUseIsP) {
  Builder b;
  const auto idx = b.add(2.0, 5'000.0);  // used 5 s after the lookup, first use
  const auto out = b.run();
  EXPECT_EQ(out.classes[idx], ConnClass::kP);
}

TEST(Classify, LateRepeatUseIsLC) {
  Builder b;
  const auto idx = b.add(2.0, 1'000.0, kFastResolver, 86'400, /*extra_conns=*/1);
  const auto out = b.run();
  EXPECT_EQ(out.classes[idx], ConnClass::kP);       // first use
  EXPECT_EQ(out.classes[idx + 1], ConnClass::kLC);  // repeat
  EXPECT_EQ(out.counts.lc, 1u);
  EXPECT_EQ(out.counts.p, 1u);
}

TEST(Classify, BoundaryGapExactlyAtThresholdIsBlocked) {
  Builder b;
  for (int i = 0; i < 6; ++i) b.add(2.0, 100.0);  // gap == 100 ms
  const auto out = b.run();
  EXPECT_EQ(out.counts.blocked(), 6u);  // > threshold is required for LC/P
}

TEST(Classify, ExpiredPairingsCounted) {
  Builder b;
  // TTL 1 s, used 5 s later: expired LC/P territory.
  const auto p_idx = b.add(2.0, 5'000.0, kFastResolver, 1);
  const auto lc_first = b.add(2.0, 5'000.0, kFastResolver, 1, /*extra_conns=*/1);
  const auto out = b.run();
  EXPECT_EQ(out.classes[p_idx], ConnClass::kP);
  EXPECT_EQ(out.p_expired, 2u);  // both first-uses were past TTL
  EXPECT_EQ(out.classes[lc_first + 1], ConnClass::kLC);
  EXPECT_EQ(out.lc_expired, 1u);
  EXPECT_GT(out.lc_expired_frac(), 0.99);
}

TEST(Classify, GapCdfsPopulated) {
  Builder b;
  b.add(2.0, 30'000.0, kFastResolver, 86'400, /*extra_conns=*/1);
  const auto out = b.run();
  ASSERT_FALSE(out.p_gap_sec.empty());
  EXPECT_NEAR(out.p_gap_sec.median(), 30.0, 0.1);
  ASSERT_FALSE(out.lc_gap_sec.empty());
  EXPECT_NEAR(out.lc_gap_sec.median(), 30.4, 0.1);
}

TEST(Classify, CountsSumToTotal) {
  Builder b;
  b.add_unpaired_conn();
  b.add(2.0, 5.0);
  b.add(60.0, 5.0);
  b.add(2.0, 9'000.0);
  b.add(2.0, 2'000.0, kFastResolver, 86'400, 1);
  const auto out = b.run();
  EXPECT_EQ(out.counts.total(), b.ds.conns.size());
  EXPECT_EQ(out.counts.total(),
            out.counts.n + out.counts.lc + out.counts.p + out.counts.sc + out.counts.r);
}

TEST(ResolverThresholds, DerivedFromCacheHitMode) {
  Builder b;
  // 20 fast lookups at ~2 ms and a few slow ones at 60–80 ms.
  for (int i = 0; i < 20; ++i) b.add(2.0 + 0.1 * i, 5.0);
  for (int i = 0; i < 4; ++i) b.add(60.0 + 5 * i, 5.0);
  std::sort(b.ds.conns.begin(), b.ds.conns.end(),
            [](const auto& x, const auto& y) { return x.start < y.start; });
  ClassifyConfig cfg;
  cfg.per_resolver_min_lookups = 10;
  const auto thresholds = derive_resolver_thresholds(b.ds, cfg);
  ASSERT_TRUE(thresholds.contains(kFastResolver));
  const double t = thresholds.at(kFastResolver);
  EXPECT_GE(t, 4.0);   // mode ~2 ms + margin
  EXPECT_LE(t, 10.0);  // but nowhere near the slow tail
}

TEST(ResolverThresholds, RareResolversFallBackToDefault) {
  Builder b;
  for (int i = 0; i < 6; ++i) b.add(2.0, 5.0);
  const auto blocked_idx = b.add(30.0, 5.0, kRareResolver);  // only lookup to this resolver
  ClassifyConfig cfg;
  cfg.per_resolver_min_lookups = 5;
  cfg.default_threshold_ms = 5.0;
  const auto out = b.run(cfg);
  EXPECT_FALSE(out.resolver_threshold_ms.contains(kRareResolver));
  EXPECT_EQ(out.classes[blocked_idx], ConnClass::kR);  // 30 ms > default 5 ms
}

TEST(ResolverThresholds, HigherRttResolverGetsHigherThreshold) {
  Builder b;
  for (int i = 0; i < 12; ++i) b.add(2.0, 5.0, kFastResolver);
  for (int i = 0; i < 12; ++i) b.add(20.0, 5.0, kRareResolver);
  std::sort(b.ds.conns.begin(), b.ds.conns.end(),
            [](const auto& x, const auto& y) { return x.start < y.start; });
  ClassifyConfig cfg;
  cfg.per_resolver_min_lookups = 10;
  const auto thresholds = derive_resolver_thresholds(b.ds, cfg);
  ASSERT_TRUE(thresholds.contains(kFastResolver));
  ASSERT_TRUE(thresholds.contains(kRareResolver));
  EXPECT_GT(thresholds.at(kRareResolver), thresholds.at(kFastResolver));
}

TEST(Classify, SharedCacheHitRate) {
  ClassCounts c;
  c.sc = 60;
  c.r = 40;
  EXPECT_DOUBLE_EQ(c.shared_cache_hit_rate(), 0.6);
  EXPECT_EQ(c.blocked(), 100u);
}

TEST(Classify, ClassNames) {
  EXPECT_EQ(to_string(ConnClass::kN), "N");
  EXPECT_EQ(to_string(ConnClass::kLC), "LC");
  EXPECT_EQ(to_string(ConnClass::kP), "P");
  EXPECT_EQ(to_string(ConnClass::kSC), "SC");
  EXPECT_EQ(to_string(ConnClass::kR), "R");
}

/// Property (paper footnote 5): enlarging the blocked threshold can only
/// move connections from LC/P into the blocked classes — the bigger the
/// threshold, the more important DNS appears.
class ThresholdSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(ThresholdSweepTest, BlockedShareIsMonotoneInThreshold) {
  Builder b;
  Rng rng{static_cast<std::uint64_t>(GetParam())};
  for (int i = 0; i < 120; ++i) {
    b.add(2.0 + rng.uniform() * 40.0, rng.uniform() * 400.0, kFastResolver, 86'400,
          rng.bernoulli(0.3) ? 1 : 0);
  }
  std::sort(b.ds.conns.begin(), b.ds.conns.end(),
            [](const auto& x, const auto& y) { return x.start < y.start; });
  const auto pairing = pair_connections(b.ds);
  std::uint64_t prev_blocked = 0;
  for (const int threshold_ms : {20, 50, 100, 250, 500}) {
    ClassifyConfig cfg;
    cfg.per_resolver_min_lookups = 10;
    cfg.blocked_threshold = SimDuration::ms(threshold_ms);
    const auto out = classify_connections(b.ds, pairing, cfg);
    EXPECT_GE(out.counts.blocked(), prev_blocked);
    prev_blocked = out.counts.blocked();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThresholdSweepTest, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace dnsctx::analysis
