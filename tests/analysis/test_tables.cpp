// Unit tests for Table 1 construction and the platform directory.
#include <gtest/gtest.h>

#include "analysis/report.hpp"
#include "analysis/resolvers.hpp"
#include "analysis/tables.hpp"
#include "resolver/recursive.hpp"

namespace dnsctx::analysis {
namespace {

using resolver::well_known::kCloudflare1;
using resolver::well_known::kGoogle1;
using resolver::well_known::kIspResolver1;
using resolver::well_known::kIspResolver2;

constexpr Ipv4Addr kHouseA{100, 66, 1, 1};
constexpr Ipv4Addr kHouseB{100, 66, 1, 2};
constexpr Ipv4Addr kServer{34, 1, 1, 1};

[[nodiscard]] capture::DnsRecord lookup(Ipv4Addr house, Ipv4Addr resolver, std::int64_t ms,
                                        const char* query = "a.com",
                                        Ipv4Addr answer = kServer) {
  capture::DnsRecord d;
  d.ts = SimTime::origin() + SimDuration::ms(ms);
  d.duration = SimDuration::ms(2);
  d.client_ip = house;
  d.resolver_ip = resolver;
  d.query = query;
  d.answered = true;
  d.answers = {{answer, 3'600}};
  return d;
}

[[nodiscard]] capture::ConnRecord conn(Ipv4Addr house, Ipv4Addr server, std::int64_t ms,
                                       std::uint64_t bytes) {
  capture::ConnRecord c;
  c.start = SimTime::origin() + SimDuration::ms(ms);
  c.duration = SimDuration::sec(1);
  c.orig_ip = house;
  c.resp_ip = server;
  c.orig_port = 10'000;
  c.resp_port = 443;
  c.resp_bytes = bytes;
  return c;
}

TEST(PlatformDirectory, StandardMapping) {
  const auto dir = PlatformDirectory::standard();
  EXPECT_EQ(dir.label(kIspResolver1), "Local");
  EXPECT_EQ(dir.label(kIspResolver2), "Local");
  EXPECT_EQ(dir.label(kGoogle1), "Google");
  EXPECT_EQ(dir.label(kCloudflare1), "Cloudflare");
  EXPECT_EQ(dir.label(Ipv4Addr{9, 9, 9, 9}), "other");
  ASSERT_EQ(dir.platforms().size(), 4u);
  EXPECT_EQ(dir.platforms()[0], "Local");
}

TEST(PlatformDirectory, CustomAdditions) {
  PlatformDirectory dir;
  dir.add(Ipv4Addr{9, 9, 9, 9}, "Quad9");
  dir.add(Ipv4Addr{149, 112, 112, 112}, "Quad9");
  EXPECT_EQ(dir.label(Ipv4Addr{9, 9, 9, 9}), "Quad9");
  EXPECT_EQ(dir.platforms().size(), 1u);
}

TEST(Table1, SharesComputedPerPlatform) {
  capture::Dataset ds;
  // House A: 3 Local lookups; House B: 1 Local, 1 Google (distinct names
  // and addresses keep the pairing unambiguous).
  const Ipv4Addr server2{34, 1, 1, 2};
  ds.dns.push_back(lookup(kHouseA, kIspResolver1, 0));
  ds.dns.push_back(lookup(kHouseA, kIspResolver1, 100));
  ds.dns.push_back(lookup(kHouseA, kIspResolver2, 200));
  ds.dns.push_back(lookup(kHouseB, kIspResolver1, 300));
  ds.dns.push_back(lookup(kHouseB, kGoogle1, 400, "g.com", server2));
  // Conns: A→server (Local pairing, 1000 bytes), B→server2 (Google, 3000).
  ds.conns.push_back(conn(kHouseA, kServer, 500, 1'000));
  ds.conns.push_back(conn(kHouseB, server2, 600, 3'000));
  const auto pairing = pair_connections(ds);
  const auto rows = build_table1(ds, pairing, PlatformDirectory::standard(), 0.0);

  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].platform, "Local");
  EXPECT_DOUBLE_EQ(rows[0].pct_houses, 100.0);  // both houses used Local
  EXPECT_DOUBLE_EQ(rows[0].pct_lookups, 80.0);
  EXPECT_DOUBLE_EQ(rows[0].pct_conns, 50.0);
  EXPECT_DOUBLE_EQ(rows[0].pct_bytes, 25.0);
  EXPECT_EQ(rows[1].platform, "Google");
  EXPECT_DOUBLE_EQ(rows[1].pct_houses, 50.0);
  EXPECT_DOUBLE_EQ(rows[1].pct_lookups, 20.0);
  EXPECT_DOUBLE_EQ(rows[1].pct_bytes, 75.0);
}

TEST(Table1, MinShareFoldsRarePlatforms) {
  capture::Dataset ds;
  for (int i = 0; i < 99; ++i) {
    ds.dns.push_back(lookup(kHouseA, kIspResolver1, i * 10));
  }
  ds.dns.push_back(lookup(kHouseA, kCloudflare1, 2'000));
  const auto pairing = pair_connections(ds);
  const auto rows = build_table1(ds, pairing, PlatformDirectory::standard(), 0.05);
  ASSERT_EQ(rows.size(), 1u);  // Cloudflare at 1% < 5% cut
  EXPECT_EQ(rows[0].platform, "Local");
}

TEST(Table1, IspOnlyHouseFraction) {
  capture::Dataset ds;
  ds.dns.push_back(lookup(kHouseA, kIspResolver1, 0));
  ds.dns.push_back(lookup(kHouseA, kIspResolver2, 10));
  ds.dns.push_back(lookup(kHouseB, kIspResolver1, 20));
  ds.dns.push_back(lookup(kHouseB, kGoogle1, 30));
  const auto dir = PlatformDirectory::standard();
  EXPECT_DOUBLE_EQ(isp_only_house_frac(ds, dir), 0.5);
}

TEST(Table1, EmptyDataset) {
  const capture::Dataset ds;
  const auto pairing = pair_connections(ds);
  EXPECT_TRUE(build_table1(ds, pairing, PlatformDirectory::standard()).empty());
  EXPECT_EQ(isp_only_house_frac(ds, PlatformDirectory::standard()), 0.0);
}

TEST(PlatformPerf, ConnCheckShareIsolated) {
  capture::Dataset ds;
  const Ipv4Addr cc_server{142, 250, 1, 1};
  // Two Google-paired conns: one conncheck, one regular.
  ds.dns.push_back(
      lookup(kHouseA, kGoogle1, 0, "connectivitycheck.gstatic.com", cc_server));
  ds.dns.push_back(lookup(kHouseA, kGoogle1, 10'000, "g.com", kServer));
  ds.conns.push_back(conn(kHouseA, cc_server, 5, 100));       // blocked conncheck
  ds.conns.push_back(conn(kHouseA, kServer, 10'005, 50'000)); // blocked regular
  const auto pairing = pair_connections(ds);
  ClassifyConfig cfg;
  cfg.per_resolver_min_lookups = 1'000'000;
  const auto classified = classify_connections(ds, pairing, cfg);
  const auto perf =
      analyze_platforms(ds, pairing, classified, PlatformDirectory::standard());
  ASSERT_EQ(perf.size(), 1u);
  EXPECT_EQ(perf[0].platform, "Google");
  EXPECT_DOUBLE_EQ(perf[0].conncheck_frac(), 0.5);
  EXPECT_EQ(perf[0].throughput_bps.count(), 2u);
  EXPECT_EQ(perf[0].throughput_bps_filtered.count(), 1u);
}

TEST(PlatformPerf, HitRateAndLookupSeries) {
  capture::Dataset ds;
  // Local: one fast (SC) and one slow (R) blocked lookup.
  ds.dns.push_back(lookup(kHouseA, kIspResolver1, 0, "a.com", kServer));
  auto slow = lookup(kHouseA, kIspResolver1, 60'000, "b.com", Ipv4Addr{34, 1, 1, 9});
  slow.duration = SimDuration::ms(80);
  ds.dns.push_back(slow);
  ds.conns.push_back(conn(kHouseA, kServer, 5, 100));
  ds.conns.push_back(conn(kHouseA, Ipv4Addr{34, 1, 1, 9}, 60'085, 100));
  const auto pairing = pair_connections(ds);
  ClassifyConfig cfg;
  cfg.per_resolver_min_lookups = 1'000'000;
  const auto classified = classify_connections(ds, pairing, cfg);
  const auto perf =
      analyze_platforms(ds, pairing, classified, PlatformDirectory::standard());
  ASSERT_EQ(perf.size(), 1u);
  EXPECT_EQ(perf[0].sc, 1u);
  EXPECT_EQ(perf[0].r, 1u);
  EXPECT_DOUBLE_EQ(perf[0].hit_rate(), 0.5);
  ASSERT_EQ(perf[0].r_lookup_ms.count(), 1u);
  EXPECT_NEAR(perf[0].r_lookup_ms.max(), 80.0, 1e-9);
}

TEST(Report, VsPaperFormatting) {
  const auto cell = vs_paper(12.34, 56.7);
  EXPECT_NE(cell.find("12.3"), std::string::npos);
  EXPECT_NE(cell.find("56.7"), std::string::npos);
  EXPECT_NE(cell.find("paper"), std::string::npos);
}

TEST(Report, FormatsHandleEmptyStudy) {
  const Study empty;
  const capture::Dataset ds;
  EXPECT_FALSE(format_table1(empty).empty());
  EXPECT_FALSE(format_table2(empty, ds).empty());
  EXPECT_FALSE(format_fig1(empty).empty());
  EXPECT_FALSE(format_fig2(empty).empty());
  EXPECT_FALSE(format_fig3(empty).empty());
}

}  // namespace
}  // namespace dnsctx::analysis
