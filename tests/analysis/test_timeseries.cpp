// Unit tests for the time-series bucketing.
#include <gtest/gtest.h>

#include "analysis/timeseries.hpp"

namespace dnsctx::analysis {
namespace {

constexpr Ipv4Addr kHouseA{100, 66, 1, 1};
constexpr Ipv4Addr kHouseB{100, 66, 1, 2};
constexpr Ipv4Addr kResolver{100, 66, 250, 1};

[[nodiscard]] capture::ConnRecord conn_at(std::int64_t sec, Ipv4Addr house = kHouseA,
                                          std::uint64_t bytes = 1'000) {
  capture::ConnRecord c;
  c.start = SimTime::origin() + SimDuration::sec(sec);
  c.orig_ip = house;
  c.resp_ip = Ipv4Addr{34, 1, 1, 1};
  c.orig_port = 10'000;
  c.resp_port = 443;
  c.resp_bytes = bytes;
  return c;
}

[[nodiscard]] capture::DnsRecord dns_at(std::int64_t sec, Ipv4Addr house = kHouseA) {
  capture::DnsRecord d;
  d.ts = SimTime::origin() + SimDuration::sec(sec);
  d.client_ip = house;
  d.resolver_ip = kResolver;
  d.answered = true;
  return d;
}

TEST(TimeSeries, BucketsByWindow) {
  capture::Dataset ds;
  ds.conns = {conn_at(10), conn_at(20), conn_at(3'700)};
  ds.dns = {dns_at(15), dns_at(3'800), dns_at(3'900)};
  const auto ts = build_time_series(ds, nullptr, SimDuration::hours(1));
  ASSERT_EQ(ts.buckets.size(), 2u);
  EXPECT_EQ(ts.buckets[0].conns, 2u);
  EXPECT_EQ(ts.buckets[0].lookups, 1u);
  EXPECT_EQ(ts.buckets[1].conns, 1u);
  EXPECT_EQ(ts.buckets[1].lookups, 2u);
}

TEST(TimeSeries, CountsHousesAndBytes) {
  capture::Dataset ds;
  ds.conns = {conn_at(0, kHouseA, 1'000), conn_at(1, kHouseB, 2'000)};
  const auto ts = build_time_series(ds, nullptr, SimDuration::min(10));
  EXPECT_EQ(ts.houses, 2u);
  EXPECT_EQ(ts.buckets[0].bytes, 3'000u);
}

TEST(TimeSeries, BlockedCountsUseClassification) {
  capture::Dataset ds;
  ds.conns = {conn_at(0), conn_at(1), conn_at(2)};
  Classified classified;
  classified.classes = {ConnClass::kSC, ConnClass::kLC, ConnClass::kR};
  const auto ts = build_time_series(ds, &classified, SimDuration::min(1));
  EXPECT_EQ(ts.buckets[0].blocked_conns, 2u);
  EXPECT_NEAR(ts.buckets[0].blocked_share(), 2.0 / 3.0, 1e-9);
}

TEST(TimeSeries, LookupRatePerHouse) {
  capture::Dataset ds;
  for (int i = 0; i < 120; ++i) ds.dns.push_back(dns_at(i, i % 2 ? kHouseA : kHouseB));
  const auto ts = build_time_series(ds, nullptr, SimDuration::min(1));
  // 60 lookups per 60-second bucket across 2 houses → 0.5/s/house.
  EXPECT_NEAR(ts.lookups_per_sec_per_house(0), 0.5, 1e-9);
}

TEST(TimeSeries, DiurnalSwing) {
  capture::Dataset ds;
  for (int i = 0; i < 10; ++i) ds.conns.push_back(conn_at(i));       // busy bucket
  ds.conns.push_back(conn_at(3'700));                                // quiet bucket
  const auto ts = build_time_series(ds, nullptr, SimDuration::hours(1));
  EXPECT_DOUBLE_EQ(ts.diurnal_swing(), 10.0);
}

TEST(TimeSeries, EmptyDataset) {
  const capture::Dataset ds;
  const auto ts = build_time_series(ds, nullptr);
  EXPECT_TRUE(ts.buckets.empty());
  EXPECT_EQ(ts.diurnal_swing(), 0.0);
  EXPECT_EQ(ts.lookups_per_sec_per_house(0), 0.0);
}

TEST(TimeSeries, FormatRendersOneRowPerBucket) {
  capture::Dataset ds;
  ds.conns = {conn_at(0), conn_at(3'700)};
  const auto ts = build_time_series(ds, nullptr, SimDuration::hours(1));
  const auto text = format_time_series(ts);
  EXPECT_NE(text.find("lookups/s/house"), std::string::npos);
  // header + column header + 2 bucket rows
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

}  // namespace
}  // namespace dnsctx::analysis
