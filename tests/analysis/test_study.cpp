// Unit tests for the run_study convenience pipeline and its config.
#include <gtest/gtest.h>

#include "analysis/study.hpp"

namespace dnsctx::analysis {
namespace {

constexpr Ipv4Addr kHouse{100, 66, 1, 1};
constexpr Ipv4Addr kResolver{100, 66, 250, 1};

[[nodiscard]] capture::Dataset tiny_dataset() {
  capture::Dataset ds;
  for (int i = 0; i < 30; ++i) {
    const Ipv4Addr server{34, 1, 1, static_cast<std::uint8_t>(1 + i)};
    capture::DnsRecord d;
    d.ts = SimTime::origin() + SimDuration::sec(i * 60);
    d.duration = SimDuration::from_ms(i % 2 ? 2.0 : 50.0);
    d.client_ip = kHouse;
    d.resolver_ip = kResolver;
    d.query = "n" + std::to_string(i) + ".com";
    d.answered = true;
    d.answers = {{server, 600}};
    ds.dns.push_back(d);
    capture::ConnRecord c;
    c.start = d.response_time() + SimDuration::ms(5);
    c.duration = SimDuration::sec(2);
    c.orig_ip = kHouse;
    c.resp_ip = server;
    c.orig_port = 10'000;
    c.resp_port = 443;
    ds.conns.push_back(c);
  }
  return ds;
}

TEST(Study, DefaultRunPopulatesEverySection) {
  const auto ds = tiny_dataset();
  const Study s = run_study(ds);
  EXPECT_EQ(s.pairing.conns.size(), ds.conns.size());
  EXPECT_EQ(s.classified.classes.size(), ds.conns.size());
  EXPECT_FALSE(s.blocking.gap_ms.empty());
  EXPECT_FALSE(s.table1.empty());
  EXPECT_FALSE(s.platforms.empty());
  EXPECT_EQ(s.classified.counts.total(), ds.conns.size());
}

TEST(Study, CustomSignificanceCriteriaPropagate) {
  const auto ds = tiny_dataset();
  StudyConfig cfg;
  cfg.abs_significance_ms = 1'000.0;  // everything is "fast"
  cfg.rel_significance_pct = 99.0;    // nothing contributes much
  const Study s = run_study(ds, cfg);
  EXPECT_DOUBLE_EQ(s.performance.significant_both, 0.0);
  EXPECT_DOUBLE_EQ(s.performance.insignificant_both, 1.0);
}

TEST(Study, CustomClassifyConfigPropagates) {
  const auto ds = tiny_dataset();
  StudyConfig strict;
  strict.classify.blocked_threshold = SimDuration::us(1);  // nothing is blocked
  const Study s = run_study(ds, strict);
  EXPECT_EQ(s.classified.counts.blocked(), 0u);
  EXPECT_EQ(s.classified.counts.p, ds.conns.size());  // all first-use, all late
}

TEST(Study, CustomDirectoryRelabelsPlatforms) {
  const auto ds = tiny_dataset();
  StudyConfig cfg;
  PlatformDirectory dir;
  dir.add(kResolver, "MyResolver");
  cfg.directory = dir;
  const Study s = run_study(ds, cfg);
  ASSERT_FALSE(s.table1.empty());
  EXPECT_EQ(s.table1[0].platform, "MyResolver");
}

TEST(Study, RandomPairingPolicyRuns) {
  const auto ds = tiny_dataset();
  StudyConfig cfg;
  cfg.pairing_policy = PairingPolicy::kRandom;
  cfg.pairing_seed = 3;
  const Study s = run_study(ds, cfg);
  EXPECT_EQ(s.pairing.paired, ds.conns.size());
}

TEST(Study, EmptyDatasetYieldsEmptyStudy) {
  const capture::Dataset ds;
  const Study s = run_study(ds);
  EXPECT_EQ(s.classified.counts.total(), 0u);
  EXPECT_TRUE(s.table1.empty());
  EXPECT_TRUE(s.platforms.empty());
  EXPECT_EQ(s.isp_only_houses, 0.0);
}

}  // namespace
}  // namespace dnsctx::analysis
