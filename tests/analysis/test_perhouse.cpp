// Unit tests for per-household analysis.
#include <gtest/gtest.h>

#include "analysis/perhouse.hpp"
#include "util/rng.hpp"

namespace dnsctx::analysis {
namespace {

constexpr Ipv4Addr kHouseA{100, 66, 1, 1};
constexpr Ipv4Addr kHouseB{100, 66, 1, 2};
constexpr Ipv4Addr kResolver{100, 66, 250, 1};

struct Builder {
  capture::Dataset ds;
  Classified classified;

  void conn(Ipv4Addr house, ConnClass cls) {
    capture::ConnRecord c;
    c.start = SimTime::from_us(static_cast<std::int64_t>(ds.conns.size()) * 1'000);
    c.orig_ip = house;
    c.resp_ip = Ipv4Addr{34, 1, 1, 1};
    c.orig_port = 10'000;
    c.resp_port = 443;
    ds.conns.push_back(c);
    classified.classes.push_back(cls);
  }
  void lookup(Ipv4Addr house) {
    capture::DnsRecord d;
    d.ts = SimTime::from_us(static_cast<std::int64_t>(ds.dns.size()) * 1'000);
    d.client_ip = house;
    d.resolver_ip = kResolver;
    d.answered = true;
    ds.dns.push_back(d);
  }
};

TEST(PerHouse, AggregatesPerHousehold) {
  Builder b;
  b.conn(kHouseA, ConnClass::kSC);
  b.conn(kHouseA, ConnClass::kLC);
  b.conn(kHouseA, ConnClass::kN);
  b.conn(kHouseB, ConnClass::kR);
  b.lookup(kHouseA);
  b.lookup(kHouseA);
  b.lookup(kHouseB);
  const auto out = analyze_per_house(b.ds, b.classified);
  ASSERT_EQ(out.houses.size(), 2u);
  // Sorted by conns: house A first.
  EXPECT_EQ(out.houses[0].house, kHouseA);
  EXPECT_EQ(out.houses[0].conns, 3u);
  EXPECT_EQ(out.houses[0].lookups, 2u);
  EXPECT_EQ(out.houses[0].counts.sc, 1u);
  EXPECT_EQ(out.houses[0].counts.n, 1u);
  EXPECT_NEAR(out.houses[0].blocked_share(), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(out.houses[0].lookups_per_conn(), 2.0 / 3.0, 1e-9);
  EXPECT_EQ(out.houses[1].house, kHouseB);
  EXPECT_DOUBLE_EQ(out.houses[1].blocked_share(), 1.0);
}

TEST(PerHouse, DistributionsHaveOneSamplePerHouse) {
  Builder b;
  b.conn(kHouseA, ConnClass::kSC);
  b.conn(kHouseB, ConnClass::kLC);
  const auto out = analyze_per_house(b.ds, b.classified);
  EXPECT_EQ(out.blocked_share.count(), 2u);
  EXPECT_EQ(out.conns_per_house.count(), 2u);
  EXPECT_DOUBLE_EQ(out.blocked_share.min(), 0.0);
  EXPECT_DOUBLE_EQ(out.blocked_share.max(), 1.0);
}

TEST(PerHouse, TopDecileShare) {
  Builder b;
  for (int h = 0; h < 10; ++h) {
    const Ipv4Addr house{100, 66, 1, static_cast<std::uint8_t>(1 + h)};
    const int conns = h == 0 ? 91 : 1;  // one whale, nine minnows
    for (int i = 0; i < conns; ++i) b.conn(house, ConnClass::kLC);
  }
  const auto out = analyze_per_house(b.ds, b.classified);
  EXPECT_NEAR(out.top_decile_conn_share(), 0.91, 1e-9);
}

TEST(Bootstrap, CiContainsPointEstimateForHomogeneousHouses) {
  Builder b;
  // 10 identical houses: 6 LC + 4 SC each → share(LC) = 0.6 exactly,
  // zero between-house variance → the CI collapses onto the estimate.
  for (int h = 0; h < 10; ++h) {
    const Ipv4Addr house{100, 66, 1, static_cast<std::uint8_t>(1 + h)};
    for (int i = 0; i < 6; ++i) b.conn(house, ConnClass::kLC);
    for (int i = 0; i < 4; ++i) b.conn(house, ConnClass::kSC);
  }
  const auto per_house = analyze_per_house(b.ds, b.classified);
  const auto ci = bootstrap_table2_ci(per_house, 200, 0.95, 7);
  EXPECT_NEAR(ci.lc.lo, 0.6, 1e-9);
  EXPECT_NEAR(ci.lc.hi, 0.6, 1e-9);
  EXPECT_NEAR(ci.sc.lo, 0.4, 1e-9);
}

TEST(Bootstrap, HeterogeneousHousesWidenTheCi) {
  Builder b;
  // Half the houses are all-LC, half all-SC → wide between-house spread.
  for (int h = 0; h < 10; ++h) {
    const Ipv4Addr house{100, 66, 1, static_cast<std::uint8_t>(1 + h)};
    for (int i = 0; i < 10; ++i) b.conn(house, h % 2 ? ConnClass::kLC : ConnClass::kSC);
  }
  const auto per_house = analyze_per_house(b.ds, b.classified);
  const auto ci = bootstrap_table2_ci(per_house, 400, 0.95, 7);
  EXPECT_LT(ci.lc.lo, 0.35);
  EXPECT_GT(ci.lc.hi, 0.65);
  EXPECT_LE(ci.lc.lo, ci.lc.hi);
}

TEST(Bootstrap, Deterministic) {
  Builder b;
  Rng rng{3};
  for (int h = 0; h < 8; ++h) {
    const Ipv4Addr house{100, 66, 1, static_cast<std::uint8_t>(1 + h)};
    for (int i = 0; i < 20; ++i) {
      b.conn(house, rng.bernoulli(0.5) ? ConnClass::kLC : ConnClass::kSC);
    }
  }
  const auto per_house = analyze_per_house(b.ds, b.classified);
  const auto a = bootstrap_table2_ci(per_house, 100, 0.9, 11);
  const auto c = bootstrap_table2_ci(per_house, 100, 0.9, 11);
  EXPECT_DOUBLE_EQ(a.lc.lo, c.lc.lo);
  EXPECT_DOUBLE_EQ(a.lc.hi, c.lc.hi);
}

TEST(Bootstrap, EmptyInputsAreSafe) {
  const PerHouseAnalysis empty;
  const auto ci = bootstrap_table2_ci(empty);
  EXPECT_EQ(ci.n.lo, 0.0);
  EXPECT_EQ(ci.n.hi, 0.0);
}

TEST(PerHouse, EmptyDataset) {
  const capture::Dataset ds;
  const Classified classified;
  const auto out = analyze_per_house(ds, classified);
  EXPECT_TRUE(out.houses.empty());
  EXPECT_EQ(out.top_decile_conn_share(), 0.0);
}

TEST(PerHouse, DnsOnlyHouseListedWithoutShares) {
  Builder b;
  b.conn(kHouseA, ConnClass::kSC);
  b.lookup(kHouseB);  // a house that resolved but never connected
  const auto out = analyze_per_house(b.ds, b.classified);
  EXPECT_EQ(out.houses.size(), 2u);
  EXPECT_EQ(out.blocked_share.count(), 1u);  // only conn-bearing houses sampled
}

}  // namespace
}  // namespace dnsctx::analysis
