// Unit tests for the blocking heuristic / Fig 1 analysis.
#include <gtest/gtest.h>

#include "analysis/blocking.hpp"

namespace dnsctx::analysis {
namespace {

constexpr Ipv4Addr kHouse{100, 66, 1, 1};
constexpr Ipv4Addr kResolver{100, 66, 250, 1};

/// Build a dataset with controlled DNS→conn gaps (ms). Every conn gets a
/// dedicated lookup so first_use is always true unless repeated.
[[nodiscard]] capture::Dataset dataset_with_gaps(const std::vector<double>& gaps_ms,
                                                 int conns_per_lookup = 1) {
  capture::Dataset ds;
  std::int64_t cursor_us = 0;
  int idx = 0;
  for (const double gap : gaps_ms) {
    const Ipv4Addr server{34, 1, static_cast<std::uint8_t>(idx / 200),
                          static_cast<std::uint8_t>(1 + idx % 200)};
    capture::DnsRecord d;
    d.ts = SimTime::from_us(cursor_us);
    d.duration = SimDuration::ms(2);
    d.client_ip = kHouse;
    d.resolver_ip = kResolver;
    d.query = "h" + std::to_string(idx) + ".com";
    d.answered = true;
    d.answers = {{server, 86'400}};
    ds.dns.push_back(d);
    for (int c = 0; c < conns_per_lookup; ++c) {
      capture::ConnRecord conn;
      conn.start = d.response_time() + SimDuration::from_ms(gap) +
                   SimDuration::ms(c);  // subsequent conns slightly later
      conn.orig_ip = kHouse;
      conn.resp_ip = server;
      conn.orig_port = 10'000;
      conn.resp_port = 443;
      ds.conns.push_back(conn);
    }
    cursor_us += 60'000'000;  // lookups a minute apart
    ++idx;
  }
  std::sort(ds.conns.begin(), ds.conns.end(),
            [](const auto& a, const auto& b) { return a.start < b.start; });
  return ds;
}

TEST(Blocking, GapDistributionMatchesInput) {
  const auto ds = dataset_with_gaps({1.0, 5.0, 10.0, 5'000.0});
  const auto pairing = pair_connections(ds);
  const auto blocking = analyze_blocking(ds, pairing);
  EXPECT_EQ(blocking.gap_ms.count(), 4u);
  EXPECT_NEAR(blocking.gap_ms.min(), 1.0, 0.01);
  EXPECT_NEAR(blocking.gap_ms.max(), 5'000.0, 0.01);
}

TEST(Blocking, KneeDetectedBetweenBimodalModes) {
  // 60% of gaps around 2-10 ms, 40% around 10-1000 s.
  std::vector<double> gaps;
  for (int i = 0; i < 300; ++i) gaps.push_back(2.0 + (i % 9));
  for (int i = 0; i < 200; ++i) gaps.push_back(10'000.0 + i * 4'000.0);
  const auto ds = dataset_with_gaps(gaps);
  const auto pairing = pair_connections(ds);
  const auto blocking = analyze_blocking(ds, pairing);
  EXPECT_GT(blocking.knee_ms, 10.0);
  EXPECT_LT(blocking.knee_ms, 2'000.0);
}

TEST(Blocking, FirstUseSplitsAroundProbe) {
  // Blocked conns (small gap) are first users; a later conn re-uses.
  const auto ds = dataset_with_gaps({2.0, 3.0, 4.0, 300'000.0}, /*conns_per_lookup=*/2);
  const auto pairing = pair_connections(ds);
  const auto blocking = analyze_blocking(ds, pairing);
  // Below 20 ms: pairs of conns 1 ms apart — half are first use.
  EXPECT_NEAR(blocking.first_use_frac_below, 0.5, 0.01);
  EXPECT_NEAR(blocking.first_use_frac_above, 0.5, 0.01);
}

TEST(Blocking, FractionWithinThreshold) {
  const auto ds = dataset_with_gaps({10.0, 50.0, 150.0, 500.0});
  const auto pairing = pair_connections(ds);
  const auto blocking = analyze_blocking(ds, pairing);
  EXPECT_DOUBLE_EQ(blocking.frac_within_ms(100.0), 0.5);
}

TEST(Blocking, EmptyDatasetIsSafe) {
  const capture::Dataset ds;
  const auto pairing = pair_connections(ds);
  const auto blocking = analyze_blocking(ds, pairing);
  EXPECT_TRUE(blocking.gap_ms.empty());
  EXPECT_EQ(blocking.knee_ms, 0.0);
}

TEST(Blocking, ThresholdConstantMatchesPaper) {
  EXPECT_EQ(kBlockedThreshold, SimDuration::ms(100));
}

}  // namespace
}  // namespace dnsctx::analysis
