// Arena/free-list tests: handle refcounting, node recycling, and —
// critically — that a recycled node never leaks stale DNS payload,
// TCP flags, or transfer intent into the next packet. Runs under the
// sanitizers.yml ASan matrix, which would flag any use-after-recycle.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "dns/lazy.hpp"
#include "dns/message.hpp"
#include "netsim/arena.hpp"

namespace dnsctx::netsim {
namespace {

Packet dns_query_packet() {
  Packet p;
  p.src_ip = Ipv4Addr{10, 0, 0, 2};
  p.dst_ip = Ipv4Addr{8, 8, 8, 8};
  p.src_port = 40'000;
  p.dst_port = 53;
  p.proto = Proto::kUdp;
  p.tcp = TcpFlags{true, true, true, true};  // deliberately filthy
  p.payload_bytes = 77;
  p.dns = dns::DnsPayload::from_message(
      dns::DnsMessage::query(0x1234, dns::DomainName::must("example.com"), dns::RrType::kA));
  p.intent = TransferIntent{};
  return p;
}

TEST(PacketArena, HandleSharingKeepsOneLiveNode) {
  PacketArena arena;
  PacketHandle a = arena.adopt(dns_query_packet());
  EXPECT_EQ(arena.live(), 1u);
  PacketHandle b = a;           // copy: same node
  PacketHandle c = std::move(b);
  EXPECT_EQ(arena.live(), 1u);
  EXPECT_EQ(&*a, &*c);
  a = PacketHandle{};
  EXPECT_EQ(arena.live(), 1u);  // c still holds it
  c = PacketHandle{};
  EXPECT_EQ(arena.live(), 0u);
}

TEST(PacketArena, RecycledNodeCarriesNoStaleState) {
  PacketArena arena;
  const Packet* first_node = nullptr;
  {
    PacketHandle h = arena.adopt(dns_query_packet());
    ASSERT_TRUE(h->dns);
    ASSERT_TRUE(h->intent.has_value());
    first_node = &*h;
  }  // released -> freelist
  EXPECT_EQ(arena.live(), 0u);

  // A minimal packet adopted next must reuse the node yet show none of
  // the previous occupant's DNS payload, flags, or intent.
  PacketHandle h2 = arena.adopt(Packet{});
  EXPECT_EQ(&*h2, first_node) << "freelist did not recycle the node";
  EXPECT_TRUE(h2->dns.empty());
  EXPECT_FALSE(h2->intent.has_value());
  EXPECT_EQ(h2->tcp, TcpFlags{});
  EXPECT_EQ(h2->payload_bytes, 0u);
  EXPECT_EQ(h2->src_port, 0);
  EXPECT_EQ(arena.allocated(), 1u);  // no fresh slab growth
}

TEST(PacketArena, ReleaseDropsPayloadOwnershipImmediately) {
  // The arena must not pin DNS payload memory while a node sits on the
  // freelist: the shared state's refcount proves release happened.
  PacketArena arena;
  auto payload = dns::DnsPayload::from_message(
      dns::DnsMessage::query(7, dns::DomainName::must("x.test"), dns::RrType::kA));
  const std::vector<std::uint8_t>* wire = payload.wire();
  ASSERT_NE(wire, nullptr);
  {
    Packet p;
    p.dns = payload;
    PacketHandle h = arena.adopt(std::move(p));
    ASSERT_FALSE(h->dns.empty());
  }
  // Only our local `payload` reference remains; re-adopting the node
  // must hand out a packet with an empty payload.
  PacketHandle h2 = arena.adopt(Packet{});
  EXPECT_TRUE(h2->dns.empty());
}

TEST(PacketArena, GrowsInChunksAndReusesAcrossManyPackets) {
  PacketArena arena;
  std::vector<PacketHandle> held;
  for (int i = 0; i < 1000; ++i) held.push_back(arena.adopt(Packet{}));
  EXPECT_EQ(arena.live(), 1000u);
  const std::size_t hwm = arena.allocated();
  EXPECT_GE(hwm, 1000u);
  held.clear();
  EXPECT_EQ(arena.live(), 0u);
  // Steady-state churn after the burst: no new slab growth.
  for (int i = 0; i < 5000; ++i) {
    PacketHandle h = arena.adopt(dns_query_packet());
    PacketHandle dup = h;
    EXPECT_EQ(arena.live(), 1u);
  }
  EXPECT_EQ(arena.allocated(), hwm);
}

}  // namespace
}  // namespace dnsctx::netsim
