// Unit tests for the house gateway NAT.
#include <gtest/gtest.h>

#include "netsim/nat.hpp"
#include "util/rng.hpp"

namespace dnsctx::netsim {
namespace {

constexpr Ipv4Addr kHouseExternal{100, 66, 2, 1};
constexpr Ipv4Addr kDeviceA{192, 168, 1, 10};
constexpr Ipv4Addr kDeviceB{192, 168, 1, 11};
constexpr Ipv4Addr kServer{34, 9, 9, 9};

struct RecordingHost : Host {
  std::vector<Packet> received;
  void receive(const Packet& p) override { received.push_back(p); }
};

class NatTest : public ::testing::Test {
 protected:
  NatTest()
      : net{sim, LatencyModel{}, 1},
        gateway{sim, net, kHouseExternal, 7, SimDuration::zero()} {
    net.set_default_host(&wan_side);
    gateway.attach_device(kDeviceA, &dev_a);
    gateway.attach_device(kDeviceB, &dev_b);
  }

  [[nodiscard]] static Packet from(Ipv4Addr src, std::uint16_t sport, Ipv4Addr dst,
                                   std::uint16_t dport, Proto proto = Proto::kTcp) {
    Packet p;
    p.src_ip = src;
    p.src_port = sport;
    p.dst_ip = dst;
    p.dst_port = dport;
    p.proto = proto;
    return p;
  }

  Simulator sim;
  Network net;
  HouseGateway gateway;
  RecordingHost wan_side;
  RecordingHost dev_a;
  RecordingHost dev_b;
};

TEST_F(NatTest, OutboundRewritesSource) {
  gateway.from_device(from(kDeviceA, 10'000, kServer, 443));
  sim.run_to_completion();
  ASSERT_EQ(wan_side.received.size(), 1u);
  const Packet& p = wan_side.received[0];
  EXPECT_EQ(p.src_ip, kHouseExternal);
  EXPECT_NE(p.src_port, 10'000);  // translated
  EXPECT_EQ(p.dst_ip, kServer);
  EXPECT_EQ(p.dst_port, 443);
}

TEST_F(NatTest, MappingIsStablePerFlow) {
  gateway.from_device(from(kDeviceA, 10'000, kServer, 443));
  gateway.from_device(from(kDeviceA, 10'000, kServer, 443));
  sim.run_to_completion();
  ASSERT_EQ(wan_side.received.size(), 2u);
  EXPECT_EQ(wan_side.received[0].src_port, wan_side.received[1].src_port);
}

TEST_F(NatTest, DistinctFlowsGetDistinctPorts) {
  gateway.from_device(from(kDeviceA, 10'000, kServer, 443));
  gateway.from_device(from(kDeviceB, 10'000, kServer, 443));  // same internal port!
  // Stop short of the idle limit: run_to_completion would also run the
  // sweep that reclaims these (idle) mappings.
  sim.run_until(SimTime::origin() + SimDuration::min(1));
  ASSERT_EQ(wan_side.received.size(), 2u);
  EXPECT_NE(wan_side.received[0].src_port, wan_side.received[1].src_port);
  EXPECT_EQ(gateway.active_mappings(), 2u);
}

TEST_F(NatTest, InboundTranslatesBackToRightDevice) {
  gateway.from_device(from(kDeviceB, 12'345, kServer, 443));
  sim.run_until(SimTime::origin() + SimDuration::min(1));
  ASSERT_EQ(wan_side.received.size(), 1u);
  const std::uint16_t ext_port = wan_side.received[0].src_port;

  Packet reply = from(kServer, 443, kHouseExternal, ext_port);
  gateway.receive(reply);
  sim.run_until(SimTime::origin() + SimDuration::min(2));
  ASSERT_EQ(dev_b.received.size(), 1u);
  EXPECT_EQ(dev_b.received[0].dst_ip, kDeviceB);
  EXPECT_EQ(dev_b.received[0].dst_port, 12'345);
  EXPECT_TRUE(dev_a.received.empty());
}

TEST_F(NatTest, UnsolicitedInboundDropped) {
  gateway.receive(from(kServer, 443, kHouseExternal, 5'555));
  sim.run_to_completion();
  EXPECT_TRUE(dev_a.received.empty());
  EXPECT_TRUE(dev_b.received.empty());
}

TEST_F(NatTest, UdpAndTcpMappingsAreSeparate) {
  gateway.from_device(from(kDeviceA, 9'999, kServer, 53, Proto::kUdp));
  gateway.from_device(from(kDeviceA, 9'999, kServer, 53, Proto::kTcp));
  sim.run_until(SimTime::origin() + SimDuration::min(1));
  EXPECT_EQ(gateway.active_mappings(), 2u);
}

TEST_F(NatTest, IdleMappingsAreSweptAfterIdleLimit) {
  gateway.from_device(from(kDeviceA, 10'000, kServer, 443));
  sim.run_until(SimTime::origin() + SimDuration::min(1));
  EXPECT_EQ(gateway.active_mappings(), 1u);
  sim.run_to_completion();  // runs the periodic sweep past the idle limit
  EXPECT_EQ(gateway.active_mappings(), 0u);
}

TEST_F(NatTest, DnsInterceptConsumesOutboundQueries) {
  int intercepted = 0;
  gateway.set_dns_intercept([&](const Packet& p) {
    ++intercepted;
    EXPECT_EQ(p.src_ip, kDeviceA);  // pre-NAT view
    return true;                    // consume
  });
  gateway.from_device(from(kDeviceA, 9'999, kServer, 53, Proto::kUdp));
  sim.run_to_completion();
  EXPECT_EQ(intercepted, 1);
  EXPECT_TRUE(wan_side.received.empty());
}

TEST_F(NatTest, DnsInterceptCanDecline) {
  gateway.set_dns_intercept([](const Packet&) { return false; });
  gateway.from_device(from(kDeviceA, 9'999, kServer, 53, Proto::kUdp));
  sim.run_to_completion();
  EXPECT_EQ(wan_side.received.size(), 1u);
}

TEST_F(NatTest, InterceptIgnoresNonDnsTraffic) {
  gateway.set_dns_intercept([](const Packet&) { return true; });
  gateway.from_device(from(kDeviceA, 9'999, kServer, 443, Proto::kTcp));
  sim.run_to_completion();
  EXPECT_EQ(wan_side.received.size(), 1u);
}

TEST_F(NatTest, DeliverToDeviceBypassesWan) {
  Packet p = from(kServer, 53, kDeviceA, 7'777, Proto::kUdp);
  gateway.deliver_to_device(p);
  sim.run_to_completion();
  ASSERT_EQ(dev_a.received.size(), 1u);
  EXPECT_TRUE(wan_side.received.empty());
}

TEST_F(NatTest, StaleMappingsAreRecycled) {
  // Exhaust-ish: allocate many mappings, advance beyond the idle limit,
  // and confirm new flows still get ports (old ones reclaimed).
  for (std::uint16_t i = 0; i < 200; ++i) {
    gateway.from_device(from(kDeviceA, static_cast<std::uint16_t>(20'000 + i), kServer, 443));
  }
  sim.run_to_completion();
  sim.at(sim.now() + SimDuration::hours(1), [] {});
  sim.run_to_completion();
  gateway.from_device(from(kDeviceA, 30'001, kServer, 443));
  sim.run_to_completion();
  EXPECT_EQ(wan_side.received.size(), 201u);
}

TEST_F(NatTest, RandomTrafficStormUpholdsInvariants) {
  // Fuzz-lite: random in/outbound packets must never crash the gateway,
  // and every translated packet must carry the house external address.
  Rng rng{99};
  for (int i = 0; i < 5'000; ++i) {
    if (rng.bernoulli(0.7)) {
      const Ipv4Addr dev = rng.bernoulli(0.5) ? kDeviceA : kDeviceB;
      gateway.from_device(from(dev, static_cast<std::uint16_t>(1'024 + rng.bounded(60'000)),
                               kServer, static_cast<std::uint16_t>(1 + rng.bounded(65'000)),
                               rng.bernoulli(0.5) ? Proto::kTcp : Proto::kUdp));
    } else {
      gateway.receive(from(kServer, static_cast<std::uint16_t>(1 + rng.bounded(65'000)),
                           kHouseExternal,
                           static_cast<std::uint16_t>(1'024 + rng.bounded(60'000)),
                           rng.bernoulli(0.5) ? Proto::kTcp : Proto::kUdp));
    }
    if (i % 512 == 0) sim.run_to_completion();
  }
  sim.run_to_completion();
  for (const auto& p : wan_side.received) {
    EXPECT_EQ(p.src_ip, kHouseExternal);
    EXPECT_GE(p.src_port, 1'024);
  }
  // Inbound deliveries only ever reach attached devices.
  for (const auto& p : dev_a.received) EXPECT_EQ(p.dst_ip, kDeviceA);
  for (const auto& p : dev_b.received) EXPECT_EQ(p.dst_ip, kDeviceB);
}

}  // namespace
}  // namespace dnsctx::netsim
