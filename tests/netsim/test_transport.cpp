// dnsctx — transport-model tests: traits, RFC 8467 padding properties,
// and randomized-interleaving property tests of the SecureChannel
// connection-reuse state machine against a straight-line reference model.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "netsim/transport.hpp"
#include "util/rng.hpp"

namespace dnsctx::netsim {
namespace {

TEST(Transport, NameRoundTrip) {
  for (const Transport t : {Transport::kDo53, Transport::kDoT, Transport::kDoH,
                            Transport::kResolverless}) {
    const auto parsed = parse_transport(to_string(t));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, t);
  }
  EXPECT_FALSE(parse_transport("dnscrypt").has_value());
  EXPECT_FALSE(parse_transport("").has_value());
  EXPECT_FALSE(parse_transport("DoT").has_value());  // names are lowercase
}

TEST(Transport, CleartextTraitsAreInert) {
  for (const Transport t : {Transport::kDo53, Transport::kResolverless}) {
    const auto& traits = traits_for(t);
    EXPECT_FALSE(traits.encrypted);
    EXPECT_EQ(traits.port, 53);
    EXPECT_EQ(traits.query_pad_block, 0u);
    EXPECT_EQ(traits.response_pad_block, 0u);
    EXPECT_EQ(traits.per_message_overhead, 0u);
    EXPECT_EQ(traits.idle_timeout, SimDuration::zero());
  }
}

TEST(Transport, EncryptedTraitsMatchRfcProfiles) {
  const auto& dot = traits_for(Transport::kDoT);
  EXPECT_TRUE(dot.encrypted);
  EXPECT_EQ(dot.port, 853);
  EXPECT_EQ(dot.query_pad_block, 128u);     // RFC 8467 §4 recommendation
  EXPECT_EQ(dot.response_pad_block, 468u);
  EXPECT_EQ(dot.idle_timeout, SimDuration::sec(10));

  const auto& doh = traits_for(Transport::kDoH);
  EXPECT_TRUE(doh.encrypted);
  EXPECT_EQ(doh.port, 443);
  EXPECT_EQ(doh.query_pad_block, 128u);
  EXPECT_EQ(doh.response_pad_block, 468u);
  EXPECT_EQ(doh.idle_timeout, SimDuration::sec(30));
  // HTTP/2 framing rides on top of the TLS record costs.
  EXPECT_GT(doh.per_message_overhead, dot.per_message_overhead);
  EXPECT_GT(doh.client_hello_bytes, dot.client_hello_bytes);
}

TEST(Transport, PadToBlockProperties) {
  Rng rng{20'260'808};
  for (int i = 0; i < 2'000; ++i) {
    const auto bytes = static_cast<std::uint64_t>(rng.uniform_int(0, 5'000));
    const auto block = static_cast<std::uint32_t>(rng.uniform_int(1, 512));
    const std::uint64_t padded = pad_to_block(bytes, block);
    EXPECT_EQ(padded % block, 0u);
    EXPECT_GE(padded, bytes);
    EXPECT_LT(padded - bytes, block);
  }
  // block == 0 means "no padding" — identity.
  EXPECT_EQ(pad_to_block(137, 0), 137u);
  EXPECT_EQ(pad_to_block(0, 0), 0u);
}

TEST(Transport, PaddedPayloadNeverLeaksEmptiness) {
  // A zero-length plaintext still pads up to one full block: an empty
  // TLS record would reveal that nothing was sent.
  EXPECT_EQ(padded_payload(0, 128, 31), 128u + 31u);
  EXPECT_EQ(padded_payload(1, 128, 31), 128u + 31u);
  EXPECT_EQ(padded_payload(128, 128, 31), 128u + 31u);
  EXPECT_EQ(padded_payload(129, 128, 31), 256u + 31u);
}

TEST(Transport, QuerySizesCollapseToPadBlocks) {
  // Every plausible DNS query size maps onto very few observable sizes —
  // the whole point of RFC 8467 padding.
  const auto& traits = traits_for(Transport::kDoT);
  std::vector<std::uint64_t> seen;
  for (std::uint64_t wire = 17; wire < 250; ++wire) {
    const auto obs = padded_payload(wire, traits.query_pad_block,
                                    traits.per_message_overhead);
    EXPECT_EQ((obs - traits.per_message_overhead) % traits.query_pad_block, 0u);
    if (seen.empty() || seen.back() != obs) seen.push_back(obs);
  }
  EXPECT_LE(seen.size(), 2u);  // 128+31 and 256+31 only
}

// ---- SecureChannel property tests ------------------------------------------

/// Straight-line reference model of the channel lifecycle, written
/// independently of SecureChannel so divergence in either is caught.
struct RefChannel {
  enum class St { kCold, kHandshaking, kEstablished };
  SimDuration idle;
  St st = St::kCold;
  SimTime last{};
  std::uint64_t handshakes = 0;
  std::uint64_t reuses = 0;

  bool acquire(SimTime now) {
    if (st == St::kHandshaking) return false;
    if (st == St::kEstablished && now - last < idle) {
      ++reuses;
      last = now;
      return false;
    }
    st = St::kHandshaking;
    ++handshakes;
    last = now;
    return true;
  }
  void established(SimTime now) {
    st = St::kEstablished;
    last = now;
  }
  void close() { st = St::kCold; }
};

TEST(SecureChannel, ColdAcquireStartsExactlyOneHandshake) {
  SecureChannel ch{SimDuration::sec(10)};
  EXPECT_EQ(ch.state(), SecureChannel::State::kCold);
  EXPECT_TRUE(ch.acquire(SimTime::from_us(1'000)));
  EXPECT_EQ(ch.state(), SecureChannel::State::kHandshaking);
  // Concurrent queries during the handshake queue, no second handshake.
  EXPECT_FALSE(ch.acquire(SimTime::from_us(2'000)));
  EXPECT_EQ(ch.handshakes(), 1u);
  ch.established(SimTime::from_us(5'000));
  EXPECT_EQ(ch.state(), SecureChannel::State::kEstablished);
}

TEST(SecureChannel, WarmAcquireCountsReuse) {
  SecureChannel ch{SimDuration::sec(10)};
  ASSERT_TRUE(ch.acquire(SimTime::from_us(0)));
  ch.established(SimTime::from_us(100));
  EXPECT_FALSE(ch.acquire(SimTime::from_us(200)));
  EXPECT_FALSE(ch.acquire(SimTime::from_us(300)));
  EXPECT_EQ(ch.reuses(), 2u);
  EXPECT_EQ(ch.handshakes(), 1u);
}

TEST(SecureChannel, IdleExpiryForcesNewHandshake) {
  SecureChannel ch{SimDuration::sec(10)};
  ASSERT_TRUE(ch.acquire(SimTime::from_us(0)));
  ch.established(SimTime::from_us(100));
  const SimTime just_before = SimTime::from_us(100) + SimDuration::sec(10) -
                              SimDuration::us(1);
  EXPECT_FALSE(ch.idle_expired(just_before));
  EXPECT_TRUE(ch.idle_expired(just_before + SimDuration::us(1)));
  // Acquire past the idle span: the stale channel closes and a fresh
  // handshake starts.
  EXPECT_TRUE(ch.acquire(SimTime::from_us(100) + SimDuration::sec(11)));
  EXPECT_EQ(ch.handshakes(), 2u);
  EXPECT_EQ(ch.reuses(), 0u);
}

TEST(SecureChannel, TouchExtendsTheIdleWindow) {
  SecureChannel ch{SimDuration::sec(10)};
  ASSERT_TRUE(ch.acquire(SimTime::from_us(0)));
  ch.established(SimTime::from_us(0));
  ch.touch(SimTime::from_us(0) + SimDuration::sec(9));
  EXPECT_FALSE(ch.idle_expired(SimTime::from_us(0) + SimDuration::sec(15)));
  EXPECT_FALSE(ch.acquire(SimTime::from_us(0) + SimDuration::sec(15)));
  EXPECT_EQ(ch.reuses(), 1u);
}

TEST(SecureChannel, RandomizedInterleavingsMatchReferenceModel) {
  // Drive random op sequences (acquire / established / touch / close /
  // time skips) through both implementations; every observable must
  // agree at every step, for several seeds.
  for (const std::uint64_t seed : {1ull, 7ull, 1337ull, 918'273ull}) {
    Rng rng{seed};
    for (const auto idle_sec : {1, 10, 30}) {
      SecureChannel ch{SimDuration::sec(idle_sec)};
      RefChannel ref{SimDuration::sec(idle_sec)};
      SimTime now;
      for (int step = 0; step < 400; ++step) {
        now = now + SimDuration::ms(rng.uniform_int(0, 20'000));
        switch (rng.uniform_int(0, 3)) {
          case 0:
            EXPECT_EQ(ch.acquire(now), ref.acquire(now)) << "seed " << seed;
            break;
          case 1:
            if (ch.state() == SecureChannel::State::kHandshaking) {
              ch.established(now);
              ref.established(now);
            }
            break;
          case 2:
            if (ch.state() == SecureChannel::State::kEstablished) {
              ch.touch(now);
              ref.last = now;
            }
            break;
          case 3:
            ch.close();
            ref.close();
            break;
        }
        EXPECT_EQ(static_cast<int>(ch.state()), static_cast<int>(ref.st));
        EXPECT_EQ(ch.handshakes(), ref.handshakes);
        EXPECT_EQ(ch.reuses(), ref.reuses);
      }
    }
  }
}

TEST(SecureChannel, HandshakeCountNeverExceedsAcquires) {
  Rng rng{99};
  SecureChannel ch{SimDuration::sec(10)};
  SimTime now;
  std::uint64_t acquires = 0;
  for (int step = 0; step < 1'000; ++step) {
    now = now + SimDuration::ms(rng.uniform_int(0, 30'000));
    if (rng.uniform_int(0, 1) == 0) {
      (void)ch.acquire(now);
      ++acquires;
    } else if (ch.state() == SecureChannel::State::kHandshaking) {
      ch.established(now);
    }
    EXPECT_LE(ch.handshakes(), acquires);
    EXPECT_LE(ch.reuses() + ch.handshakes(), acquires);
  }
}

}  // namespace
}  // namespace dnsctx::netsim
