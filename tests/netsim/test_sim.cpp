// Unit tests for the discrete-event engine.
#include <gtest/gtest.h>

#include "netsim/sim.hpp"

namespace dnsctx::netsim {
namespace {

TEST(Simulator, DispatchesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(SimTime::from_us(30), [&] { order.push_back(3); });
  sim.at(SimTime::from_us(10), [&] { order.push_back(1); });
  sim.at(SimTime::from_us(20), [&] { order.push_back(2); });
  sim.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.dispatched(), 3u);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.at(SimTime::from_us(5), [&order, i] { order.push_back(i); });
  }
  sim.run_to_completion();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  SimTime seen;
  sim.at(SimTime::from_us(123), [&] { seen = sim.now(); });
  sim.run_to_completion();
  EXPECT_EQ(seen, SimTime::from_us(123));
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.at(SimTime::from_us(10), [&] { ++fired; });
  sim.at(SimTime::from_us(20), [&] { ++fired; });
  sim.at(SimTime::from_us(30), [&] { ++fired; });
  sim.run_until(SimTime::from_us(20));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), SimTime::from_us(20));
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_until(SimTime::from_us(100));
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), SimTime::from_us(100));  // clock reaches the horizon
}

TEST(Simulator, AfterIsRelativeToNow) {
  Simulator sim;
  SimTime when;
  sim.at(SimTime::from_us(50), [&] {
    sim.after(SimDuration::us(25), [&] { when = sim.now(); });
  });
  sim.run_to_completion();
  EXPECT_EQ(when, SimTime::from_us(75));
}

TEST(Simulator, ZeroDelaySelfSchedulingProgresses) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.after(SimDuration::zero(), recurse);
  };
  sim.after(SimDuration::zero(), recurse);
  sim.run_to_completion();
  EXPECT_EQ(depth, 100);
}

TEST(Simulator, SchedulingInThePastClampsToNowWithCounter) {
  Simulator sim;
  sim.at(SimTime::from_us(100), [] {});
  sim.run_to_completion();
  EXPECT_EQ(sim.clamped_past(), 0u);
#ifdef NDEBUG
  // Release contract: clamp to now(), count the violation, and keep the
  // clamped event ordered after anything already due at now().
  std::vector<int> order;
  sim.at(SimTime::from_us(100), [&] { order.push_back(1); });
  sim.at(SimTime::from_us(50), [&] { order.push_back(2); });  // in the past
  EXPECT_EQ(sim.clamped_past(), 1u);
  sim.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), SimTime::from_us(100));  // clock never moved backwards
#else
  // Debug contract: scheduling in the past trips an assert.
  EXPECT_DEATH(sim.at(SimTime::from_us(50), [] {}), "scheduling in the past");
#endif
}

TEST(Simulator, EventsScheduledDuringDispatchRun) {
  Simulator sim;
  bool inner = false;
  sim.at(SimTime::from_us(10), [&] {
    sim.after(SimDuration::us(5), [&] { inner = true; });
  });
  sim.run_until(SimTime::from_us(15));
  EXPECT_TRUE(inner);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.at(SimTime::from_us(1), [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

}  // namespace
}  // namespace dnsctx::netsim
