// Unit tests for the WAN fabric: latency model, delivery, tap rules.
#include <gtest/gtest.h>

#include "netsim/network.hpp"

namespace dnsctx::netsim {
namespace {

struct RecordingHost : Host {
  std::vector<std::pair<SimTime, Packet>> received;
  Simulator* sim = nullptr;
  void receive(const Packet& p) override { received.emplace_back(sim->now(), p); }
};

struct RecordingTap : PacketTap {
  std::vector<std::pair<SimTime, Packet>> observed;
  void observe(SimTime at_tap, const Packet& p) override { observed.emplace_back(at_tap, p); }
};

constexpr Ipv4Addr kHouse{100, 66, 1, 1};
constexpr Ipv4Addr kServer{34, 1, 1, 1};
constexpr Ipv4Addr kOtherServer{34, 1, 1, 2};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : net{sim, make_latency(), 1} {
    host.sim = &sim;
    server.sim = &sim;
  }

  static LatencyModel make_latency() {
    LatencyModel lat;
    lat.set_site(kHouse, SiteProfile{SimDuration::ms(1), 0.0});
    lat.set_site(kServer, SiteProfile{SimDuration::ms(10), 0.0});
    return lat;
  }

  [[nodiscard]] static Packet packet(Ipv4Addr src, Ipv4Addr dst) {
    Packet p;
    p.src_ip = src;
    p.dst_ip = dst;
    p.src_port = 1'000;
    p.dst_port = 80;
    p.proto = Proto::kTcp;
    return p;
  }

  Simulator sim;
  Network net;
  RecordingHost host;
  RecordingHost server;
  RecordingTap tap;
};

TEST_F(NetworkTest, DeliversAfterSummedSiteDelay) {
  net.attach(kServer, &server);
  net.send(packet(kHouse, kServer));
  sim.run_to_completion();
  ASSERT_EQ(server.received.size(), 1u);
  // 1 ms + 10 ms, zero jitter configured.
  EXPECT_EQ(server.received[0].first, SimTime::origin() + SimDuration::ms(11));
}

TEST_F(NetworkTest, TapSeesAccessCrossings) {
  net.attach(kServer, &server);
  net.register_access_ip(kHouse);
  net.set_tap(&tap);
  net.send(packet(kHouse, kServer));
  sim.run_to_completion();
  ASSERT_EQ(tap.observed.size(), 1u);
  // Outbound crossing: send time + house leg.
  EXPECT_EQ(tap.observed[0].first, SimTime::origin() + SimDuration::ms(1));
}

TEST_F(NetworkTest, TapTimesInboundAtAggregationPoint) {
  net.attach(kHouse, &host);
  net.register_access_ip(kHouse);
  net.set_tap(&tap);
  net.send(packet(kServer, kHouse));
  sim.run_to_completion();
  ASSERT_EQ(tap.observed.size(), 1u);
  // Inbound crossing: arrival − house leg = 11 ms − 1 ms.
  EXPECT_EQ(tap.observed[0].first, SimTime::origin() + SimDuration::ms(10));
  ASSERT_EQ(host.received.size(), 1u);
  EXPECT_EQ(host.received[0].first, SimTime::origin() + SimDuration::ms(11));
}

TEST_F(NetworkTest, CoreToCoreTrafficIsInvisible) {
  net.attach(kOtherServer, &server);
  net.register_access_ip(kHouse);
  net.set_tap(&tap);
  net.send(packet(kServer, kOtherServer));
  sim.run_to_completion();
  EXPECT_TRUE(tap.observed.empty());
  EXPECT_EQ(server.received.size(), 1u);
}

TEST_F(NetworkTest, AccessToAccessTrafficIsInvisible) {
  const Ipv4Addr house2{100, 66, 1, 2};
  net.attach(house2, &server);
  net.register_access_ip(kHouse);
  net.register_access_ip(house2);
  net.set_tap(&tap);
  net.send(packet(kHouse, house2));
  sim.run_to_completion();
  EXPECT_TRUE(tap.observed.empty());
}

TEST_F(NetworkTest, UnattachedDestinationGoesToDefaultHost) {
  net.set_default_host(&server);
  net.send(packet(kHouse, Ipv4Addr{9, 9, 9, 9}));
  sim.run_to_completion();
  EXPECT_EQ(server.received.size(), 1u);
  EXPECT_EQ(net.dropped(), 0u);
}

TEST_F(NetworkTest, NoHandlerCountsDrop) {
  net.send(packet(kHouse, Ipv4Addr{9, 9, 9, 9}));
  sim.run_to_completion();
  EXPECT_EQ(net.dropped(), 1u);
}

TEST(LatencyModel, UnknownRemotesGetDeterministicProfile) {
  LatencyModel lat;
  const auto a = lat.site(Ipv4Addr{45, 3, 2, 1});
  const auto b = lat.site(Ipv4Addr{45, 3, 2, 1});
  const auto c = lat.site(Ipv4Addr{45, 3, 2, 2});
  EXPECT_EQ(a.base_one_way, b.base_one_way);  // same IP, same distance
  EXPECT_GE(a.base_one_way, SimDuration::from_ms(4.0));
  EXPECT_LE(a.base_one_way, SimDuration::from_ms(35.0));
  (void)c;  // different IPs usually differ; no strict assertion (hash)
}

TEST(LatencyModel, RemoteRangeRespected) {
  LatencyModel lat;
  lat.set_remote_range(SimDuration::ms(2), SimDuration::ms(3));
  for (std::uint32_t i = 0; i < 50; ++i) {
    const auto p = lat.site(Ipv4Addr::from_u32(0x22000000u + i * 977));
    EXPECT_GE(p.base_one_way, SimDuration::ms(2));
    EXPECT_LE(p.base_one_way, SimDuration::ms(3));
  }
}

TEST(LatencyModel, JitterIsNonNegative) {
  LatencyModel lat;
  lat.set_site(kHouse, SiteProfile{SimDuration::ms(1), 0.5});
  lat.set_site(kServer, SiteProfile{SimDuration::ms(5), 0.5});
  Rng rng{3};
  for (int i = 0; i < 200; ++i) {
    EXPECT_GE(lat.one_way(kHouse, kServer, rng), SimDuration::ms(6));
  }
}

}  // namespace
}  // namespace dnsctx::netsim
