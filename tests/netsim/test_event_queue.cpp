// Property tests for the calendar event queue: the new structure must
// reproduce the exact (when, seq) total order of the reference binary
// heap it replaced, across slot boundaries, wheel revolutions, the
// wheel1 cascade, and the far-future overflow heap.
#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <random>
#include <vector>

#include "netsim/event_queue.hpp"
#include "netsim/sim.hpp"

namespace dnsctx::netsim {
namespace {

struct Ref {
  std::int64_t when_us;
  std::uint64_t seq;
};
struct RefLater {
  [[nodiscard]] bool operator()(const Ref& a, const Ref& b) const {
    if (a.when_us != b.when_us) return a.when_us > b.when_us;
    return a.seq > b.seq;
  }
};
using RefHeap = std::priority_queue<Ref, std::vector<Ref>, RefLater>;

TEST(EventQueue, TiesBreakBySequence) {
  EventQueue q;
  // Same timestamp, shuffled insertion of sequence numbers is not
  // allowed by contract (seq increases monotonically), so check the
  // real property: equal timestamps pop in insertion order.
  for (std::uint64_t s = 0; s < 100; ++s) q.push(SimTime::from_us(777), s, [] {});
  SimTime when;
  InlineAction a;
  for (std::uint64_t s = 0; s < 100; ++s) {
    ASSERT_TRUE(q.pop_min(&when, &a));
    EXPECT_EQ(when, SimTime::from_us(777));
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CrossBucketOrderingUnderInterleavedScheduling) {
  // Timestamps chosen to straddle every structure: sub-slot, cross-slot,
  // cross-revolution (wheel0 wrap at ~1.05s), cross-wheel1-slot, and
  // overflow (> ~71.6 min).
  const std::int64_t spans_us[] = {0,          1,           255,         256,
                                   4095,       1 << 20,     (1 << 20) + 1,
                                   std::int64_t{1} << 32,   std::int64_t{5} << 32};
  EventQueue q;
  RefHeap ref;
  std::mt19937_64 rng{42};
  std::uint64_t seq = 0;
  std::int64_t now = 0;
  std::vector<std::int64_t> popped;
  std::vector<std::int64_t> expected;
  for (int round = 0; round < 2000; ++round) {
    const std::int64_t base = now;
    for (int k = 0; k < 3; ++k) {
      const std::int64_t span = spans_us[rng() % (sizeof(spans_us) / sizeof(spans_us[0]))];
      const std::int64_t when = base + static_cast<std::int64_t>(rng() % 7) + span;
      q.push(SimTime::from_us(when), seq, [] {});
      ref.push(Ref{when, seq});
      ++seq;
    }
    // Pop a couple so the cursor advances while inserts keep arriving.
    for (int k = 0; k < 2 && !ref.empty(); ++k) {
      SimTime when;
      InlineAction a;
      ASSERT_TRUE(q.pop_min(&when, &a));
      expected.push_back(ref.top().when_us);
      ref.pop();
      popped.push_back(when.count_us());
      now = when.count_us();
    }
  }
  ASSERT_EQ(popped, expected);
}

TEST(EventQueue, MatchesReferenceHeapOver100kRandomOps) {
  EventQueue q;
  RefHeap ref;
  std::mt19937_64 rng{7};
  std::uint64_t seq = 0;
  std::int64_t now = 0;
  std::size_t pops = 0;
  for (int op = 0; op < 100'000; ++op) {
    const bool push = ref.empty() || (rng() % 100) < 55;
    if (push) {
      // Mix of near (same slot), mid (wheel0/wheel1), and far
      // (overflow) horizons, with frequent duplicate timestamps to
      // exercise the seq tie-break.
      std::int64_t delta;
      switch (rng() % 6) {
        case 0: delta = 0; break;
        case 1: delta = static_cast<std::int64_t>(rng() % 64); break;
        case 2: delta = static_cast<std::int64_t>(rng() % 10'000); break;
        case 3: delta = static_cast<std::int64_t>(rng() % 3'000'000); break;
        case 4: delta = static_cast<std::int64_t>(rng() % 600'000'000); break;
        default: delta = static_cast<std::int64_t>(rng() % 20'000'000'000); break;
      }
      const std::int64_t when = now + delta;
      q.push(SimTime::from_us(when), seq, [] {});
      ref.push(Ref{when, seq});
      ++seq;
    } else {
      SimTime when;
      InlineAction a;
      ASSERT_TRUE(q.pop_min(&when, &a));
      ASSERT_EQ(when.count_us(), ref.top().when_us) << "op " << op;
      ref.pop();
      now = when.count_us();
      ++pops;
    }
    ASSERT_EQ(q.size(), ref.size());
  }
  while (!ref.empty()) {
    SimTime when;
    InlineAction a;
    ASSERT_TRUE(q.pop_min(&when, &a));
    ASSERT_EQ(when.count_us(), ref.top().when_us);
    ref.pop();
    ++pops;
  }
  EXPECT_TRUE(q.empty());
  EXPECT_GT(pops, 10'000u);  // the op mix actually exercised dequeue
}

TEST(EventQueue, NextWhenPeeksWithoutPopping) {
  EventQueue q;
  EXPECT_FALSE(q.next_when().has_value());
  q.push(SimTime::from_us(5'000'000), 0, [] {});  // wheel1 territory
  q.push(SimTime::from_us(10), 1, [] {});
  ASSERT_TRUE(q.next_when().has_value());
  EXPECT_EQ(*q.next_when(), SimTime::from_us(10));
  EXPECT_EQ(q.size(), 2u);
  SimTime when;
  InlineAction a;
  ASSERT_TRUE(q.pop_min(&when, &a));
  EXPECT_EQ(when, SimTime::from_us(10));
  EXPECT_EQ(*q.next_when(), SimTime::from_us(5'000'000));
}

TEST(InlineActionTest, InlineAndHeapCallablesInvokeAndRelease) {
  int hits = 0;
  InlineAction small{[&hits] { ++hits; }};
  ASSERT_TRUE(static_cast<bool>(small));
  small();
  EXPECT_EQ(hits, 1);

  // Oversized capture forces the heap fallback; a shared_ptr tracks
  // that the callable is destroyed exactly once.
  auto token = std::make_shared<int>(0);
  std::weak_ptr<int> alive = token;
  {
    struct Big {
      std::shared_ptr<int> p;
      char pad[64];
      void operator()() const { ++*p; }
    };
    InlineAction big{Big{token, {}}};
    token.reset();
    InlineAction moved{std::move(big)};
    EXPECT_FALSE(static_cast<bool>(big));  // NOLINT(bugprone-use-after-move)
    moved();
    EXPECT_FALSE(alive.expired());
  }
  EXPECT_TRUE(alive.expired());
}

TEST(InlineActionTest, MoveAssignReplacesAndDestroysPrevious) {
  auto a_token = std::make_shared<int>(0);
  std::weak_ptr<int> a_alive = a_token;
  InlineAction act{[p = std::move(a_token)] { ++*p; }};
  act = InlineAction{[] {}};
  EXPECT_TRUE(a_alive.expired());  // previous capture released on assign
  act();                           // replacement callable runs fine
}

}  // namespace
}  // namespace dnsctx::netsim
