file(REMOVE_RECURSE
  "../bench/bench_validation"
  "../bench/bench_validation.pdb"
  "CMakeFiles/bench_validation.dir/bench_validation.cpp.o"
  "CMakeFiles/bench_validation.dir/bench_validation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
