file(REMOVE_RECURSE
  "../bench/bench_refresh_policies"
  "../bench/bench_refresh_policies.pdb"
  "CMakeFiles/bench_refresh_policies.dir/bench_refresh_policies.cpp.o"
  "CMakeFiles/bench_refresh_policies.dir/bench_refresh_policies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_refresh_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
