# Empty dependencies file for bench_refresh_policies.
# This may be replaced when dependencies are built.
