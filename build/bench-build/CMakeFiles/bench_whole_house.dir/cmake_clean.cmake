file(REMOVE_RECURSE
  "../bench/bench_whole_house"
  "../bench/bench_whole_house.pdb"
  "CMakeFiles/bench_whole_house.dir/bench_whole_house.cpp.o"
  "CMakeFiles/bench_whole_house.dir/bench_whole_house.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_whole_house.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
