# Empty dependencies file for bench_whole_house.
# This may be replaced when dependencies are built.
