# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_simulate "/root/repo/build/tools/dnsctx" "simulate" "--out" "/root/repo/build/cli_smoke" "--houses" "4" "--hours" "1")
set_tests_properties(cli_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_analyze "/root/repo/build/tools/dnsctx" "analyze" "--dir" "/root/repo/build/cli_smoke" "--section" "table2")
set_tests_properties(cli_analyze PROPERTIES  DEPENDS "cli_simulate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_analyze_csv "/root/repo/build/tools/dnsctx" "analyze" "--dir" "/root/repo/build/cli_smoke" "--section" "fig2" "--csv" "/root/repo/build/cli_smoke/csv")
set_tests_properties(cli_analyze_csv PROPERTIES  DEPENDS "cli_simulate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_validate "/root/repo/build/tools/dnsctx" "validate" "--houses" "4" "--hours" "1")
set_tests_properties(cli_validate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_sweep "/root/repo/build/tools/dnsctx" "sweep" "--key" "p2p_house_frac" "--values" "0,0.5" "--houses" "4" "--hours" "1")
set_tests_properties(cli_sweep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/tools/dnsctx")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_unknown_command "/root/repo/build/tools/dnsctx" "frobnicate")
set_tests_properties(cli_unknown_command PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_config "/root/repo/build/tools/dnsctx" "simulate" "--out" "/tmp" "--config" "/nonexistent.conf")
set_tests_properties(cli_bad_config PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
