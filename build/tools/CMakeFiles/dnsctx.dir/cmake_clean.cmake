file(REMOVE_RECURSE
  "CMakeFiles/dnsctx.dir/dnsctx_cli.cpp.o"
  "CMakeFiles/dnsctx.dir/dnsctx_cli.cpp.o.d"
  "dnsctx"
  "dnsctx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsctx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
