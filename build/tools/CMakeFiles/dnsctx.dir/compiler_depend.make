# Empty compiler generated dependencies file for dnsctx.
# This may be replaced when dependencies are built.
