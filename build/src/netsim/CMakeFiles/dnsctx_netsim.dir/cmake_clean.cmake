file(REMOVE_RECURSE
  "CMakeFiles/dnsctx_netsim.dir/nat.cpp.o"
  "CMakeFiles/dnsctx_netsim.dir/nat.cpp.o.d"
  "CMakeFiles/dnsctx_netsim.dir/network.cpp.o"
  "CMakeFiles/dnsctx_netsim.dir/network.cpp.o.d"
  "CMakeFiles/dnsctx_netsim.dir/sim.cpp.o"
  "CMakeFiles/dnsctx_netsim.dir/sim.cpp.o.d"
  "libdnsctx_netsim.a"
  "libdnsctx_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsctx_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
