# Empty compiler generated dependencies file for dnsctx_netsim.
# This may be replaced when dependencies are built.
