file(REMOVE_RECURSE
  "libdnsctx_netsim.a"
)
