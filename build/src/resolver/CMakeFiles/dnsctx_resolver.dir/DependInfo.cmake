
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/resolver/forwarder.cpp" "src/resolver/CMakeFiles/dnsctx_resolver.dir/forwarder.cpp.o" "gcc" "src/resolver/CMakeFiles/dnsctx_resolver.dir/forwarder.cpp.o.d"
  "/root/repo/src/resolver/recursive.cpp" "src/resolver/CMakeFiles/dnsctx_resolver.dir/recursive.cpp.o" "gcc" "src/resolver/CMakeFiles/dnsctx_resolver.dir/recursive.cpp.o.d"
  "/root/repo/src/resolver/stub.cpp" "src/resolver/CMakeFiles/dnsctx_resolver.dir/stub.cpp.o" "gcc" "src/resolver/CMakeFiles/dnsctx_resolver.dir/stub.cpp.o.d"
  "/root/repo/src/resolver/zonedb.cpp" "src/resolver/CMakeFiles/dnsctx_resolver.dir/zonedb.cpp.o" "gcc" "src/resolver/CMakeFiles/dnsctx_resolver.dir/zonedb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/dnsctx_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/dnsctx_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dnsctx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
