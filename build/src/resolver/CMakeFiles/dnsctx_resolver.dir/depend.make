# Empty dependencies file for dnsctx_resolver.
# This may be replaced when dependencies are built.
