file(REMOVE_RECURSE
  "CMakeFiles/dnsctx_resolver.dir/forwarder.cpp.o"
  "CMakeFiles/dnsctx_resolver.dir/forwarder.cpp.o.d"
  "CMakeFiles/dnsctx_resolver.dir/recursive.cpp.o"
  "CMakeFiles/dnsctx_resolver.dir/recursive.cpp.o.d"
  "CMakeFiles/dnsctx_resolver.dir/stub.cpp.o"
  "CMakeFiles/dnsctx_resolver.dir/stub.cpp.o.d"
  "CMakeFiles/dnsctx_resolver.dir/zonedb.cpp.o"
  "CMakeFiles/dnsctx_resolver.dir/zonedb.cpp.o.d"
  "libdnsctx_resolver.a"
  "libdnsctx_resolver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsctx_resolver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
