file(REMOVE_RECURSE
  "libdnsctx_resolver.a"
)
