# Empty dependencies file for dnsctx_capture.
# This may be replaced when dependencies are built.
