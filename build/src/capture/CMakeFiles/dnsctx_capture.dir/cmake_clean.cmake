file(REMOVE_RECURSE
  "CMakeFiles/dnsctx_capture.dir/logio.cpp.o"
  "CMakeFiles/dnsctx_capture.dir/logio.cpp.o.d"
  "CMakeFiles/dnsctx_capture.dir/monitor.cpp.o"
  "CMakeFiles/dnsctx_capture.dir/monitor.cpp.o.d"
  "libdnsctx_capture.a"
  "libdnsctx_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsctx_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
