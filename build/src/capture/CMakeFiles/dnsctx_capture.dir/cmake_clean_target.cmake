file(REMOVE_RECURSE
  "libdnsctx_capture.a"
)
