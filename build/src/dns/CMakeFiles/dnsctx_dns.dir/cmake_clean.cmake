file(REMOVE_RECURSE
  "CMakeFiles/dnsctx_dns.dir/cache.cpp.o"
  "CMakeFiles/dnsctx_dns.dir/cache.cpp.o.d"
  "CMakeFiles/dnsctx_dns.dir/codec.cpp.o"
  "CMakeFiles/dnsctx_dns.dir/codec.cpp.o.d"
  "CMakeFiles/dnsctx_dns.dir/message.cpp.o"
  "CMakeFiles/dnsctx_dns.dir/message.cpp.o.d"
  "CMakeFiles/dnsctx_dns.dir/name.cpp.o"
  "CMakeFiles/dnsctx_dns.dir/name.cpp.o.d"
  "CMakeFiles/dnsctx_dns.dir/rr.cpp.o"
  "CMakeFiles/dnsctx_dns.dir/rr.cpp.o.d"
  "libdnsctx_dns.a"
  "libdnsctx_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsctx_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
