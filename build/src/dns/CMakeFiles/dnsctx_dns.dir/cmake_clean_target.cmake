file(REMOVE_RECURSE
  "libdnsctx_dns.a"
)
