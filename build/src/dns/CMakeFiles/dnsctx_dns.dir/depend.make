# Empty dependencies file for dnsctx_dns.
# This may be replaced when dependencies are built.
