file(REMOVE_RECURSE
  "libdnsctx_scenario.a"
)
