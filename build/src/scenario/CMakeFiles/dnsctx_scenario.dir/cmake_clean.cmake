file(REMOVE_RECURSE
  "CMakeFiles/dnsctx_scenario.dir/config_io.cpp.o"
  "CMakeFiles/dnsctx_scenario.dir/config_io.cpp.o.d"
  "CMakeFiles/dnsctx_scenario.dir/scenario.cpp.o"
  "CMakeFiles/dnsctx_scenario.dir/scenario.cpp.o.d"
  "libdnsctx_scenario.a"
  "libdnsctx_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsctx_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
