# Empty compiler generated dependencies file for dnsctx_scenario.
# This may be replaced when dependencies are built.
