file(REMOVE_RECURSE
  "CMakeFiles/dnsctx_cachesim.dir/refresh.cpp.o"
  "CMakeFiles/dnsctx_cachesim.dir/refresh.cpp.o.d"
  "CMakeFiles/dnsctx_cachesim.dir/whole_house.cpp.o"
  "CMakeFiles/dnsctx_cachesim.dir/whole_house.cpp.o.d"
  "libdnsctx_cachesim.a"
  "libdnsctx_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsctx_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
