file(REMOVE_RECURSE
  "libdnsctx_cachesim.a"
)
