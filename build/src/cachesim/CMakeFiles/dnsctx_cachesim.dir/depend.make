# Empty dependencies file for dnsctx_cachesim.
# This may be replaced when dependencies are built.
