# Empty compiler generated dependencies file for dnsctx_traffic.
# This may be replaced when dependencies are built.
