file(REMOVE_RECURSE
  "libdnsctx_traffic.a"
)
