
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/apps.cpp" "src/traffic/CMakeFiles/dnsctx_traffic.dir/apps.cpp.o" "gcc" "src/traffic/CMakeFiles/dnsctx_traffic.dir/apps.cpp.o.d"
  "/root/repo/src/traffic/device.cpp" "src/traffic/CMakeFiles/dnsctx_traffic.dir/device.cpp.o" "gcc" "src/traffic/CMakeFiles/dnsctx_traffic.dir/device.cpp.o.d"
  "/root/repo/src/traffic/farm.cpp" "src/traffic/CMakeFiles/dnsctx_traffic.dir/farm.cpp.o" "gcc" "src/traffic/CMakeFiles/dnsctx_traffic.dir/farm.cpp.o.d"
  "/root/repo/src/traffic/webmodel.cpp" "src/traffic/CMakeFiles/dnsctx_traffic.dir/webmodel.cpp.o" "gcc" "src/traffic/CMakeFiles/dnsctx_traffic.dir/webmodel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/resolver/CMakeFiles/dnsctx_resolver.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/dnsctx_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/dnsctx_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dnsctx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
