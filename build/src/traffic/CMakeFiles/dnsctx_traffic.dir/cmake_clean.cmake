file(REMOVE_RECURSE
  "CMakeFiles/dnsctx_traffic.dir/apps.cpp.o"
  "CMakeFiles/dnsctx_traffic.dir/apps.cpp.o.d"
  "CMakeFiles/dnsctx_traffic.dir/device.cpp.o"
  "CMakeFiles/dnsctx_traffic.dir/device.cpp.o.d"
  "CMakeFiles/dnsctx_traffic.dir/farm.cpp.o"
  "CMakeFiles/dnsctx_traffic.dir/farm.cpp.o.d"
  "CMakeFiles/dnsctx_traffic.dir/webmodel.cpp.o"
  "CMakeFiles/dnsctx_traffic.dir/webmodel.cpp.o.d"
  "libdnsctx_traffic.a"
  "libdnsctx_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsctx_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
