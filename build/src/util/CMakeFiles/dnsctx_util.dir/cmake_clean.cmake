file(REMOVE_RECURSE
  "CMakeFiles/dnsctx_util.dir/cli.cpp.o"
  "CMakeFiles/dnsctx_util.dir/cli.cpp.o.d"
  "CMakeFiles/dnsctx_util.dir/ip.cpp.o"
  "CMakeFiles/dnsctx_util.dir/ip.cpp.o.d"
  "CMakeFiles/dnsctx_util.dir/rng.cpp.o"
  "CMakeFiles/dnsctx_util.dir/rng.cpp.o.d"
  "CMakeFiles/dnsctx_util.dir/stats.cpp.o"
  "CMakeFiles/dnsctx_util.dir/stats.cpp.o.d"
  "CMakeFiles/dnsctx_util.dir/strings.cpp.o"
  "CMakeFiles/dnsctx_util.dir/strings.cpp.o.d"
  "CMakeFiles/dnsctx_util.dir/time.cpp.o"
  "CMakeFiles/dnsctx_util.dir/time.cpp.o.d"
  "libdnsctx_util.a"
  "libdnsctx_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsctx_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
