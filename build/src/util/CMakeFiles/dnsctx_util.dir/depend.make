# Empty dependencies file for dnsctx_util.
# This may be replaced when dependencies are built.
