file(REMOVE_RECURSE
  "libdnsctx_util.a"
)
