
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/blocking.cpp" "src/analysis/CMakeFiles/dnsctx_analysis.dir/blocking.cpp.o" "gcc" "src/analysis/CMakeFiles/dnsctx_analysis.dir/blocking.cpp.o.d"
  "/root/repo/src/analysis/classify.cpp" "src/analysis/CMakeFiles/dnsctx_analysis.dir/classify.cpp.o" "gcc" "src/analysis/CMakeFiles/dnsctx_analysis.dir/classify.cpp.o.d"
  "/root/repo/src/analysis/export.cpp" "src/analysis/CMakeFiles/dnsctx_analysis.dir/export.cpp.o" "gcc" "src/analysis/CMakeFiles/dnsctx_analysis.dir/export.cpp.o.d"
  "/root/repo/src/analysis/nclass.cpp" "src/analysis/CMakeFiles/dnsctx_analysis.dir/nclass.cpp.o" "gcc" "src/analysis/CMakeFiles/dnsctx_analysis.dir/nclass.cpp.o.d"
  "/root/repo/src/analysis/pairing.cpp" "src/analysis/CMakeFiles/dnsctx_analysis.dir/pairing.cpp.o" "gcc" "src/analysis/CMakeFiles/dnsctx_analysis.dir/pairing.cpp.o.d"
  "/root/repo/src/analysis/performance.cpp" "src/analysis/CMakeFiles/dnsctx_analysis.dir/performance.cpp.o" "gcc" "src/analysis/CMakeFiles/dnsctx_analysis.dir/performance.cpp.o.d"
  "/root/repo/src/analysis/perhouse.cpp" "src/analysis/CMakeFiles/dnsctx_analysis.dir/perhouse.cpp.o" "gcc" "src/analysis/CMakeFiles/dnsctx_analysis.dir/perhouse.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/analysis/CMakeFiles/dnsctx_analysis.dir/report.cpp.o" "gcc" "src/analysis/CMakeFiles/dnsctx_analysis.dir/report.cpp.o.d"
  "/root/repo/src/analysis/resolvers.cpp" "src/analysis/CMakeFiles/dnsctx_analysis.dir/resolvers.cpp.o" "gcc" "src/analysis/CMakeFiles/dnsctx_analysis.dir/resolvers.cpp.o.d"
  "/root/repo/src/analysis/study.cpp" "src/analysis/CMakeFiles/dnsctx_analysis.dir/study.cpp.o" "gcc" "src/analysis/CMakeFiles/dnsctx_analysis.dir/study.cpp.o.d"
  "/root/repo/src/analysis/tables.cpp" "src/analysis/CMakeFiles/dnsctx_analysis.dir/tables.cpp.o" "gcc" "src/analysis/CMakeFiles/dnsctx_analysis.dir/tables.cpp.o.d"
  "/root/repo/src/analysis/timeseries.cpp" "src/analysis/CMakeFiles/dnsctx_analysis.dir/timeseries.cpp.o" "gcc" "src/analysis/CMakeFiles/dnsctx_analysis.dir/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/capture/CMakeFiles/dnsctx_capture.dir/DependInfo.cmake"
  "/root/repo/build/src/resolver/CMakeFiles/dnsctx_resolver.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/dnsctx_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/dnsctx_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dnsctx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
