file(REMOVE_RECURSE
  "libdnsctx_analysis.a"
)
