file(REMOVE_RECURSE
  "CMakeFiles/dnsctx_analysis.dir/blocking.cpp.o"
  "CMakeFiles/dnsctx_analysis.dir/blocking.cpp.o.d"
  "CMakeFiles/dnsctx_analysis.dir/classify.cpp.o"
  "CMakeFiles/dnsctx_analysis.dir/classify.cpp.o.d"
  "CMakeFiles/dnsctx_analysis.dir/export.cpp.o"
  "CMakeFiles/dnsctx_analysis.dir/export.cpp.o.d"
  "CMakeFiles/dnsctx_analysis.dir/nclass.cpp.o"
  "CMakeFiles/dnsctx_analysis.dir/nclass.cpp.o.d"
  "CMakeFiles/dnsctx_analysis.dir/pairing.cpp.o"
  "CMakeFiles/dnsctx_analysis.dir/pairing.cpp.o.d"
  "CMakeFiles/dnsctx_analysis.dir/performance.cpp.o"
  "CMakeFiles/dnsctx_analysis.dir/performance.cpp.o.d"
  "CMakeFiles/dnsctx_analysis.dir/perhouse.cpp.o"
  "CMakeFiles/dnsctx_analysis.dir/perhouse.cpp.o.d"
  "CMakeFiles/dnsctx_analysis.dir/report.cpp.o"
  "CMakeFiles/dnsctx_analysis.dir/report.cpp.o.d"
  "CMakeFiles/dnsctx_analysis.dir/resolvers.cpp.o"
  "CMakeFiles/dnsctx_analysis.dir/resolvers.cpp.o.d"
  "CMakeFiles/dnsctx_analysis.dir/study.cpp.o"
  "CMakeFiles/dnsctx_analysis.dir/study.cpp.o.d"
  "CMakeFiles/dnsctx_analysis.dir/tables.cpp.o"
  "CMakeFiles/dnsctx_analysis.dir/tables.cpp.o.d"
  "CMakeFiles/dnsctx_analysis.dir/timeseries.cpp.o"
  "CMakeFiles/dnsctx_analysis.dir/timeseries.cpp.o.d"
  "libdnsctx_analysis.a"
  "libdnsctx_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnsctx_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
