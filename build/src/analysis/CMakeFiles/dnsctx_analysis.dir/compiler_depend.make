# Empty compiler generated dependencies file for dnsctx_analysis.
# This may be replaced when dependencies are built.
