# Empty compiler generated dependencies file for whole_house_cache.
# This may be replaced when dependencies are built.
