file(REMOVE_RECURSE
  "CMakeFiles/whole_house_cache.dir/whole_house_cache.cpp.o"
  "CMakeFiles/whole_house_cache.dir/whole_house_cache.cpp.o.d"
  "whole_house_cache"
  "whole_house_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whole_house_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
