file(REMOVE_RECURSE
  "CMakeFiles/resolver_comparison.dir/resolver_comparison.cpp.o"
  "CMakeFiles/resolver_comparison.dir/resolver_comparison.cpp.o.d"
  "resolver_comparison"
  "resolver_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resolver_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
