# Empty dependencies file for resolver_comparison.
# This may be replaced when dependencies are built.
