file(REMOVE_RECURSE
  "CMakeFiles/diurnal_report.dir/diurnal_report.cpp.o"
  "CMakeFiles/diurnal_report.dir/diurnal_report.cpp.o.d"
  "diurnal_report"
  "diurnal_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diurnal_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
