# Empty dependencies file for diurnal_report.
# This may be replaced when dependencies are built.
