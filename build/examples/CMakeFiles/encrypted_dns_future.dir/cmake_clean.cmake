file(REMOVE_RECURSE
  "CMakeFiles/encrypted_dns_future.dir/encrypted_dns_future.cpp.o"
  "CMakeFiles/encrypted_dns_future.dir/encrypted_dns_future.cpp.o.d"
  "encrypted_dns_future"
  "encrypted_dns_future.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encrypted_dns_future.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
