# Empty dependencies file for encrypted_dns_future.
# This may be replaced when dependencies are built.
