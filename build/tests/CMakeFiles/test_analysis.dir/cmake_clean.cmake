file(REMOVE_RECURSE
  "CMakeFiles/test_analysis.dir/analysis/test_blocking.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_blocking.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_classify.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_classify.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_export.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_export.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_nclass.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_nclass.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_pairing.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_pairing.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_performance.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_performance.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_perhouse.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_perhouse.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_study.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_study.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_tables.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_tables.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_timeseries.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_timeseries.cpp.o.d"
  "test_analysis"
  "test_analysis.pdb"
  "test_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
