file(REMOVE_RECURSE
  "CMakeFiles/test_resolver.dir/resolver/test_forwarder.cpp.o"
  "CMakeFiles/test_resolver.dir/resolver/test_forwarder.cpp.o.d"
  "CMakeFiles/test_resolver.dir/resolver/test_recursive.cpp.o"
  "CMakeFiles/test_resolver.dir/resolver/test_recursive.cpp.o.d"
  "CMakeFiles/test_resolver.dir/resolver/test_stub.cpp.o"
  "CMakeFiles/test_resolver.dir/resolver/test_stub.cpp.o.d"
  "CMakeFiles/test_resolver.dir/resolver/test_tcp_fallback.cpp.o"
  "CMakeFiles/test_resolver.dir/resolver/test_tcp_fallback.cpp.o.d"
  "CMakeFiles/test_resolver.dir/resolver/test_zonedb.cpp.o"
  "CMakeFiles/test_resolver.dir/resolver/test_zonedb.cpp.o.d"
  "test_resolver"
  "test_resolver.pdb"
  "test_resolver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resolver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
