
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/netsim/test_nat.cpp" "tests/CMakeFiles/test_netsim.dir/netsim/test_nat.cpp.o" "gcc" "tests/CMakeFiles/test_netsim.dir/netsim/test_nat.cpp.o.d"
  "/root/repo/tests/netsim/test_network.cpp" "tests/CMakeFiles/test_netsim.dir/netsim/test_network.cpp.o" "gcc" "tests/CMakeFiles/test_netsim.dir/netsim/test_network.cpp.o.d"
  "/root/repo/tests/netsim/test_sim.cpp" "tests/CMakeFiles/test_netsim.dir/netsim/test_sim.cpp.o" "gcc" "tests/CMakeFiles/test_netsim.dir/netsim/test_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenario/CMakeFiles/dnsctx_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/dnsctx_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/dnsctx_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/dnsctx_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/capture/CMakeFiles/dnsctx_capture.dir/DependInfo.cmake"
  "/root/repo/build/src/resolver/CMakeFiles/dnsctx_resolver.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/dnsctx_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/dnsctx_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dnsctx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
