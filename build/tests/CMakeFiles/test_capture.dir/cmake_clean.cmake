file(REMOVE_RECURSE
  "CMakeFiles/test_capture.dir/capture/test_logio.cpp.o"
  "CMakeFiles/test_capture.dir/capture/test_logio.cpp.o.d"
  "CMakeFiles/test_capture.dir/capture/test_monitor.cpp.o"
  "CMakeFiles/test_capture.dir/capture/test_monitor.cpp.o.d"
  "test_capture"
  "test_capture.pdb"
  "test_capture[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
