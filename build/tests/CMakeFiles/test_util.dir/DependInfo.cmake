
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/test_cli.cpp" "tests/CMakeFiles/test_util.dir/util/test_cli.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_cli.cpp.o.d"
  "/root/repo/tests/util/test_ip.cpp" "tests/CMakeFiles/test_util.dir/util/test_ip.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_ip.cpp.o.d"
  "/root/repo/tests/util/test_rng.cpp" "tests/CMakeFiles/test_util.dir/util/test_rng.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_rng.cpp.o.d"
  "/root/repo/tests/util/test_stats.cpp" "tests/CMakeFiles/test_util.dir/util/test_stats.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_stats.cpp.o.d"
  "/root/repo/tests/util/test_strings.cpp" "tests/CMakeFiles/test_util.dir/util/test_strings.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_strings.cpp.o.d"
  "/root/repo/tests/util/test_time.cpp" "tests/CMakeFiles/test_util.dir/util/test_time.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenario/CMakeFiles/dnsctx_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/dnsctx_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/dnsctx_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/dnsctx_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/capture/CMakeFiles/dnsctx_capture.dir/DependInfo.cmake"
  "/root/repo/build/src/resolver/CMakeFiles/dnsctx_resolver.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/dnsctx_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/dnsctx_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dnsctx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
